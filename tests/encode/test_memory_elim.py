"""Tests for memory elimination and the conservative abstraction."""

import pytest

from repro.encode import (
    abstract_memories_conservative,
    eliminate_memories,
)
from repro.eufm import (
    TRUE,
    and_,
    bvar,
    eq,
    implies,
    ite_term,
    memory_nodes,
    not_,
    or_,
    read,
    tvar,
    uf,
    write,
)
from repro.decision import is_valid


class TestEliminateMemories:
    def test_memory_free_formula_unchanged(self):
        phi = eq(uf("f", [tvar("x")]), tvar("y"))
        result = eliminate_memories(phi)
        assert result.formula is phi
        assert not result.fresh_addresses

    def test_output_has_no_memory_nodes(self):
        m, a, b, d = tvar("RF"), tvar("a"), tvar("b"), tvar("d")
        phi = eq(read(write(m, a, d), b), tvar("v"))
        result = eliminate_memories(phi)
        assert memory_nodes(result.formula) == []

    def test_read_over_write_forwarding(self):
        """read(write(m,a,d), b) = ITE(a=b, d, read(m,b)): validity of the
        forwarding property itself after elimination."""
        m, a, b, d = tvar("RF"), tvar("a"), tvar("b"), tvar("d")
        lhs = read(write(m, a, d), b)
        phi = and_(
            implies(eq(a, b), eq(lhs, d)),
            implies(not_(eq(a, b)), eq(lhs, read(m, b))),
        )
        result = eliminate_memories(phi)
        assert is_valid(result.formula)

    def test_last_write_wins_is_valid(self):
        m, a = tvar("RF"), tvar("a")
        d1, d2 = tvar("d1"), tvar("d2")
        phi = eq(read(write(write(m, a, d1), a, d2), a), d2)
        result = eliminate_memories(phi)
        assert is_valid(result.formula)

    def test_overwritten_data_not_returned(self):
        m, a = tvar("RF"), tvar("a")
        d1, d2 = tvar("d1"), tvar("d2")
        phi = eq(read(write(write(m, a, d1), a, d2), a), d1)
        result = eliminate_memories(phi)
        assert not is_valid(result.formula)

    def test_memory_state_equation_write_noop(self):
        """write(m, a, read(m, a)) = m is valid under extensionality."""
        m, a = tvar("RF"), tvar("a")
        phi = eq(write(m, a, read(m, a)), m)
        result = eliminate_memories(phi)
        assert len(result.fresh_addresses) == 1
        assert is_valid(result.formula)

    def test_distinct_writes_not_equal(self):
        m, a, d = tvar("RF"), tvar("a"), tvar("d")
        phi = eq(write(m, a, d), m)
        result = eliminate_memories(phi)
        assert not is_valid(result.formula)

    def test_commuting_writes_different_addresses(self):
        """Writes to provably different addresses commute."""
        m = tvar("RF")
        a, b, d1, d2 = tvar("a"), tvar("b"), tvar("d1"), tvar("d2")
        lhs = write(write(m, a, d1), b, d2)
        rhs = write(write(m, b, d2), a, d1)
        phi = implies(not_(eq(a, b)), eq(lhs, rhs))
        result = eliminate_memories(phi)
        assert is_valid(result.formula)

    def test_commuting_writes_not_valid_unconditionally(self):
        m = tvar("RF")
        a, b, d1, d2 = tvar("a"), tvar("b"), tvar("d1"), tvar("d2")
        lhs = write(write(m, a, d1), b, d2)
        rhs = write(write(m, b, d2), a, d1)
        result = eliminate_memories(eq(lhs, rhs))
        assert not is_valid(result.formula)

    def test_guarded_chain(self):
        m = tvar("RF")
        c = bvar("c")
        a, d, b = tvar("a"), tvar("d"), tvar("b")
        mem = ite_term(c, write(m, a, d), m)
        phi = implies(and_(c, eq(a, b)), eq(read(mem, b), d))
        result = eliminate_memories(phi)
        assert is_valid(result.formula)

    def test_negative_memory_equation_reported(self):
        m1, m2 = tvar("M1"), tvar("M2")
        # Force memory sorts by using both as memories elsewhere.
        phi = and_(
            not_(eq(m1, m2)),
            eq(read(m1, tvar("a")), tvar("x")),
            eq(read(m2, tvar("a")), tvar("y")),
        )
        result = eliminate_memories(phi)
        assert len(result.negative_memory_equations) == 1

    def test_base_reads_become_ufs(self):
        m, a = tvar("RF"), tvar("a")
        phi = eq(read(m, a), read(m, a))
        assert phi is TRUE  # interning makes identical reads identical

        phi2 = eq(read(m, a), read(m, tvar("b")))
        result = eliminate_memories(phi2)
        assert m in result.base_read_symbols


class TestConservativeAbstraction:
    def test_no_memory_nodes_remain(self):
        m, a, d = tvar("RF"), tvar("a"), tvar("d")
        phi = eq(read(write(m, a, d), tvar("b")), tvar("v"))
        out = abstract_memories_conservative(phi)
        assert memory_nodes(out) == []

    def test_identical_access_sequences_provable(self):
        """Both sides writing/reading identically is provable by congruence
        alone — the rewritten-formula situation (Table 5)."""
        m, a, d, b = tvar("RF"), tvar("a"), tvar("d"), tvar("b")
        lhs = read(write(m, a, d), b)
        rhs = read(write(m, a, d), b)
        out = abstract_memories_conservative(eq(lhs, rhs))
        assert out is TRUE

    def test_forwarding_property_lost(self):
        """The conservative abstraction cannot prove forwarding — that is
        exactly what makes it conservative."""
        m, a, b, d = tvar("RF"), tvar("a"), tvar("b"), tvar("d")
        phi = implies(eq(a, b), eq(read(write(m, a, d), b), d))
        precise = eliminate_memories(phi).formula
        assert is_valid(precise)
        out = abstract_memories_conservative(phi)
        assert not is_valid(out)

    def test_validity_preserving_direction(self):
        """Anything valid conservatively is valid precisely."""
        m, a, b, d = tvar("RF"), tvar("a"), tvar("b"), tvar("d")
        phi = implies(
            eq(a, b),
            eq(read(write(m, a, d), tvar("c")), read(write(m, b, d), tvar("c"))),
        )
        conservative = abstract_memories_conservative(phi)
        if is_valid(conservative):
            precise = eliminate_memories(phi).formula
            assert is_valid(precise)
