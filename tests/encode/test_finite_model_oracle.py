"""Brute-force finite-model cross-check of the full encoding pipeline.

EUFM validity over a tiny vocabulary can be decided by enumerating every
interpretation over a small domain: term-variable assignments, Boolean
assignments, complete function tables for each UF/UP symbol, and complete
contents for each base memory.  This oracle covers the *memory* axioms,
which the congruence-closure reference procedure cannot.

Refutation soundness of the enumeration: an EUFM formula over ``v``
distinct leaf generators is valid iff it is valid over domains of size up
to the number of distinguishable values; for the tiny formulas used here a
domain of 2–3 elements is exhaustive enough to catch every disagreement in
practice, and every verdict pair is asserted equal in *both* directions —
a pipeline bug in either direction shows up as a mismatch.
"""

from itertools import product

import pytest

from repro.encode import check_validity
from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bvar,
    eq,
    implies,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    write,
)
from repro.eufm.ast import (
    BoolConst,
    BoolVar,
    Eq,
    Read,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from repro.eufm.evaluator import infer_memory_sorts
from repro.eufm.traversal import iter_dag


def brute_force_valid(phi, domain_size=2):
    """Exhaustively decide validity over a finite domain."""
    memory_sorted = infer_memory_sorts(phi)
    term_vars, bool_vars, uf_syms, up_syms, mem_vars = [], [], {}, {}, []
    for node in iter_dag(phi):
        if isinstance(node, TermVar):
            if node in memory_sorted:
                mem_vars.append(node)
            else:
                term_vars.append(node)
        elif isinstance(node, BoolVar):
            bool_vars.append(node)
        elif isinstance(node, UFApp):
            uf_syms[node.symbol] = len(node.args)
        elif isinstance(node, UPApp):
            up_syms[node.symbol] = len(node.args)

    domain = range(domain_size)
    arg_space = {
        arity: list(product(domain, repeat=arity))
        for arity in set(uf_syms.values()) | set(up_syms.values())
    }

    def all_tables(symbols, codomain):
        names = sorted(symbols)
        spaces = [
            list(product(codomain, repeat=len(arg_space[symbols[name]])))
            for name in names
        ]
        for combo in product(*spaces):
            yield {
                name: dict(zip(arg_space[symbols[name]], values))
                for name, values in zip(names, combo)
            }

    mem_space = list(product(domain, repeat=domain_size))

    for term_values in product(domain, repeat=len(term_vars)):
        term_env = dict(zip(term_vars, term_values))
        for bool_values in product([False, True], repeat=len(bool_vars)):
            bool_env = dict(zip(bool_vars, bool_values))
            for uf_tables in all_tables(uf_syms, domain):
                for up_tables in all_tables(up_syms, [False, True]):
                    for mem_values in product(mem_space, repeat=len(mem_vars)):
                        mem_env = {
                            var: tuple(contents)
                            for var, contents in zip(mem_vars, mem_values)
                        }
                        value = _eval(
                            phi, term_env, bool_env, uf_tables, up_tables,
                            mem_env,
                        )
                        if not value:
                            return False
    return True


def _eval(phi, term_env, bool_env, uf_tables, up_tables, mem_env):
    values = {}
    for node in iter_dag(phi):
        if isinstance(node, BoolConst):
            values[node] = node.value
        elif isinstance(node, TermVar):
            values[node] = mem_env.get(node, term_env.get(node))
        elif isinstance(node, BoolVar):
            values[node] = bool_env[node]
        elif isinstance(node, UFApp):
            values[node] = uf_tables[node.symbol][
                tuple(values[a] for a in node.args)
            ]
        elif isinstance(node, UPApp):
            values[node] = up_tables[node.symbol][
                tuple(values[a] for a in node.args)
            ]
        elif isinstance(node, TermITE):
            values[node] = (
                values[node.then] if values[node.cond] else values[node.els]
            )
        elif isinstance(node, Read):
            values[node] = values[node.mem][values[node.addr]]
        elif isinstance(node, Write):
            contents = list(values[node.mem])
            contents[values[node.addr]] = values[node.data]
            values[node] = tuple(contents)
        elif isinstance(node, Eq):
            values[node] = values[node.lhs] == values[node.rhs]
        elif node.kind == "not":
            values[node] = not values[node.arg]
        elif node.kind == "and":
            values[node] = all(values[a] for a in node.args)
        elif node.kind == "or":
            values[node] = any(values[a] for a in node.args)
        elif node.kind == "fite":
            values[node] = (
                values[node.then] if values[node.cond] else values[node.els]
            )
        else:  # pragma: no cover
            raise TypeError(node.kind)
    return values[phi]


def _m():
    return tvar("M")


CASES = [
    # Memory axioms.
    implies(eq(tvar("a"), tvar("b")),
            eq(read(write(_m(), tvar("a"), tvar("d")), tvar("b")), tvar("d"))),
    implies(not_(eq(tvar("a"), tvar("b"))),
            eq(read(write(_m(), tvar("a"), tvar("d")), tvar("b")),
               read(_m(), tvar("b")))),
    eq(write(_m(), tvar("a"), read(_m(), tvar("a"))), _m()),
    eq(write(_m(), tvar("a"), tvar("d")), _m()),
    eq(read(write(_m(), tvar("a"), tvar("d")), tvar("b")), tvar("d")),
    # Guarded-update shapes from the correctness formulas.
    implies(
        bvar("c"),
        eq(
            read(
                ite_term(bvar("c"), write(_m(), tvar("a"), tvar("d")), _m()),
                tvar("a"),
            ),
            tvar("d"),
        ),
    ),
    eq(
        ite_term(bvar("c"), write(_m(), tvar("a"), tvar("d")), _m()),
        ite_term(bvar("c"), write(_m(), tvar("a"), tvar("d")), _m()),
    ),
    # Mixed UF + memory.
    implies(
        eq(tvar("x"), read(_m(), tvar("a"))),
        eq(uf("f", [tvar("x")]), uf("f", [read(_m(), tvar("a"))])),
    ),
    or_(eq(read(_m(), tvar("a")), tvar("x")), bvar("p")),
    # Two memories.
    eq(write(tvar("M1"), tvar("a"), tvar("d")),
       write(tvar("M2"), tvar("a"), tvar("d"))),
]


class TestFiniteModelOracle:
    @pytest.mark.parametrize("index", range(len(CASES)))
    def test_pipeline_agrees_with_enumeration(self, index):
        phi = CASES[index]
        expected = brute_force_valid(phi, domain_size=2)
        got = check_validity(phi).valid
        assert got == expected, (
            f"pipeline={got}, enumeration={expected} for case {index}"
        )

    def test_oracle_itself_sane(self):
        assert brute_force_valid(TRUE)
        assert not brute_force_valid(FALSE)
        assert brute_force_valid(eq(tvar("x"), tvar("x")))
        assert not brute_force_valid(eq(tvar("x"), tvar("y")))
