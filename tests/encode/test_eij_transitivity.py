"""Tests for the e_ij encoding and the transitivity constraints."""

import pytest

from repro.encode import encode_equalities, transitivity_constraints
from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bool_variables,
    bvar,
    eq,
    equations,
    implies,
    ite_term,
    not_,
    or_,
    tvar,
)


class TestLeafEncoding:
    def test_same_variable_true(self):
        x = tvar("x")
        # eq(x, x) is TRUE at construction; feed through a connective.
        phi = or_(eq(x, x), bvar("p"))
        result = encode_equalities(phi, g_vars=set())
        assert result.formula is TRUE

    def test_p_vars_encode_false(self):
        phi = eq(tvar("x"), tvar("y"))
        result = encode_equalities(phi, g_vars=set())
        assert result.formula is FALSE
        assert len(result.diverse_pairs) == 1

    def test_g_vars_get_eij(self):
        x, y = tvar("x"), tvar("y")
        phi = eq(x, y)
        result = encode_equalities(phi, g_vars={x, y})
        assert result.num_eij == 1
        assert result.formula in result.eij_vars.values()

    def test_mixed_p_g_encodes_false(self):
        x, y = tvar("x"), tvar("y")
        result = encode_equalities(eq(x, y), g_vars={x})
        assert result.formula is FALSE

    def test_eij_is_symmetric(self):
        x, y = tvar("x"), tvar("y")
        phi = and_(or_(eq(x, y), bvar("p")), or_(eq(y, x), bvar("q")))
        result = encode_equalities(phi, g_vars={x, y})
        assert result.num_eij == 1

    def test_no_equations_remain(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = and_(
            or_(eq(x, y), bvar("p")),
            or_(eq(ite_term(bvar("c"), x, z), y), bvar("q")),
        )
        result = encode_equalities(phi, g_vars={x, y, z})
        assert equations(result.formula) == []


class TestItePushing:
    def test_ite_equation_splits_on_guard(self):
        c = bvar("c")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = eq(ite_term(c, x, y), z)
        result = encode_equalities(phi, g_vars={x, y, z})
        # ITE(c, e_xz, e_yz): both leaf comparisons present.
        assert result.num_eij == 2

    def test_ite_guard_with_p_leaves_simplifies(self):
        c = bvar("c")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = eq(ite_term(c, x, y), z)
        result = encode_equalities(phi, g_vars=set())
        assert result.formula is FALSE

    def test_nested_ite_both_sides(self):
        c1, c2 = bvar("c1"), bvar("c2")
        a, b, x, y = tvar("a"), tvar("b"), tvar("x"), tvar("y")
        phi = eq(ite_term(c1, a, b), ite_term(c2, x, y))
        result = encode_equalities(phi, g_vars={a, b, x, y})
        assert result.num_eij == 4

    def test_shared_leaves_collapse(self):
        c1, c2 = bvar("c1"), bvar("c2")
        a, b = tvar("a"), tvar("b")
        phi = eq(ite_term(c1, a, b), ite_term(c2, a, b))
        result = encode_equalities(phi, g_vars={a, b})
        # Leaf pairs: (a,a)=T, (a,b)=e, (b,a)=e, (b,b)=T -> one e_ij var.
        assert result.num_eij == 1


class TestTransitivity:
    def _eij(self, *pairs):
        eij = {}
        for a, b in pairs:
            key = frozenset((tvar(a), tvar(b)))
            low, high = sorted((a, b))
            eij[key] = bvar(f"eij!{low}!{high}")
        return eij

    def test_no_edges_no_constraints(self):
        result = transitivity_constraints({})
        assert result.constraints == []

    def test_two_disjoint_edges_no_constraints(self):
        eij = self._eij(("a", "b"), ("c", "d"))
        result = transitivity_constraints(eij)
        assert result.constraints == []

    def test_triangle_gets_three_constraints(self):
        eij = self._eij(("a", "b"), ("b", "c"), ("a", "c"))
        result = transitivity_constraints(eij)
        assert len(result.triangles) == 1
        assert len(result.constraints) == 3
        assert not result.fill_vars

    def test_acyclic_graph_needs_no_constraints(self):
        """A path has no cycles, hence any edge assignment is realizable;
        the sparse method (Bryant & Velev) emits nothing."""
        eij = self._eij(("a", "b"), ("b", "c"))
        result = transitivity_constraints(eij)
        assert not result.fill_vars
        assert result.constraints == []

    def test_four_cycle_chordalized(self):
        eij = self._eij(("a", "b"), ("b", "c"), ("c", "d"), ("a", "d"))
        result = transitivity_constraints(eij)
        # One chord splits the square into two triangles.
        assert len(result.fill_vars) == 1
        assert len(result.triangles) == 2

    def test_complete_graph_k4(self):
        names = ["a", "b", "c", "d"]
        pairs = [
            (names[i], names[j])
            for i in range(4)
            for j in range(i + 1, 4)
        ]
        result = transitivity_constraints(self._eij(*pairs))
        assert not result.fill_vars
        # K4 elimination: first vertex closes 3 triangles, next closes 1.
        assert len(result.triangles) == 4

    def test_constraints_are_horn_implications(self):
        eij = self._eij(("a", "b"), ("b", "c"), ("a", "c"))
        result = transitivity_constraints(eij)
        from repro.eufm import Interpretation, evaluate

        # Every constraint holds whenever the e-variables describe a real
        # equivalence (all true).
        interp = Interpretation(
            bool_values={v.name: True for v in eij.values()}
        )
        for constraint in result.constraints:
            assert evaluate(constraint, interp) is True

    def test_violating_assignment_caught(self):
        eij = self._eij(("a", "b"), ("b", "c"), ("a", "c"))
        result = transitivity_constraints(eij)
        from repro.eufm import Interpretation, evaluate

        bad = {"eij!a!b": True, "eij!b!c": True, "eij!a!c": False}
        interp = Interpretation(bool_values=bad)
        assert any(
            evaluate(constraint, interp) is False
            for constraint in result.constraints
        )
