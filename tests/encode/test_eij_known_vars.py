"""encode_equalities(known_vars=...): reject variables classify never saw."""

import pytest

from repro.encode.eij import encode_equalities
from repro.errors import EncodingError
from repro.eufm import and_, classify, eq, not_, tvar


def _formula():
    x, y, z = tvar("kx"), tvar("ky"), tvar("kz")
    return and_(not_(eq(x, y)), eq(y, z)), (x, y, z)


class TestKnownVars:
    def test_all_known_encodes_normally(self):
        phi, (x, y, z) = _formula()
        info = classify(phi)
        result = encode_equalities(phi, info.g_vars, known_vars={x, y, z})
        assert result.num_eij + len(result.diverse_pairs) > 0

    def test_unknown_variable_raises_with_its_name(self):
        phi, (x, y, z) = _formula()
        info = classify(phi)
        with pytest.raises(EncodingError) as excinfo:
            encode_equalities(phi, info.g_vars, known_vars={x, y})
        assert "kz" in str(excinfo.value)
        assert "p-variable default" in str(excinfo.value)

    def test_no_known_vars_means_no_check(self):
        # Backward compatible: without known_vars, out-of-classification
        # variables silently default to p-variables (maximal diversity).
        phi, (x, y, z) = _formula()
        info = classify(phi)
        result = encode_equalities(phi, info.g_vars & {x, y})
        assert frozenset((y, z)) in result.diverse_pairs
