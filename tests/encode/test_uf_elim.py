"""Tests for nested-ITE elimination of UFs and UPs."""

import pytest

from repro.decision import is_valid
from repro.encode import eliminate_uf
from repro.eufm import (
    and_,
    bvar,
    classify,
    eq,
    function_symbols,
    implies,
    ite_term,
    not_,
    or_,
    predicate_symbols,
    read,
    tvar,
    uf,
    up,
    write,
)


class TestBasicElimination:
    def test_output_has_no_applications(self):
        phi = and_(
            eq(uf("f", [tvar("x")]), uf("f", [tvar("y")])),
            up("p", [uf("g", [tvar("x")])]),
        )
        result = eliminate_uf(phi)
        assert function_symbols(result.formula) == []
        assert predicate_symbols(result.formula) == []

    def test_single_application_becomes_variable(self):
        phi = eq(uf("f", [tvar("x")]), tvar("z"))
        result = eliminate_uf(phi)
        assert len(result.fresh_term_vars) == 1
        fresh = result.fresh_term_vars[0]
        assert result.provenance[fresh][0] == "f"

    def test_identical_applications_share_one_variable(self):
        fx = uf("f", [tvar("x")])
        phi = and_(eq(fx, tvar("a")), eq(fx, tvar("b")))
        result = eliminate_uf(phi)
        assert len(result.fresh_term_vars) == 1

    def test_functional_consistency_preserved(self):
        """f(x) = f(y) must still follow from x = y after elimination."""
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(x, y), eq(uf("f", [x]), uf("f", [y])))
        result = eliminate_uf(phi)
        assert is_valid(result.formula)

    def test_no_spurious_equality(self):
        """f(x) = f(y) must not hold unconditionally."""
        x, y = tvar("x"), tvar("y")
        phi = eq(uf("f", [x]), uf("f", [y]))
        result = eliminate_uf(phi)
        assert not is_valid(result.formula)

    def test_transitive_chain_still_valid(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = implies(
            and_(eq(x, y), eq(y, z)),
            eq(uf("f", [x]), uf("f", [z])),
        )
        result = eliminate_uf(phi)
        assert len(result.fresh_term_vars) == 2
        assert is_valid(result.formula)

    def test_three_distinct_applications(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = implies(
            and_(eq(x, y), eq(y, z)),
            and_(
                eq(uf("f", [x]), uf("f", [y])),
                eq(uf("f", [y]), uf("f", [z])),
            ),
        )
        result = eliminate_uf(phi)
        assert len(result.fresh_term_vars) == 3
        assert is_valid(result.formula)

    def test_nested_applications(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(
            eq(x, y),
            eq(uf("f", [uf("g", [x])]), uf("f", [uf("g", [y])])),
        )
        result = eliminate_uf(phi)
        assert is_valid(result.formula)

    def test_predicate_consistency_preserved(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(and_(eq(x, y), up("p", [x])), up("p", [y]))
        result = eliminate_uf(phi)
        assert is_valid(result.formula)
        assert len(result.fresh_bool_vars) == 2

    def test_memory_nodes_rejected(self):
        phi = eq(read(tvar("m"), tvar("a")), tvar("d"))
        with pytest.raises(TypeError):
            eliminate_uf(phi)


class TestPolarityInheritance:
    def test_g_symbol_fresh_vars_are_general(self):
        x = tvar("x")
        phi = not_(eq(uf("f", [x]), tvar("z")))
        info = classify(phi)
        result = eliminate_uf(phi, info)
        assert result.fresh_term_vars
        assert set(result.fresh_term_vars) == result.fresh_g_vars

    def test_p_symbol_fresh_vars_are_positive(self):
        x = tvar("x")
        phi = eq(uf("alu", [x]), tvar("z"))
        info = classify(phi)
        result = eliminate_uf(phi, info)
        assert result.fresh_term_vars
        assert not result.fresh_g_vars

    def test_without_info_everything_general(self):
        phi = eq(uf("alu", [tvar("x")]), tvar("z"))
        result = eliminate_uf(phi)
        assert set(result.fresh_term_vars) == result.fresh_g_vars


class TestValidityPreservation:
    """UF elimination preserves validity exactly (both directions)."""

    CASES = [
        # (formula builder, expected validity)
        (lambda: implies(eq(tvar("x"), tvar("y")),
                         eq(uf("f", [tvar("x")]), uf("f", [tvar("y")]))), True),
        (lambda: eq(uf("f", [tvar("x")]), uf("f", [tvar("x")])), True),
        (lambda: eq(uf("f", [tvar("x")]), uf("g", [tvar("x")])), False),
        (lambda: implies(
            and_(eq(tvar("a"), tvar("c")), eq(tvar("b"), tvar("d"))),
            eq(uf("h", [tvar("a"), tvar("b")]), uf("h", [tvar("c"), tvar("d")]))),
         True),
        (lambda: or_(up("p", [tvar("x")]), not_(up("p", [tvar("x")]))), True),
        (lambda: implies(
            eq(tvar("x"), ite_term(bvar("c"), tvar("x"), tvar("x"))),
            up("p", [tvar("x")])), False),
    ]

    @pytest.mark.parametrize("case_index", range(len(CASES)))
    def test_validity_agrees_with_oracle(self, case_index):
        build, expected = self.CASES[case_index]
        phi = build()
        assert is_valid(phi) is expected
        result = eliminate_uf(phi)
        assert is_valid(result.formula) is expected
