"""End-to-end tests of the EVC encoding pipeline against the decision oracle.

The key invariant: for memory-free formulas, ``check_validity`` must agree
exactly with the reference decision procedure.  For formulas with memories
(occurring positively), the precise elimination must preserve the verdict.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.decision import is_valid
from repro.encode import check_validity, encode_validity
from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bvar,
    eq,
    iff,
    implies,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    up,
    write,
)


class TestKnownVerdicts:
    VALID = [
        lambda: TRUE,
        lambda: or_(bvar("p"), not_(bvar("p"))),
        lambda: eq(tvar("x"), tvar("x")),
        lambda: implies(eq(tvar("x"), tvar("y")), eq(tvar("y"), tvar("x"))),
        lambda: implies(
            and_(eq(tvar("x"), tvar("y")), eq(tvar("y"), tvar("z"))),
            eq(tvar("x"), tvar("z")),
        ),
        lambda: implies(
            eq(tvar("x"), tvar("y")),
            eq(uf("f", [tvar("x")]), uf("f", [tvar("y")])),
        ),
        lambda: implies(
            and_(eq(tvar("x"), tvar("y")), up("p", [tvar("x")])),
            up("p", [tvar("y")]),
        ),
        lambda: or_(
            eq(ite_term(bvar("c"), tvar("x"), tvar("y")), tvar("x")),
            eq(ite_term(bvar("c"), tvar("x"), tvar("y")), tvar("y")),
        ),
        # Forwarding (the paper's core memory reasoning):
        lambda: implies(
            eq(tvar("a"), tvar("b")),
            eq(read(write(tvar("RF"), tvar("a"), tvar("d")), tvar("b")), tvar("d")),
        ),
        lambda: eq(
            write(tvar("RF"), tvar("a"), read(tvar("RF"), tvar("a"))),
            tvar("RF"),
        ),
    ]

    INVALID = [
        lambda: FALSE,
        lambda: bvar("p"),
        lambda: eq(tvar("x"), tvar("y")),
        lambda: eq(uf("f", [tvar("x")]), uf("f", [tvar("y")])),
        lambda: implies(eq(uf("f", [tvar("x")]), uf("f", [tvar("y")])),
                        eq(tvar("x"), tvar("y"))),
        lambda: up("p", [tvar("x")]),
        lambda: eq(read(write(tvar("RF"), tvar("a"), tvar("d")), tvar("b")),
                   tvar("d")),
        lambda: eq(write(tvar("RF"), tvar("a"), tvar("d")), tvar("RF")),
    ]

    @pytest.mark.parametrize("index", range(len(VALID)))
    def test_valid_formulas(self, index):
        phi = self.VALID[index]()
        assert check_validity(phi).valid is True

    @pytest.mark.parametrize("index", range(len(INVALID)))
    def test_invalid_formulas(self, index):
        phi = self.INVALID[index]()
        result = check_validity(phi)
        assert result.valid is False

    def test_counterexample_on_invalid(self):
        phi = bvar("p")
        result = check_validity(phi)
        assert result.counterexample is not None
        assert result.counterexample.get("p") is False


class TestStats:
    def test_stats_counts_eij(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(not_(eq(x, y)), not_(eq(uf("f", [x]), uf("f", [y]))))
        encoded = encode_validity(phi)
        # x=y appears negatively -> x, y general; f is general too.
        assert encoded.stats.eij_primary >= 1
        assert encoded.stats.total_primary == (
            encoded.stats.eij_primary + encoded.stats.other_primary
        )

    def test_positive_only_formula_has_no_eij(self):
        phi = eq(uf("alu", [tvar("a")]), uf("alu", [tvar("b")]))
        encoded = encode_validity(phi)
        assert encoded.stats.eij_primary == 0

    def test_conservative_mode_has_no_eij_for_inorder_shape(self):
        m, a, d, b = tvar("RF"), tvar("a"), tvar("d"), tvar("b")
        # Both sides do the identical in-order sequence.
        lhs = read(write(m, a, d), b)
        phi = eq(lhs, lhs)
        assert phi is TRUE
        phi2 = eq(read(write(m, a, d), b), read(write(m, a, tvar("d2")), b))
        encoded = encode_validity(phi2, memory_mode="conservative")
        assert encoded.stats.eij_primary == 0


def _oracle_formulas(depth=2):
    """Memory-free random formulas for oracle agreement."""
    term_names = ["x", "y", "z"]
    bool_names = ["p", "q"]

    @st.composite
    def term(draw, d):
        if d == 0:
            return tvar(draw(st.sampled_from(term_names)))
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return tvar(draw(st.sampled_from(term_names)))
        if choice == 1:
            return uf("f", [draw(term(d - 1))])
        return ite_term(draw(formula(d - 1)), draw(term(d - 1)), draw(term(d - 1)))

    @st.composite
    def formula(draw, d=depth):
        if d == 0:
            choice = draw(st.integers(0, 1))
            if choice == 0:
                return bvar(draw(st.sampled_from(bool_names)))
            return eq(draw(term(0)), draw(term(0)))
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return eq(draw(term(d - 1)), draw(term(d - 1)))
        if choice == 1:
            return not_(draw(formula(d - 1)))
        if choice == 2:
            return and_(draw(formula(d - 1)), draw(formula(d - 1)))
        if choice == 3:
            return or_(draw(formula(d - 1)), draw(formula(d - 1)))
        return up("pr", [draw(term(d - 1))])

    return formula()


class TestOracleAgreement:
    @settings(max_examples=120, deadline=None)
    @given(_oracle_formulas())
    def test_pipeline_agrees_with_decision_procedure(self, phi):
        expected = is_valid(phi)
        result = check_validity(phi)
        assert result.valid is expected, (
            f"pipeline={result.valid} oracle={expected} for {phi!r}"
        )

    @settings(max_examples=60, deadline=None)
    @given(_oracle_formulas(depth=3))
    def test_pipeline_agrees_on_deeper_formulas(self, phi):
        expected = is_valid(phi)
        result = check_validity(phi)
        assert result.valid is expected
