"""Tests for counterexample decoding and encoding statistics."""

from repro.encode import check_validity, decode_model, encode_validity
from repro.eufm import and_, bvar, eq, implies, not_, or_, tvar, uf


class TestDecodeModel:
    def test_propositional_counterexample(self):
        phi = implies(bvar("p"), bvar("q"))
        result = check_validity(phi)
        assert not result.valid
        assert result.counterexample["p"] is True
        assert result.counterexample["q"] is False

    def test_eij_appears_in_counterexample(self):
        x, y = tvar("x"), tvar("y")
        # Invalid: f(x) = f(y) does not imply x = y.  x and y only occur
        # positively, so they are p-variables: maximal diversity makes them
        # distinct without an e_ij variable, and the counterexample sets
        # the comparison between the two fresh f-application variables to
        # True (f(x) = f(y) while x != y).
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        result = check_validity(phi)
        assert not result.valid
        eij_entries = {
            name: value
            for name, value in result.counterexample.items()
            if name.startswith("eij!")
        }
        assert eij_entries
        assert any(value is True for value in eij_entries.values())
        encoded = result.encoded
        diverse = encoded.eij.diverse_pairs
        assert any({x, y} == set(pair) for pair in diverse)

    def test_counterexample_respects_transitivity(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        # Invalid formula whose counterexamples must still satisfy
        # transitivity among the three comparisons.
        phi = or_(
            not_(eq(x, y)), not_(eq(y, z)), eq(x, z), bvar("p")
        )  # valid actually: transitivity makes it valid
        assert check_validity(phi).valid

    def test_valid_formula_has_no_counterexample(self):
        result = check_validity(eq(tvar("x"), tvar("x")))
        assert result.valid
        assert result.counterexample is None


class TestEncodingStats:
    def test_as_row_keys(self):
        encoded = encode_validity(eq(tvar("x"), tvar("y")))
        row = encoded.stats.as_row()
        assert set(row) == {
            "eij_primary",
            "other_primary",
            "total_primary",
            "cnf_vars",
            "cnf_clauses",
            "translate_seconds",
        }

    def test_constant_formula_shortcut(self):
        from repro.eufm import TRUE

        encoded = encode_validity(TRUE)
        assert encoded.constant_validity is True
        result = check_validity(TRUE)
        assert result.valid and result.sat_result is None

    def test_invalid_constant(self):
        from repro.eufm import FALSE

        assert check_validity(FALSE).valid is False

    def test_unknown_memory_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            encode_validity(eq(tvar("x"), tvar("y")), memory_mode="magic")


class TestDecodeModelDontCares:
    def test_unassigned_variables_decode_to_none(self):
        phi = implies(bvar("p"), bvar("q"))
        encoded = encode_validity(phi)
        # A partial model: only p decided.
        p_index = next(
            index
            for var, index in encoded.tseitin.var_map.items()
            if var.name == "p"
        )
        assignment = decode_model(encoded, {p_index: True})
        assert assignment["p"] is True
        assert assignment["q"] is None

    def test_every_known_variable_appears(self):
        phi = implies(and_(bvar("p"), bvar("q")), bvar("r"))
        encoded = encode_validity(phi)
        assignment = decode_model(encoded, {})
        assert set(assignment) == {
            var.name for var in encoded.tseitin.var_map
        }
        assert all(value is None for value in assignment.values())

    def test_constant_collapse_decodes_to_empty(self):
        # A constant formula never reaches the solver; every variable the
        # (empty) translation knows decodes, i.e. none.
        from repro.eufm import TRUE

        encoded = encode_validity(TRUE)
        assert encoded.constant_validity is True
        assert decode_model(encoded, {}) == {}

    def test_missing_translation_raises(self):
        import dataclasses

        import pytest

        from repro.errors import EncodingError

        encoded = encode_validity(implies(bvar("p"), bvar("q")))
        bare = dataclasses.replace(encoded, tseitin=None)
        with pytest.raises(EncodingError):
            decode_model(bare, {})

    def test_real_counterexample_distinguishes_false_from_undecided(self):
        phi = implies(bvar("p"), bvar("q"))
        result = check_validity(phi)
        values = set(result.counterexample.values())
        # p=True, q=False are decided; None may appear for untouched vars.
        assert True in values and False in values
