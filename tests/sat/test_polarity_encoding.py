"""Tests for the Plaisted–Greenbaum polarity-aware CNF encoding."""

from hypothesis import given, settings, strategies as st

from repro.eufm import (
    Interpretation,
    and_,
    bvar,
    evaluate,
    ite_formula,
    not_,
    or_,
)
from repro.sat import cnf_for_satisfiability, solve_cnf


def _formulas(depth=3):
    names = ["p", "q", "r", "s"]

    @st.composite
    def strat(draw, d=depth):
        if d == 0:
            return bvar(draw(st.sampled_from(names)))
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return bvar(draw(st.sampled_from(names)))
        if choice == 1:
            return not_(draw(strat(d - 1)))
        if choice == 2:
            return and_(draw(strat(d - 1)), draw(strat(d - 1)))
        if choice == 3:
            return or_(draw(strat(d - 1)), draw(strat(d - 1)))
        return ite_formula(draw(strat(d - 1)), draw(strat(d - 1)), draw(strat(d - 1)))

    return strat()


class TestPolarityEncoding:
    @settings(max_examples=150, deadline=None)
    @given(_formulas())
    def test_equisatisfiable_with_full_encoding(self, phi):
        full = cnf_for_satisfiability(phi, polarity_aware=False)
        pg = cnf_for_satisfiability(phi, polarity_aware=True)
        if full.root_literal is None:
            assert pg.root_literal is None
            return
        assert solve_cnf(full.cnf).is_sat == solve_cnf(pg.cnf).is_sat

    @settings(max_examples=80, deadline=None)
    @given(_formulas())
    def test_pg_model_satisfies_formula(self, phi):
        pg = cnf_for_satisfiability(phi, polarity_aware=True)
        if pg.root_literal is None:
            return
        outcome = solve_cnf(pg.cnf)
        if outcome.is_sat:
            bool_values = {
                var.name: outcome.model[index]
                for var, index in pg.var_map.items()
            }
            interp = Interpretation(bool_values=bool_values)
            assert evaluate(phi, interp) is True

    @settings(max_examples=80, deadline=None)
    @given(_formulas())
    def test_pg_never_larger_than_full(self, phi):
        full = cnf_for_satisfiability(phi, polarity_aware=False)
        pg = cnf_for_satisfiability(phi, polarity_aware=True)
        assert pg.cnf.num_clauses <= full.cnf.num_clauses

    def test_pg_actually_smaller_on_one_sided_formula(self):
        # A purely positive conjunction of disjunctions: every gate is
        # single-polarity, so PG halves the definition clauses.
        phi = and_(*[or_(bvar(f"a{i}"), bvar(f"b{i}")) for i in range(8)])
        full = cnf_for_satisfiability(phi, polarity_aware=False)
        pg = cnf_for_satisfiability(phi, polarity_aware=True)
        assert pg.cnf.num_clauses < full.cnf.num_clauses
