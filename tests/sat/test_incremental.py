"""Incremental assumption-based solving: equivalence with monolithic
solving, learned-clause soundness across calls, mid-session DRUP
certification, failed-assumption cores, and the session pool."""

from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat import (
    Cnf,
    IncrementalSolver,
    SessionPool,
    cnf_digest,
    current_session_pool,
    solve_by_enumeration,
    solve_cnf,
    use_session_pool,
)
from repro.witness import DrupProof, check_drup, cnf_with_assumptions


def _cnf(num_vars, clauses):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def _monolithic(cnf, assumptions):
    """Cold-solve ``cnf`` with the assumptions baked in as units."""
    return solve_cnf(cnf_with_assumptions(cnf, assumptions))


# A small pigeonhole-style UNSAT core: 3 pigeons, 2 holes.
def _php32():
    def var(pigeon, hole):
        return 1 + pigeon * 2 + hole

    clauses = [[var(p, 0), var(p, 1)] for p in range(3)]
    for hole in range(2):
        for p1 in range(3):
            for p2 in range(p1 + 1, 3):
                clauses.append([-var(p1, hole), -var(p2, hole)])
    return _cnf(6, clauses)


clause_strategy = st.lists(
    st.integers(min_value=1, max_value=5).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=4,
)
cnf_strategy = st.lists(clause_strategy, min_size=1, max_size=12)
assumptions_strategy = st.lists(
    st.integers(min_value=1, max_value=5).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    max_size=3,
    unique_by=abs,
)


class TestAssumptionEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(clauses=cnf_strategy, assumptions=assumptions_strategy)
    def test_matches_monolithic_units(self, clauses, assumptions):
        cnf = _cnf(5, clauses)
        expected = _monolithic(cnf, assumptions)
        result = IncrementalSolver(cnf).solve(assumptions=assumptions)
        assert result.status == expected.status
        if result.is_sat:
            assert cnf.check_assignment(result.model)
            for lit in assumptions:
                assert result.model[abs(lit)] == (lit > 0)

    @settings(max_examples=60, deadline=None)
    @given(clauses=cnf_strategy, assumptions=assumptions_strategy)
    def test_matches_exhaustive_reference(self, clauses, assumptions):
        cnf = _cnf(5, clauses)
        witness = solve_by_enumeration(cnf_with_assumptions(cnf, assumptions))
        result = IncrementalSolver(cnf).solve(assumptions=assumptions)
        assert result.status == ("sat" if witness is not None else "unsat")

    def test_assumption_out_of_range_raises(self):
        solver = IncrementalSolver(_cnf(2, [[1, 2]]))
        try:
            solver.solve(assumptions=[7])
        except SolverError:
            pass
        else:
            raise AssertionError("expected SolverError")

    def test_core_names_responsible_assumptions(self):
        # 1 and 2 force 3; assuming -3 alongside an irrelevant 4 must
        # produce a core that mentions only the responsible literals.
        cnf = _cnf(4, [[-1, -2, 3]])
        result = IncrementalSolver(cnf).solve(assumptions=[1, 2, -3, 4])
        assert result.is_unsat
        assert result.core is not None
        assert set(result.core) <= {1, 2, -3}
        assert -3 in result.core
        # The core alone is already unsatisfiable with the CNF.
        recheck = IncrementalSolver(cnf).solve(assumptions=result.core)
        assert recheck.is_unsat

    def test_failed_assumptions_do_not_latch_unsat(self):
        cnf = _cnf(2, [[1, 2]])
        solver = IncrementalSolver(cnf)
        assert solver.solve(assumptions=[-1, -2]).is_unsat
        # The CNF itself is still satisfiable afterwards.
        assert solver.solve().is_sat
        assert solver.solve(assumptions=[1]).is_sat


class TestLearnedClausePersistence:
    def test_three_calls_share_learning_and_stay_sound(self):
        cnf = _php32()
        solver = IncrementalSolver(cnf, log_proof=True)
        cold = solve_cnf(cnf)
        assert cold.is_unsat

        outcomes = []
        for assumptions in ([1], [2, 4], []):
            result = solver.solve(assumptions=assumptions)
            outcomes.append(result)
            expected = _monolithic(cnf, assumptions)
            assert result.status == expected.status == "unsat"
            proof = DrupProof.from_solver_steps(result.proof)
            assert check_drup(
                cnf_with_assumptions(cnf, assumptions), proof
            ).ok
        # Later calls resume the learned clause database instead of
        # re-deriving it: total conflicts must not grow per call.
        assert outcomes[2].conflicts <= cold.conflicts

    def test_latched_unsat_is_instant_and_certifiable(self):
        cnf = _php32()
        solver = IncrementalSolver(cnf, log_proof=True)
        first = solver.solve()
        assert first.is_unsat
        second = solver.solve(assumptions=[1])
        assert second.is_unsat
        assert second.conflicts == 0
        assert check_drup(
            cnf, DrupProof.from_solver_steps(second.proof)
        ).ok

    def test_add_clause_between_calls(self):
        solver = IncrementalSolver(_cnf(2, [[1, 2]]))
        assert solver.solve(assumptions=[-1]).is_sat
        assert solver.add_clause([-2])
        result = solver.solve(assumptions=[-1])
        assert result.is_unsat
        assert solver.solve(assumptions=[1]).is_sat

    def test_sat_model_is_complete_for_check_assignment(self):
        cnf = _cnf(3, [[1, 2], [-1, 3]])
        result = IncrementalSolver(cnf).solve()
        assert result.is_sat
        assert cnf.check_assignment(result.model)


class TestMidSessionProofs:
    def test_every_call_proof_stands_alone(self):
        # Interleave assumption-unsat, sat, and real-unsat calls; each
        # UNSAT proof must certify against its own per-call view.
        cnf = _cnf(3, [[1, 2], [-1, 3], [-2, 3]])
        solver = IncrementalSolver(cnf, log_proof=True)

        r1 = solver.solve(assumptions=[-3])
        assert r1.is_unsat
        assert check_drup(
            cnf_with_assumptions(cnf, [-3]),
            DrupProof.from_solver_steps(r1.proof),
        ).ok

        r2 = solver.solve(assumptions=[3])
        assert r2.is_sat

        r3 = solver.solve(assumptions=[-3, 1])
        assert r3.is_unsat
        assert check_drup(
            cnf_with_assumptions(cnf, [-3, 1]),
            DrupProof.from_solver_steps(r3.proof),
        ).ok
        # Earlier results must be immune to later journal growth.
        assert check_drup(
            cnf_with_assumptions(cnf, [-3]),
            DrupProof.from_solver_steps(r1.proof),
        ).ok

    def test_tautological_assumption_pair(self):
        cnf = _cnf(2, [[1, 2]])
        result = IncrementalSolver(cnf, log_proof=True).solve(
            assumptions=[1, -1]
        )
        assert result.is_unsat
        assert check_drup(
            cnf_with_assumptions(cnf, [1, -1]),
            DrupProof.from_solver_steps(result.proof),
        ).ok


class TestSessionPool:
    def test_digest_is_content_addressed(self):
        a = _cnf(3, [[1, 2], [-1, 3]])
        b = _cnf(3, [[1, 2], [-1, 3]])
        c = _cnf(3, [[1, 2], [-1, -3]])
        assert cnf_digest(a) == cnf_digest(b)
        assert cnf_digest(a) != cnf_digest(c)

    def test_hits_misses_and_resume(self):
        pool = SessionPool(max_sessions=4)
        cnf = _php32()
        first = pool.solve(cnf)
        second = pool.solve(cnf)
        assert first.is_unsat and second.is_unsat
        assert pool.misses == 1
        assert pool.hits == 1
        # The resumed call rides the latched verdict: no new conflicts.
        assert second.conflicts == 0

    def test_proof_and_plain_sessions_are_distinct(self):
        pool = SessionPool()
        cnf = _cnf(2, [[1, 2]])
        assert pool.solve(cnf).proof is None
        assert pool.solve(cnf, log_proof=True).proof is not None
        assert pool.misses == 2

    def test_lru_eviction(self):
        pool = SessionPool(max_sessions=2)
        cnfs = [_cnf(2, [[1, 2]]), _cnf(2, [[-1, 2]]), _cnf(2, [[1, -2]])]
        for cnf in cnfs:
            pool.solve(cnf)
        assert len(pool) == 2
        assert pool.evictions == 1
        # The oldest digest was evicted; touching it is a miss again.
        pool.solve(cnfs[0])
        assert pool.misses == 4

    def test_ambient_pool_scope(self):
        assert current_session_pool() is None
        pool = SessionPool()
        with use_session_pool(pool):
            assert current_session_pool() is pool
        assert current_session_pool() is None
