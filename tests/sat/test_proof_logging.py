"""DRUP proof logging in the CDCL solver, plus a hypothesis cross-check
of the solver against the exhaustive reference on random formulas."""

import random

from hypothesis import given, settings, strategies as st

from repro.sat import Cnf, solve_by_enumeration, solve_cnf
from repro.witness import DrupProof, check_drup


def _cnf(num_vars, clauses):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestProofLogging:
    def test_logging_is_off_by_default(self):
        result = solve_cnf(_cnf(1, [[1], [-1]]))
        assert result.is_unsat
        assert result.proof is None

    def test_sat_formula_logs_no_empty_clause(self):
        result = solve_cnf(_cnf(2, [[1, 2]]), log_proof=True)
        assert result.is_sat
        assert all(step[1] != () for step in result.proof or [])

    def test_init_time_conflict_logs_empty_clause(self):
        # Contradictory units die in clause loading, before search.
        result = solve_cnf(_cnf(1, [[1], [-1]]), log_proof=True)
        assert result.is_unsat
        assert result.proof[-1] == ("a", ())

    def test_propagation_conflict_logs_empty_clause(self):
        result = solve_cnf(
            _cnf(3, [[1], [-1, 2], [-2, 3], [-3]]), log_proof=True
        )
        assert result.is_unsat
        assert result.proof[-1] == ("a", ())
        assert check_drup(
            _cnf(3, [[1], [-1, 2], [-2, 3], [-3]]),
            DrupProof.from_solver_steps(result.proof),
        ).ok

    def test_search_proof_has_learned_clauses(self):
        def var(i, j):
            return 1 + i * 2 + j

        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        cnf = _cnf(6, clauses)
        result = solve_cnf(cnf, log_proof=True)
        assert result.is_unsat
        additions = [lits for op, lits in result.proof if op == "a"]
        assert additions[-1] == ()
        assert check_drup(cnf, DrupProof.from_solver_steps(result.proof)).ok


def _random_cnf(rng, num_vars, num_clauses, max_width):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, max_width)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append(
            [var if rng.random() < 0.5 else -var for var in variables]
        )
    return _cnf(num_vars, clauses)


class TestCrossCheck:
    """Hypothesis property: the CDCL solver agrees with exhaustive
    enumeration, its models satisfy every clause individually, and its
    UNSAT proofs certify under the independent RUP checker."""

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10**9))
    def test_status_model_and_proof_agree(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 6)
        num_clauses = rng.randint(1, 24)
        cnf = _random_cnf(rng, num_vars, num_clauses, 3)
        expected = solve_by_enumeration(cnf)
        result = solve_cnf(cnf, log_proof=True)
        assert result.is_sat == (expected is not None)
        if result.is_sat:
            # Clause-by-clause: every clause has a satisfied literal
            # under the model (stronger diagnostics than a whole-formula
            # check when it fails).
            model = result.model
            for clause in cnf.clauses:
                assert any(
                    model.get(abs(lit)) is (lit > 0) for lit in clause
                ), f"clause {clause} unsatisfied by {model}"
        else:
            proof = DrupProof.from_solver_steps(result.proof)
            assert check_drup(cnf, proof).ok
