"""Tests for the CNF database and DIMACS round-trip."""

import pytest

from repro.sat import Cnf, parse_dimacs, to_dimacs


class TestCnf:
    def test_new_var_sequence(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var("named") == 2
        assert cnf.names[2] == "named"

    def test_add_clause(self):
        cnf = Cnf(num_vars=3)
        cnf.add_clause([1, -2, 3])
        assert cnf.clauses == [(1, -2, 3)]

    def test_tautology_dropped(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, -1, 2])
        assert cnf.num_clauses == 0

    def test_duplicate_literals_merged(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [(1, 2)]

    def test_zero_literal_rejected(self):
        cnf = Cnf(num_vars=1)
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_unallocated_variable_rejected(self):
        cnf = Cnf(num_vars=1)
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_stats(self):
        cnf = Cnf(num_vars=3)
        cnf.add_clause([1, 2])
        cnf.add_clause([-3])
        assert cnf.stats() == {"vars": 3, "clauses": 2, "literals": 3}

    def test_check_assignment(self):
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.check_assignment({1: False, 2: True})
        assert not cnf.check_assignment({1: True, 2: True})
        assert not cnf.check_assignment({1: False, 2: False})

    def test_check_assignment_rejects_incomplete_models(self):
        # A missing variable is *unknown*, not false: witness replay
        # relies on check_assignment refusing to vouch for a partial
        # model, whichever polarity would have satisfied the clause.
        cnf = Cnf(num_vars=2)
        cnf.add_clause([1, 2])
        assert not cnf.check_assignment({})
        assert not cnf.check_assignment({1: False})
        assert not cnf.check_assignment({2: None, 1: False})
        assert cnf.check_assignment({1: False, 2: True})

    def test_check_assignment_negative_literal_needs_assignment(self):
        cnf = Cnf(num_vars=1)
        cnf.add_clause([-1])
        # Before the fix a missing var 1 counted as false, wrongly
        # satisfying the negative literal.
        assert not cnf.check_assignment({})
        assert cnf.check_assignment({1: False})


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf(num_vars=3)
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        parsed = parse_dimacs(to_dimacs(cnf))
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_comments_ignored(self):
        text = "c hello\np cnf 2 1\n1 -2 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [(1, -2)]

    def test_multi_line_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [(1, 2, 3)]

    def test_missing_problem_line_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p dnf 2 1\n1 0\n")

    def test_names_emitted_as_comments(self):
        cnf = Cnf()
        cnf.new_var("e_12")
        text = to_dimacs(cnf)
        assert "c var 1 = e_12" in text
