"""The pluggable SAT backend protocol: resolution and ambient selection,
the reference backend's parity with the classic solver, and the DIMACS
subprocess adapter driven by a fake solver binary."""

import os
import stat
import sys
import textwrap

import pytest

from repro.errors import SolverError
from repro.sat import (
    BACKENDS,
    Cnf,
    DimacsSubprocessBackend,
    PySatBackend,
    ReferenceBackend,
    available_backends,
    current_backend,
    resolve_backend,
    solve_cnf,
    use_backend,
)


def _cnf(num_vars, clauses):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


CASES = [
    (2, [[1, 2]], "sat"),
    (1, [[1], [-1]], "unsat"),
    (3, [[1], [-1, 2], [-2, 3], [-3]], "unsat"),
    (3, [[1, 2], [-1, 3], [-2, 3]], "sat"),
]


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_BACKEND", raising=False)
        assert resolve_backend(None) is ReferenceBackend
        assert current_backend() is ReferenceBackend

    def test_environment_variable_is_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_BACKEND", "reference")
        assert resolve_backend(None) is ReferenceBackend

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError):
            resolve_backend("zchaff")

    def test_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setattr(
            PySatBackend, "is_available", classmethod(lambda cls: False)
        )
        with pytest.raises(SolverError):
            resolve_backend("pysat")

    def test_auto_falls_back_to_reference(self, monkeypatch):
        monkeypatch.setattr(
            PySatBackend, "is_available", classmethod(lambda cls: False)
        )
        monkeypatch.setattr(
            DimacsSubprocessBackend,
            "is_available",
            classmethod(lambda cls: False),
        )
        assert resolve_backend("auto") is ReferenceBackend

    def test_reference_is_always_available(self):
        assert "reference" in available_backends()
        assert set(available_backends()) <= set(BACKENDS)

    def test_use_backend_scopes_the_selection(self):
        with use_backend("reference") as installed:
            assert installed is ReferenceBackend
            assert current_backend() is ReferenceBackend
        assert current_backend() is ReferenceBackend


class TestReferenceBackend:
    @pytest.mark.parametrize("num_vars, clauses, status", CASES)
    def test_verdict_parity_with_classic_solver(
        self, num_vars, clauses, status
    ):
        cnf = _cnf(num_vars, clauses)
        assert solve_cnf(cnf).status == status
        assert ReferenceBackend.solve_cnf(cnf).status == status

    def test_incremental_handle_with_assumptions(self):
        handle = ReferenceBackend(2)
        handle.add_clause([1, 2])
        assert handle.solve(assumptions=[-1]).is_sat
        assert handle.model()[2] is True
        result = handle.solve(assumptions=[-1, -2])
        assert result.is_unsat
        assert result.core is not None

    def test_classmethod_solve_cnf_logs_proofs(self):
        result = ReferenceBackend.solve_cnf(
            _cnf(1, [[1], [-1]]), log_proof=True
        )
        assert result.is_unsat
        assert result.proof[-1] == ("a", ())


# A tiny honest DIMACS solver: brute-force enumeration, SAT-competition
# exit codes (10/20), "s ..."/"v ..." output.  Small inputs only.
_FAKE_SOLVER = textwrap.dedent(
    """\
    #!{python}
    import itertools, sys
    clauses, num_vars = [], 0
    with open(sys.argv[1]) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                num_vars = int(line.split()[2])
                continue
            clauses.append([int(tok) for tok in line.split()[:-1]])
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {{i + 1: bits[i] for i in range(num_vars)}}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            print("s SATISFIABLE")
            print("v " + " ".join(
                str(v if model[v] else -v) for v in sorted(model)) + " 0")
            sys.exit(10)
    print("s UNSATISFIABLE")
    sys.exit(20)
    """
)


@pytest.fixture
def fake_dimacs_solver(tmp_path, monkeypatch):
    script = tmp_path / "fakesat"
    script.write_text(_FAKE_SOLVER.format(python=sys.executable))
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    monkeypatch.setenv("REPRO_SAT_DIMACS_SOLVER", str(script))
    return script


class TestDimacsSubprocessBackend:
    def test_env_override_selects_the_binary(self, fake_dimacs_solver):
        assert DimacsSubprocessBackend.is_available()
        assert DimacsSubprocessBackend.solver_path() == str(
            fake_dimacs_solver
        )

    @pytest.mark.parametrize("num_vars, clauses, status", CASES)
    def test_verdict_parity(self, fake_dimacs_solver, num_vars, clauses,
                            status):
        result = DimacsSubprocessBackend.solve_cnf(_cnf(num_vars, clauses))
        assert result.status == status
        if status == "sat":
            assert _cnf(num_vars, clauses).check_assignment(result.model)

    def test_assumptions_as_appended_units(self, fake_dimacs_solver):
        handle = DimacsSubprocessBackend(2)
        handle.add_clause([1, 2])
        assert handle.solve(assumptions=[-1]).is_sat
        assert handle.solve(assumptions=[-1, -2]).is_unsat
        # Assumptions must not stick to the handle between calls.
        assert handle.solve().is_sat

    def test_refuses_proof_logging(self, fake_dimacs_solver):
        with pytest.raises(SolverError):
            DimacsSubprocessBackend(2, log_proof=True)

    def test_missing_binary_is_unavailable(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SAT_DIMACS_SOLVER", "/nonexistent/solver-binary"
        )
        assert not DimacsSubprocessBackend.is_available()
        with pytest.raises(SolverError):
            DimacsSubprocessBackend(2)

    def test_selectable_through_use_backend(self, fake_dimacs_solver):
        with use_backend("dimacs") as backend:
            assert backend is DimacsSubprocessBackend
            assert backend.solve_cnf(_cnf(1, [[1], [-1]])).is_unsat
