"""The vectorized root-propagation kernel: fixpoint correctness,
conflict detection, the max_rounds truncation contract, and the solver's
watched-pass self-correction after a kernel pass."""

import pytest

from repro.sat import Cnf, IncrementalSolver, solve_cnf
from repro.sat.npkernel import (
    DEFAULT_MAX_ROUNDS,
    HAVE_NUMPY,
    RootPropagationKernel,
    propagate_root,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _chain(length):
    """x1 -> x2 -> ... -> x_length, unit x1 LAST (Tseitin convention),
    as (clauses, num_vars, root_assignment)."""
    clauses = [[-i, i + 1] for i in range(1, length)]
    assigns = [0] * (length + 1)
    assigns[1] = 1
    return clauses, length, assigns


class TestKernelFixpoint:
    def test_chain_cascade(self):
        clauses, num_vars, assigns = _chain(20)
        outcome = RootPropagationKernel(clauses, num_vars).fixpoint(assigns)
        assert not outcome.conflict
        assert outcome.implied == list(range(2, 21))
        assert outcome.propagations == 19

    def test_caller_assignment_is_not_mutated(self):
        clauses, num_vars, assigns = _chain(5)
        before = list(assigns)
        RootPropagationKernel(clauses, num_vars).fixpoint(assigns)
        assert assigns == before

    def test_conflict_detected(self):
        # x1 forces x2 and -x2.
        clauses = [[-1, 2], [-1, -2]]
        assigns = [0, 1, 0]
        outcome = RootPropagationKernel(clauses, 2).fixpoint(assigns)
        assert outcome.conflict

    def test_disagreeing_units_in_one_round(self):
        # Both clauses become unit simultaneously and disagree on x3.
        clauses = [[-1, 3], [-2, -3]]
        assigns = [0, 1, 1, 0]
        outcome = RootPropagationKernel(clauses, 3).fixpoint(assigns)
        assert outcome.conflict

    def test_max_rounds_truncates_legitimately(self):
        clauses, num_vars, assigns = _chain(10)
        outcome = RootPropagationKernel(clauses, num_vars).fixpoint(
            assigns, max_rounds=3
        )
        assert not outcome.conflict
        # One literal per round on a chain: truncation is not an error,
        # the caller's watched pass finishes the cascade.
        assert outcome.rounds == 3
        assert outcome.implied == [2, 3, 4]

    def test_rejects_unit_clauses(self):
        with pytest.raises(ValueError):
            RootPropagationKernel([[1]], 1)

    def test_satisfied_clauses_are_skipped(self):
        clauses = [[1, 2], [-1, 2]]
        assigns = [0, 1, 0]
        outcome = RootPropagationKernel(clauses, 2).fixpoint(assigns)
        assert outcome.implied == [2]

    def test_propagate_root_wrapper(self):
        clauses, num_vars, assigns = _chain(4)
        outcome = propagate_root(clauses, num_vars, assigns)
        assert outcome is not None
        assert outcome.implied == [2, 3, 4]
        assert propagate_root([], 0, []) is None


class TestSolverIntegration:
    def _big_chain_cnf(self, length=400):
        # Large enough to clear the kernel's clause-count gate; the unit
        # root is added last so clause loading cannot pre-collapse it.
        cnf = Cnf(num_vars=length)
        for i in range(1, length):
            cnf.add_clause([-i, i + 1])
        cnf.add_clause([1])
        return cnf

    def test_kernel_fires_and_model_is_correct(self):
        cnf = self._big_chain_cnf()
        solver = IncrementalSolver(cnf, use_kernel=True)
        result = solver.solve()
        assert result.is_sat
        assert solver._kernel_propagations > 0
        assert cnf.check_assignment(result.model)
        assert all(result.model[v] for v in range(1, cnf.num_vars + 1))

    def test_kernel_and_cold_verdicts_agree(self):
        cnf = self._big_chain_cnf()
        with_kernel = IncrementalSolver(cnf, use_kernel=True).solve()
        without = IncrementalSolver(cnf, use_kernel=False).solve()
        cold = solve_cnf(cnf)
        assert with_kernel.status == without.status == cold.status == "sat"
        assert with_kernel.model == without.model == cold.model

    def test_deep_chain_outruns_default_rounds(self):
        # Deeper than DEFAULT_MAX_ROUNDS: the kernel legitimately stops
        # early and the watched rescan must finish the cascade.
        length = DEFAULT_MAX_ROUNDS * 8
        cnf = self._big_chain_cnf(length)
        result = IncrementalSolver(cnf, use_kernel=True).solve()
        assert result.is_sat
        assert all(result.model[v] for v in range(1, length + 1))

    def test_root_conflict_stays_certifiable(self):
        # The kernel leaves root conflicts to the watched pass so the
        # DRUP path is byte-identical with and without it.
        length = 300
        cnf = Cnf(num_vars=length)
        for i in range(1, length):
            cnf.add_clause([-i, i + 1])
        cnf.add_clause([-length])
        cnf.add_clause([1])
        from repro.witness import DrupProof, check_drup

        result = IncrementalSolver(cnf, log_proof=True).solve()
        assert result.is_unsat
        assert check_drup(
            cnf, DrupProof.from_solver_steps(result.proof)
        ).ok
