"""Cnf.dedupe(): duplicate-clause removal before solver handoff."""

from repro.eufm import and_, bvar, not_, or_
from repro.sat.cnf import Cnf
from repro.sat.tseitin import cnf_for_satisfiability


def _cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestDedupe:
    def test_exact_duplicate_removed(self):
        cnf = _cnf(2, [[1, 2], [1, 2], [-1]])
        assert cnf.dedupe() == 1
        assert cnf.clauses == [(1, 2), (-1,)]

    def test_permuted_duplicate_removed(self):
        # Clauses are sets of literals; literal order must not matter.
        cnf = _cnf(3, [[1, -2, 3], [3, 1, -2]])
        assert cnf.dedupe() == 1
        assert cnf.clauses == [(1, -2, 3)]

    def test_first_occurrence_order_preserved(self):
        cnf = _cnf(3, [[1], [2], [1], [3], [2]])
        assert cnf.dedupe() == 2
        assert cnf.clauses == [(1,), (2,), (3,)]

    def test_nothing_to_remove(self):
        cnf = _cnf(2, [[1], [2], [1, 2]])
        assert cnf.dedupe() == 0
        assert len(cnf.clauses) == 3

    def test_empty_clause_kept(self):
        # An UNSAT marker must survive dedupe; only repeats go.
        cnf = _cnf(1, [[1]])
        cnf.clauses.append(())
        cnf.clauses.append(())
        assert cnf.dedupe() == 1
        assert cnf.clauses == [(1,), ()]

    def test_idempotent(self):
        cnf = _cnf(2, [[1, 2], [2, 1], [-1]])
        cnf.dedupe()
        assert cnf.dedupe() == 0


class TestSolverHandoff:
    def test_cnf_for_satisfiability_is_duplicate_free(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        # Shared sub-DAGs produce repeated definition clauses pre-dedupe.
        shared = and_(p, q)
        phi = or_(and_(shared, r), and_(shared, not_(r)))
        result = cnf_for_satisfiability(phi)
        keys = [frozenset(c) for c in result.cnf.clauses]
        assert len(keys) == len(set(keys))
