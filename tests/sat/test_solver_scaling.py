"""Amortized clause-activity maintenance and the memory-budget-aware
learned-clause limit (the per-conflict work regressions of the campaign
slowdown)."""

from repro.guard.deadline import current_deadline, use_deadline
from repro.guard.memory import MemoryBudget
from repro.sat import Cnf, solve_cnf
from repro.sat.solver import _CLAUSE_BYTES, Solver, _Clause


def _solver(num_vars=4, clauses=((1, 2), (3, 4))):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return Solver(cnf)


def _with_learned(solver, count):
    # Three literals: binary clauses are exempt from reduction sweeps.
    for index in range(count):
        clause = _Clause([1, 2, 3], learned=True)
        clause.activity = float(index)
        solver.learned.append(clause)
    return solver.learned


class TestBumpClauseIsConstantWork:
    def test_bump_touches_only_the_bumped_clause(self):
        solver = _solver()
        learned = _with_learned(solver, 100)
        solver.cla_inc = 2e20  # past the old rescale trigger
        before = [clause.activity for clause in learned[1:]]
        solver._bump_clause(learned[0])
        # O(1): no global rescale sweep hides inside a single bump.
        assert [clause.activity for clause in learned[1:]] == before
        assert learned[0].activity == 0.0 + 2e20
        assert solver._activity_rescales == 0

    def test_bump_ignores_problem_clauses(self):
        solver = _solver()
        clause = solver.clauses[0]
        solver._bump_clause(clause)
        assert clause.activity == 0.0

    def test_rescale_is_uniform_and_order_preserving(self):
        solver = _solver()
        learned = _with_learned(solver, 10)
        solver.cla_inc = 2e20
        order_before = sorted(
            range(10), key=lambda i: learned[i].activity
        )
        solver._rescale_clause_activities()
        assert solver._activity_rescales == 1
        assert solver.cla_inc == 2e20 * 1e-20
        order_after = sorted(
            range(10), key=lambda i: learned[i].activity
        )
        assert order_before == order_after
        assert all(clause.activity <= 1.0 for clause in learned)

    def test_hard_unsat_instance_still_solves(self):
        # End-to-end guard: activity bookkeeping changes must not alter
        # verdicts on a conflict-heavy instance.
        def var(i, j):
            return 1 + i * 3 + j

        clauses = [[var(i, j) for j in range(3)] for i in range(4)]
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    clauses.append([-var(i1, j), -var(i2, j)])
        cnf = Cnf(num_vars=12)
        for clause in clauses:
            cnf.add_clause(clause)
        assert solve_cnf(cnf).is_unsat


class TestLearnedLimit:
    def test_default_without_budget_is_historical_4000(self):
        assert current_deadline().memory is None
        assert _solver()._learned_limit() == 4000

    def test_budget_shrinks_the_limit(self):
        budget = MemoryBudget(max_bytes=64 * (_CLAUSE_BYTES + 8 * 16))
        deadline = current_deadline().derive(memory=budget)
        with use_deadline(deadline):
            limit = _solver()._learned_limit()
        assert 256 <= limit < 4000

    def test_floor_holds_when_budget_is_exhausted(self):
        budget = MemoryBudget(max_bytes=1024)
        budget.charged_bytes = 4096  # already over
        deadline = current_deadline().derive(memory=budget)
        with use_deadline(deadline):
            assert _solver()._learned_limit() == 256

    def test_large_budget_caps_at_4000(self):
        budget = MemoryBudget.from_mb(4096)
        deadline = current_deadline().derive(memory=budget)
        with use_deadline(deadline):
            assert _solver()._learned_limit() == 4000

    def test_reduce_learned_honours_the_limit(self):
        budget = MemoryBudget(max_bytes=600 * (_CLAUSE_BYTES + 8 * 16))
        deadline = current_deadline().derive(memory=budget)
        with use_deadline(deadline):
            solver = _solver()
            limit = solver._learned_limit()
            _with_learned(solver, limit + 10)
            solver._reduce_learned()
            assert len(solver.learned) <= limit
