"""Unit and property tests for the CDCL solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Cnf, Solver, solve_by_enumeration, solve_cnf


def _cnf(num_vars, clauses):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(_cnf(0, [])).is_sat

    def test_single_unit(self):
        result = solve_cnf(_cnf(1, [[1]]))
        assert result.is_sat
        assert result.model[1] is True

    def test_contradictory_units(self):
        assert solve_cnf(_cnf(1, [[1], [-1]])).is_unsat

    def test_simple_implication_chain(self):
        # 1 -> 2 -> 3, with 1 asserted and -3 asserted: unsat.
        cnf = _cnf(3, [[1], [-1, 2], [-2, 3], [-3]])
        assert solve_cnf(cnf).is_unsat

    def test_model_satisfies_formula(self):
        cnf = _cnf(4, [[1, 2], [-1, 3], [-2, -3], [3, 4]])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert cnf.check_assignment(result.model)

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i in hole j; i in 0..2, j in 0..1.
        def var(i, j):
            return 1 + i * 2 + j

        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        result = solve_cnf(_cnf(6, clauses))
        assert result.is_unsat
        assert result.conflicts >= 1

    def test_conflict_budget_returns_unknown(self):
        clauses = _php_clauses(6, 5)
        cnf = _cnf(30, clauses)
        result = solve_cnf(cnf, max_conflicts=1)
        assert result.status in ("unknown", "unsat")

    def test_stats_populated(self):
        cnf = _cnf(3, [[1, 2], [-1, 2], [1, -2], [-1, -2, 3]])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.cpu_seconds >= 0.0
        assert result.propagations >= 1

    def test_search_statistics_populated(self):
        # Hard enough to force clause learning, deep decision levels and
        # at least one Luby restart (the restart base is 100 conflicts).
        cnf = _cnf(30, _php_clauses(6, 5))
        result = solve_cnf(cnf)
        assert result.is_unsat
        assert result.learned_clauses >= 1
        assert result.restarts >= 1
        assert 2 <= result.max_decision_level <= cnf.num_vars

    def test_trivial_instance_has_quiet_search_stats(self):
        # A unit clause needs no decisions, so no restarts, no learned
        # clauses, and the decision stack never grows.
        result = solve_cnf(_cnf(1, [[1]]))
        assert result.is_sat
        assert result.restarts == 0
        assert result.learned_clauses == 0
        assert result.max_decision_level == 0


def _php_clauses(pigeons, holes):
    def var(i, j):
        return 1 + i * holes + j

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-var(i1, j), -var(i2, j)])
    return clauses


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_php_unsat(self, holes):
        pigeons = holes + 1
        cnf = _cnf(pigeons * holes, _php_clauses(pigeons, holes))
        assert solve_cnf(cnf).is_unsat

    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_php_equal_sat(self, holes):
        cnf = _cnf(holes * holes, _php_clauses(holes, holes))
        result = solve_cnf(cnf)
        assert result.is_sat
        assert cnf.check_assignment(result.model)


class TestAgainstReference:
    def _random_cnf(self, rng, num_vars, num_clauses, width):
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, width)
            variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
            clauses.append(
                [var if rng.random() < 0.5 else -var for var in variables]
            )
        return _cnf(num_vars, clauses)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_3cnf_agrees_with_enumeration(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 9)
        # Around the sat/unsat threshold of ~4.26 clauses per variable.
        num_clauses = int(num_vars * rng.uniform(2.0, 6.0))
        cnf = self._random_cnf(rng, num_vars, num_clauses, 3)
        expected = solve_by_enumeration(cnf)
        result = solve_cnf(cnf)
        if expected is None:
            assert result.is_unsat
        else:
            assert result.is_sat
            assert cnf.check_assignment(result.model)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_agreement(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 8)
        num_clauses = rng.randint(1, 30)
        cnf = self._random_cnf(rng, num_vars, num_clauses, 4)
        expected = solve_by_enumeration(cnf)
        result = solve_cnf(cnf)
        assert result.is_sat == (expected is not None)
        if result.is_sat:
            assert cnf.check_assignment(result.model)


class TestReference:
    def test_reference_guards_variable_count(self):
        with pytest.raises(ValueError):
            solve_by_enumeration(Cnf(num_vars=50))

    def test_reference_empty_clause(self):
        cnf = Cnf(num_vars=1)
        cnf.clauses.append(())
        assert solve_by_enumeration(cnf) is None


class TestTimeBudgetOnPropagations:
    """The time budget must bite on conflict-free work, not only every
    256th conflict — a huge implication chain propagates millions of
    literals without a single conflict."""

    @staticmethod
    def _chain_cnf(length):
        # Unit clause 1 plus (i -> i+1) chain: the first propagate()
        # cascades `length` implications and never conflicts.
        cnf = Cnf(num_vars=length)
        cnf.add_clause([1])
        for i in range(1, length):
            cnf.add_clause([-i, i + 1])
        return cnf

    def test_zero_time_budget_stops_a_conflict_free_cascade(self):
        result = solve_cnf(self._chain_cnf(3000), max_seconds=0.0)
        assert result.status == "unknown"
        assert result.conflicts == 0

    def test_cascade_completes_without_a_budget(self):
        result = solve_cnf(self._chain_cnf(3000))
        assert result.is_sat

    def test_ambient_deadline_stops_the_cascade_with_stage(self):
        from repro.errors import BudgetExhausted
        from repro.guard import Deadline, use_deadline

        with use_deadline(Deadline(max_wall_seconds=0.0)):
            with pytest.raises(BudgetExhausted) as info:
                solve_cnf(self._chain_cnf(3000))
        assert info.value.stage == "sat"
