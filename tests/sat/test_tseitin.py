"""Tests for the Tseitin translation: equisatisfiability and model agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eufm import (
    FALSE,
    TRUE,
    Interpretation,
    and_,
    bvar,
    evaluate,
    ite_formula,
    not_,
    or_,
)
from repro.sat import cnf_for_satisfiability, solve_cnf, tseitin


class TestConstants:
    def test_true_constant(self):
        result = cnf_for_satisfiability(TRUE)
        assert result.constant is True
        assert solve_cnf(result.cnf).is_sat

    def test_false_constant(self):
        result = cnf_for_satisfiability(FALSE)
        assert result.constant is False
        assert solve_cnf(result.cnf).is_unsat


class TestStructure:
    def test_single_variable(self):
        p = bvar("p")
        result = cnf_for_satisfiability(p)
        outcome = solve_cnf(result.cnf)
        assert outcome.is_sat
        assert outcome.model[result.var_map[p]] is True

    def test_negated_variable(self):
        p = bvar("p")
        result = cnf_for_satisfiability(not_(p))
        outcome = solve_cnf(result.cnf)
        assert outcome.is_sat
        assert outcome.model[result.var_map[p]] is False

    def test_contradiction(self):
        p, q = bvar("p"), bvar("q")
        phi = and_(or_(p, q), not_(p), not_(q))
        assert solve_cnf(cnf_for_satisfiability(phi).cnf).is_unsat

    def test_ite_encoding(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        phi = and_(ite_formula(p, q, r), p, not_(q))
        assert solve_cnf(cnf_for_satisfiability(phi).cnf).is_unsat

    def test_shared_subformula_encoded_once(self):
        p, q = bvar("p"), bvar("q")
        shared = and_(p, q)
        phi = or_(and_(shared, bvar("r")), and_(shared, bvar("s")))
        result = tseitin(phi)
        # Variables: p q r s + gates for shared, two outer ands, inner or-def.
        assert result.cnf.num_vars <= 9


def _bool_formulas(depth=3):
    names = ["p", "q", "r", "s"]

    @st.composite
    def strat(draw, d=depth):
        if d == 0:
            return bvar(draw(st.sampled_from(names)))
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return bvar(draw(st.sampled_from(names)))
        if choice == 1:
            return not_(draw(strat(d - 1)))
        if choice == 2:
            return and_(draw(strat(d - 1)), draw(strat(d - 1)))
        if choice == 3:
            return or_(draw(strat(d - 1)), draw(strat(d - 1)))
        return ite_formula(draw(strat(d - 1)), draw(strat(d - 1)), draw(strat(d - 1)))

    return strat()


class TestEquisatisfiability:
    @settings(max_examples=120, deadline=None)
    @given(_bool_formulas(), st.integers(0, 15))
    def test_sat_agrees_with_direct_evaluation(self, phi, seed):
        """phi is satisfiable iff some of 2^n assignments satisfies it; we
        check one direction cheaply: the SAT model, restricted to input
        variables, must evaluate phi to True."""
        result = cnf_for_satisfiability(phi)
        if result.root_literal is None:
            return
        outcome = solve_cnf(result.cnf)
        if outcome.is_sat:
            bool_values = {
                var.name: outcome.model[index]
                for var, index in result.var_map.items()
            }
            interp = Interpretation(bool_values=bool_values)
            assert evaluate(phi, interp) is True
        else:
            # Exhaustively confirm unsatisfiability over the input vars.
            names = [var.name for var in result.var_map]
            for mask in range(1 << len(names)):
                assignment = {
                    name: bool(mask >> bit & 1) for bit, name in enumerate(names)
                }
                interp = Interpretation(bool_values=assignment)
                assert evaluate(phi, interp) is False

    @settings(max_examples=60, deadline=None)
    @given(_bool_formulas())
    def test_negation_flips_validity(self, phi):
        """phi valid (not_(phi) unsat) implies not_(phi) has no model."""
        neg = cnf_for_satisfiability(not_(phi))
        pos = cnf_for_satisfiability(phi)
        neg_sat = (
            neg.constant
            if neg.root_literal is None
            else solve_cnf(neg.cnf).is_sat
        )
        pos_sat = (
            pos.constant
            if pos.root_literal is None
            else solve_cnf(pos.cnf).is_sat
        )
        # At least one of phi, not phi is satisfiable.
        assert neg_sat or pos_sat
