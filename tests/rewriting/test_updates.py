"""Unit tests for update-chain decomposition with intermediate states."""

import pytest

from repro.eufm import TRUE, bvar, ite_term, not_, tvar, write
from repro.rewriting import decompose_chain


class TestDecomposeChain:
    def test_bare_variable(self):
        chain = decompose_chain(tvar("RF"))
        assert chain.base is tvar("RF")
        assert chain.items == []
        assert chain.final_state is tvar("RF")

    def test_unconditional_write(self):
        mem = write(tvar("RF"), tvar("a"), tvar("d"))
        chain = decompose_chain(mem)
        assert len(chain.items) == 1
        item = chain.items[0]
        assert item.context is TRUE
        assert item.addr is tvar("a")
        assert item.data is tvar("d")
        assert item.prev_state is tvar("RF")
        assert item.post_state is mem

    def test_guarded_write(self):
        base = tvar("RF")
        mem = ite_term(bvar("c"), write(base, tvar("a"), tvar("d")), base)
        chain = decompose_chain(mem)
        assert len(chain.items) == 1
        assert chain.items[0].context is bvar("c")

    def test_negated_guard_form(self):
        base = tvar("RF")
        mem = ite_term(bvar("c"), base, write(base, tvar("a"), tvar("d")))
        chain = decompose_chain(mem)
        assert chain.items[0].context is not_(bvar("c"))

    def test_stacked_updates_oldest_first(self):
        base = tvar("RF")
        first = ite_term(bvar("c1"), write(base, tvar("a1"), tvar("d1")), base)
        second = ite_term(bvar("c2"), write(first, tvar("a2"), tvar("d2")), first)
        chain = decompose_chain(second)
        assert [item.addr for item in chain.items] == [tvar("a1"), tvar("a2")]
        assert chain.items[0].post_state is first
        assert chain.items[1].prev_state is first
        assert chain.state_after(1) is first
        assert chain.state_after(2) is second
        assert chain.state_after(0) is base

    def test_non_chain_rejected(self):
        mem = ite_term(
            bvar("c"),
            write(tvar("M1"), tvar("a"), tvar("d")),
            write(tvar("M2"), tvar("a"), tvar("d")),
        )
        with pytest.raises(ValueError):
            decompose_chain(mem)

    def test_mixed_guarded_and_plain(self):
        base = tvar("RF")
        plain = write(base, tvar("a1"), tvar("d1"))
        guarded = ite_term(bvar("c"), write(plain, tvar("a2"), tvar("d2")), plain)
        chain = decompose_chain(guarded)
        assert len(chain.items) == 2
        assert chain.items[0].context is TRUE
        assert chain.items[1].context is bvar("c")
