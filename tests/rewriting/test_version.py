"""Registry fingerprint tests (repro.rewriting.version)."""

import re

from repro.rewriting.version import registry_fingerprint, registry_version


def test_version_format():
    assert re.fullmatch(r"\d+r-[0-9a-f]{12}", registry_version())


def test_version_counts_the_registry():
    from repro.analysis.rule_safety import REGISTRY

    assert registry_version().startswith(f"{len(REGISTRY)}r-")


def test_version_tail_is_the_fingerprint_prefix():
    assert registry_version().split("-", 1)[1] == registry_fingerprint()[:12]


def test_fingerprint_is_deterministic_within_a_process():
    assert registry_fingerprint() == registry_fingerprint()
    assert registry_version() == registry_version()


def test_fingerprint_is_full_sha256_hex():
    digest = registry_fingerprint()
    assert len(digest) == 64
    assert all(c in "0123456789abcdef" for c in digest)
