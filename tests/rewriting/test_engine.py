"""Tests for the rewriting engine on simulated diagrams."""

import pytest

from repro.encode import check_validity
from repro.eufm import bool_variables, term_variables
from repro.processor import (
    Bug,
    BugKind,
    ProcessorConfig,
    forwarding_bug,
    run_diagram,
)
from repro.rewriting import decompose_chain, rewrite_diagram


class TestDecomposeChain:
    def test_impl_chain_has_expected_updates(self):
        config = ProcessorConfig(n_rob=3, issue_width=2)
        artifacts = run_diagram(config)
        chain = decompose_chain(artifacts.rf_impl)
        # l retirement + (N + k) completion updates.
        assert len(chain.items) == 2 + 3 + 2
        assert chain.base is artifacts.initial_rf

    def test_spec_chain_has_one_update_per_initial_entry(self):
        config = ProcessorConfig(n_rob=3, issue_width=2)
        artifacts = run_diagram(config)
        chain = decompose_chain(artifacts.spec_states[0].reg_file)
        assert len(chain.items) == 3

    def test_state_after(self):
        config = ProcessorConfig(n_rob=2, issue_width=1)
        artifacts = run_diagram(config)
        chain = decompose_chain(artifacts.spec_states[0].reg_file)
        assert chain.state_after(0) is chain.base
        assert chain.state_after(2) is artifacts.spec_states[0].reg_file


class TestRewriteCorrectDesigns:
    @pytest.mark.parametrize(
        "n,k", [(1, 1), (2, 1), (2, 2), (4, 2), (8, 4), (16, 8)]
    )
    def test_all_entries_proved(self, n, k):
        artifacts = run_diagram(ProcessorConfig(n_rob=n, issue_width=k))
        result = rewrite_diagram(artifacts)
        assert result.succeeded, result.failure
        assert result.proved_entries == list(range(1, n + 1))
        assert result.reduced_formula is not None

    def test_reduced_formula_is_valid(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=4, issue_width=2))
        result = rewrite_diagram(artifacts)
        validity = check_validity(result.reduced_formula, memory_mode="conservative")
        assert validity.valid is True

    def test_reduced_formula_independent_of_rob_size(self):
        """Table 5's property: after rewriting, the formula depends only on
        the newly fetched instructions."""
        stats = []
        for n in (4, 8, 16):
            artifacts = run_diagram(ProcessorConfig(n_rob=n, issue_width=2))
            result = rewrite_diagram(artifacts)
            validity = check_validity(
                result.reduced_formula, memory_mode="conservative"
            )
            s = validity.encoded.stats
            stats.append((s.eij_primary, s.other_primary, s.cnf_clauses))
        assert stats[0] == stats[1] == stats[2]

    def test_no_eij_variables_after_rewriting(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=6, issue_width=2))
        result = rewrite_diagram(artifacts)
        validity = check_validity(result.reduced_formula, memory_mode="conservative")
        assert validity.encoded.stats.eij_primary == 0

    def test_reduced_formula_mentions_no_initial_rob_state(self):
        """The rewriting rules eliminate the variables of the initial ROB
        entries (paper Sect. 7.2)."""
        artifacts = run_diagram(ProcessorConfig(n_rob=4, issue_width=1))
        result = rewrite_diagram(artifacts)
        names = {v.name for v in bool_variables(result.reduced_formula)}
        assert not any(name.startswith("Valid") for name in names)
        assert not any(name.startswith("NDExecute") for name in names)
        term_names = {v.name for v in term_variables(result.reduced_formula)}
        assert not any(name.startswith("Result") for name in term_names)
        assert not any(name.startswith("Dest") for name in term_names)

    def test_case_split_criterion_also_valid(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=3, issue_width=2))
        result = rewrite_diagram(artifacts, criterion="case_split")
        validity = check_validity(result.reduced_formula, memory_mode="conservative")
        assert validity.valid is True


class TestRewriteBuggyDesigns:
    def test_forwarding_bug_flags_exact_slice(self):
        """The paper's experiment: the engine names the offending slice."""
        artifacts = run_diagram(
            ProcessorConfig(n_rob=16, issue_width=2), bug=forwarding_bug(11)
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.entry == 11
        assert result.failure.stage == "data"

    def test_second_operand_bug(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=8, issue_width=2),
            bug=Bug(BugKind.FORWARD_STALE_RESULT, entry=5, operand=2),
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.entry == 5
        assert "operand 2" in result.failure.detail

    def test_hazard_bug_detected(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=6, issue_width=2),
            bug=Bug(BugKind.EXECUTE_IGNORES_HAZARD, entry=4),
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.entry == 4

    def test_retire_without_result_fails_data_rule(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=4, issue_width=2),
            bug=Bug(BugKind.RETIRE_WITHOUT_RESULT, entry=2),
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.stage in ("data", "merge")

    def test_out_of_order_retirement_fails_reorder_rule(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=4, issue_width=3),
            bug=Bug(BugKind.RETIRE_OUT_OF_ORDER, entry=3),
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.stage in ("reorder", "merge", "data")

    def test_retire_ignores_valid_fails_merge_rule(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=4, issue_width=2),
            bug=Bug(BugKind.RETIRE_IGNORES_VALID, entry=1),
        )
        result = rewrite_diagram(artifacts)
        assert not result.succeeded
        assert result.failure.stage == "merge"

    def test_pc_bug_passes_rewriting_fails_reduced_formula(self):
        """A control bug outside the ROB data path is invisible to the
        rewriting rules and must be caught by the reduced formula."""
        artifacts = run_diagram(
            ProcessorConfig(n_rob=4, issue_width=2),
            bug=Bug(BugKind.PC_SINGLE_INCREMENT),
        )
        result = rewrite_diagram(artifacts)
        assert result.succeeded
        validity = check_validity(result.reduced_formula, memory_mode="conservative")
        assert validity.valid is False

    def test_bugs_are_not_false_negatives(self):
        """Cross-check on a small configuration: every defect the rules
        flag is confirmed invalid by the precise Positive-Equality flow."""
        from repro.processor import build_correctness_formula

        for bug in (
            forwarding_bug(2),
            Bug(BugKind.RETIRE_WITHOUT_RESULT, entry=1),
        ):
            artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=1), bug=bug)
            rewrite = rewrite_diagram(artifacts)
            assert not rewrite.succeeded
            phi = build_correctness_formula(artifacts)
            assert check_validity(phi).valid is False
