"""Unit tests for the structural rewriting rules."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bvar,
    eq,
    ite_formula,
    ite_term,
    not_,
    or_,
    tvar,
    uf,
)
from repro.rewriting import (
    RuleViolation,
    conjuncts,
    contexts_disjoint,
    merge_contexts,
    prove_forwarding_matches_read,
    reduce_under,
    split_on_guard,
)
from repro.rewriting.rules import substitute_opaque


class TestConjuncts:
    def test_true_is_empty(self):
        assert conjuncts(TRUE) == frozenset()

    def test_atom_is_singleton(self):
        p = bvar("p")
        assert conjuncts(p) == frozenset((p,))

    def test_conjunction_flattens(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        assert conjuncts(and_(p, and_(q, r))) == frozenset((p, q, r))


class TestContextsDisjoint:
    def test_direct_complement(self):
        p, q = bvar("p"), bvar("q")
        assert contexts_disjoint(and_(p, q), and_(p, not_(q)))

    def test_retirement_shape(self):
        """Valid_i & NOT retire_i vs Valid_j & retire_j where retire_j's
        conjuncts include retire_i's — the in-order-retirement shape."""
        or1, or2 = bvar("or1"), bvar("or2")
        retire_1 = or1
        retire_2 = and_(or1, or2)
        v1, v2 = bvar("Valid1"), bvar("Valid2")
        ctx_flush_1 = and_(v1, not_(retire_1))
        ctx_retire_2 = and_(v2, retire_2)
        assert contexts_disjoint(ctx_flush_1, ctx_retire_2)
        assert contexts_disjoint(ctx_retire_2, ctx_flush_1)

    def test_overlapping_contexts(self):
        p, q = bvar("p"), bvar("q")
        assert not contexts_disjoint(p, q)

    def test_same_context_not_disjoint(self):
        p = bvar("p")
        assert not contexts_disjoint(p, p)


class TestMergeContexts:
    def test_paper_shape(self):
        valid = bvar("Valid1")
        retire = bvar("retire1")
        merged = merge_contexts(and_(valid, retire), and_(valid, not_(retire)))
        assert merged is not None
        context, residual = merged
        assert context is valid
        assert residual is retire

    def test_compound_residual(self):
        valid = bvar("Valid2")
        or1, or2 = bvar("or1"), bvar("or2")
        retire = and_(or1, or2)
        merged = merge_contexts(and_(valid, retire), and_(valid, not_(retire)))
        assert merged is not None
        context, residual = merged
        assert context is valid
        assert residual is retire

    def test_non_complementary_rejected(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        assert merge_contexts(and_(p, q), and_(p, r)) is None

    def test_mismatched_common_part_rejected(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        assert merge_contexts(and_(p, q), and_(r, not_(q))) is None


class TestReduceUnder:
    def test_variable_replacement(self):
        p = bvar("p")
        x, y = tvar("x"), tvar("y")
        node = ite_term(p, x, y)
        assert reduce_under(node, {p: TRUE}) is x
        assert reduce_under(node, {p: FALSE}) is y

    def test_nested_folding(self):
        p, q = bvar("p"), bvar("q")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        node = ite_term(p, ite_term(q, x, y), z)
        assert reduce_under(node, {p: TRUE, q: FALSE}) is y

    def test_stop_nodes_are_opaque(self):
        p = bvar("p")
        frozen = ite_term(p, tvar("x"), tvar("y"))
        node = uf("f", [frozen])
        reduced = reduce_under(node, {p: TRUE}, stop_nodes={frozen})
        assert reduced is node  # untouched because the ITE is opaque

    def test_non_constant_assumption_rejected(self):
        with pytest.raises(ValueError):
            reduce_under(bvar("p"), {bvar("p"): bvar("q")})


class TestSubstituteOpaque:
    def test_replaces_without_descending(self):
        deep = uf("f", [uf("f", [tvar("x")])])
        replacement = tvar("fresh")
        node = uf("g", [deep, tvar("y")])
        out = substitute_opaque(node, {deep: replacement})
        assert out is uf("g", [replacement, tvar("y")])

    def test_root_replacement(self):
        x = tvar("x")
        assert substitute_opaque(x, {x: tvar("y")}) is tvar("y")


class TestSplitOnGuard:
    def test_plain_ite(self):
        g, t, e = bvar("g"), bvar("t"), bvar("e")
        node = ite_formula(g, t, e)
        assert split_on_guard(node, g) == (t, e)

    def test_or_with_negated_guard(self):
        g, t = bvar("g"), bvar("t")
        node = or_(not_(g), t)  # ITE(g, t, TRUE)
        assert split_on_guard(node, g) == (t, TRUE)

    def test_or_with_guard(self):
        g, e = bvar("g"), bvar("e")
        node = or_(g, e)  # ITE(g, TRUE, e)
        assert split_on_guard(node, g) == (TRUE, e)

    def test_and_with_guard(self):
        g, t = bvar("g"), bvar("t")
        node = and_(g, t)  # ITE(g, t, FALSE)
        assert split_on_guard(node, g) == (t, FALSE)

    def test_no_match(self):
        assert split_on_guard(bvar("p"), bvar("g")) is None


class TestForwardingWalk:
    def _chains(self, producers):
        """Build matched forwarding / spec-read / availability chains."""
        src = tvar("SrcX")
        rf_read = uf("read0", [src])
        fwd, spec, avail = rf_read, rf_read, TRUE
        for j, _ in enumerate(producers, start=1):
            valid = bvar(f"V{j}")
            vres = bvar(f"VR{j}")
            dest = tvar(f"D{j}")
            result = tvar(f"R{j}")
            spec_data = ite_term(vres, result, tvar(f"Computed{j}"))
            match = and_(valid, eq(dest, src))
            fwd = ite_term(match, result, fwd)
            spec = ite_term(match, spec_data, spec)
            avail = ite_formula(match, vres, avail)
        return fwd, spec, avail

    def test_single_producer(self):
        fwd, spec, avail = self._chains([1])
        prove_forwarding_matches_read(fwd, spec, avail)

    def test_three_producers(self):
        fwd, spec, avail = self._chains([1, 2, 3])
        prove_forwarding_matches_read(fwd, spec, avail)

    def test_empty_chain(self):
        fwd, spec, avail = self._chains([])
        prove_forwarding_matches_read(fwd, spec, avail)

    def test_wrong_guard_rejected(self):
        fwd, spec, avail = self._chains([1, 2])
        # Tamper: change the outermost guard of the forwarding chain.
        bad = ite_term(bvar("other_guard"), fwd.then, fwd.els)
        with pytest.raises(RuleViolation):
            prove_forwarding_matches_read(bad, spec, avail)

    def test_wrong_result_rejected(self):
        fwd, spec, avail = self._chains([1, 2])
        bad = ite_term(fwd.cond, tvar("WrongResult"), fwd.els)
        with pytest.raises(RuleViolation):
            prove_forwarding_matches_read(bad, spec, avail)

    def test_wrong_availability_rejected(self):
        fwd, spec, avail = self._chains([1])
        with pytest.raises(RuleViolation):
            prove_forwarding_matches_read(fwd, spec, bvar("unrelated"))
