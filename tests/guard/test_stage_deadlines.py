"""Every pipeline layer honors the ambient deadline and names itself.

The technique mirrors how a real stall presents: an injected stage delay
(the ``slow`` fault's mechanism) makes one chosen stage slow, and the
wall budget — ample for the whole healthy run — expires exactly there.
``BudgetExhausted.stage`` must then name that layer, which is what makes
a production timeout actionable.
"""

import pytest

from repro.core.verifier import verify
from repro.errors import BudgetExhausted, MemoryBudgetExhausted
from repro.guard import Deadline, use_deadline
from repro.processor.bugs import Bug, BugKind
from repro.processor.params import ProcessorConfig

CONFIG = ProcessorConfig(n_rob=2, issue_width=1)

#: Stages crossed by a plain rewriting-method run, in pipeline order.
REWRITING_STAGES = [
    "tlsim",
    "rewrite",
    "encode.memory",
    "encode.uf_elim",
    "encode.eij",
    "encode.transitivity",
    "encode.tseitin",
    "sat",
]


def expire_in(stage, budget=2.0, delay=3.0, **verify_kwargs):
    deadline = Deadline(max_wall_seconds=budget)
    deadline.add_stage_delay(stage, delay)
    with use_deadline(deadline):
        with pytest.raises(BudgetExhausted) as info:
            verify(CONFIG, **verify_kwargs)
    return info.value


class TestStageAttribution:
    @pytest.mark.parametrize("stage", REWRITING_STAGES)
    def test_deadline_expiry_names_the_slow_stage(self, stage):
        exc = expire_in(stage)
        assert exc.stage == stage
        assert exc.budget_kind == "wall"
        assert exc.seconds is not None and exc.seconds > 2.0

    def test_witness_stage(self):
        # Witness reconstruction only runs for certified SAT
        # counterexamples, so this needs a planted bug and the
        # Positive-Equality method (no rewrite-flag short-circuit).
        exc = expire_in(
            "witness",
            method="positive_equality",
            bug=Bug(BugKind.RETIRE_WITHOUT_RESULT, entry=1),
            certify=True,
        )
        assert exc.stage == "witness"

    def test_positive_equality_skips_the_rewrite_stage(self):
        # A slow "rewrite" stage cannot stall a method that never
        # rewrites; the run completes inside the budget.
        deadline = Deadline(max_wall_seconds=30.0)
        deadline.add_stage_delay("rewrite", 60.0)
        with use_deadline(deadline):
            result = verify(CONFIG, method="positive_equality")
        assert result.correct


class TestVerifyKwargs:
    def test_zero_wall_budget_dies_at_the_first_stage(self):
        with pytest.raises(BudgetExhausted) as info:
            verify(CONFIG, max_wall_seconds=0.0)
        assert info.value.stage == "tlsim"
        assert info.value.budget_kind == "wall"

    def test_timings_survive_the_abort(self):
        with pytest.raises(BudgetExhausted) as info:
            verify(CONFIG, max_wall_seconds=0.0)
        assert "total" in info.value.timings

    def test_tiny_memory_budget_trips(self):
        with pytest.raises(MemoryBudgetExhausted) as info:
            verify(CONFIG, max_memory_mb=0.001)
        assert info.value.budget_kind == "memory"
        assert info.value.stage  # some pipeline stage is named
        assert info.value.bytes_used > info.value.max_bytes

    def test_generous_budgets_do_not_interfere(self):
        result = verify(
            CONFIG, max_wall_seconds=600.0, max_memory_mb=4096.0, trace=True
        )
        assert result.correct
        counters = result.trace.all_counters()
        assert counters.get("guard.checks", 0) > 0
        assert counters.get("guard.ticks", 0) > 0
        assert counters.get("guard.memory_checks", 0) > 0

    def test_unsupervised_run_reports_no_guard_counters(self):
        result = verify(CONFIG, trace=True)
        assert result.correct
        assert not any(
            name.startswith("guard.")
            for name in result.trace.all_counters()
        )

    def test_ambient_worker_deadline_caps_verify_budget(self):
        # A verify() inside a campaign worker cannot outlive the
        # worker's own supervisor.
        with use_deadline(Deadline(max_wall_seconds=0.0)):
            with pytest.raises(BudgetExhausted):
                verify(CONFIG, max_wall_seconds=3600.0)
