"""Deadline mechanics: budgets, heartbeats, ticks, derivation, ambience."""

import time

import pytest

from repro.errors import BudgetExhausted
from repro.guard import (
    NULL_DEADLINE,
    Deadline,
    NullDeadline,
    current_deadline,
    use_deadline,
)


class TestBudgets:
    def test_unbounded_check_never_raises(self):
        deadline = Deadline()
        for _ in range(100):
            deadline.check("sat")
        assert not deadline.bounded
        assert deadline.checks == 100

    def test_wall_budget_expires_with_stage_and_kind(self):
        deadline = Deadline(max_wall_seconds=0.0)
        time.sleep(0.01)
        with pytest.raises(BudgetExhausted) as info:
            deadline.check("encode.eij")
        assert info.value.budget_kind == "wall"
        assert info.value.stage == "encode.eij"
        assert info.value.seconds > 0.0

    def test_cpu_budget_expires(self):
        deadline = Deadline(max_cpu_seconds=0.0)
        # Burn a little CPU so process_time visibly advances.
        sum(i * i for i in range(200_000))
        with pytest.raises(BudgetExhausted) as info:
            deadline.check("rewrite")
        assert info.value.budget_kind == "cpu"
        assert info.value.stage == "rewrite"

    def test_remaining_clamps_to_zero(self):
        deadline = Deadline(max_wall_seconds=0.0)
        time.sleep(0.005)
        assert deadline.remaining_wall() == 0.0
        assert deadline.remaining_cpu() is None

    def test_elapsed_clocks_advance(self):
        deadline = Deadline()
        time.sleep(0.01)
        assert deadline.elapsed_wall() >= 0.01
        assert deadline.elapsed_cpu() >= 0.0


class TestTicks:
    def test_tick_checks_only_every_interval(self):
        deadline = Deadline(max_wall_seconds=0.0, tick_every=64)
        time.sleep(0.005)
        for _ in range(63):
            deadline.tick("sat")  # below the interval: no check, no raise
        assert deadline.checks == 0
        with pytest.raises(BudgetExhausted):
            deadline.tick("sat")

    def test_stage_delay_applies_at_check(self):
        deadline = Deadline()
        deadline.add_stage_delay("tlsim", 0.05)
        before = time.monotonic()
        deadline.check("tlsim")
        assert time.monotonic() - before >= 0.05
        before = time.monotonic()
        deadline.check("sat")  # other stages undelayed
        assert time.monotonic() - before < 0.05

    def test_wildcard_stage_delay_applies_everywhere(self):
        deadline = Deadline()
        deadline.add_stage_delay("*", 0.03)
        before = time.monotonic()
        deadline.check("anything")
        assert time.monotonic() - before >= 0.03


class TestHeartbeats:
    def test_first_check_beats_immediately_then_throttles(self):
        beats = []
        deadline = Deadline(heartbeat=beats.append, heartbeat_interval=10.0)
        deadline.check("tlsim")
        for _ in range(50):
            deadline.check("sat")
        assert beats == ["tlsim"]
        assert deadline.heartbeats_sent == 1

    def test_beats_resume_after_interval(self):
        beats = []
        deadline = Deadline(heartbeat=beats.append, heartbeat_interval=0.02)
        deadline.check("a")
        time.sleep(0.03)
        deadline.check("b")
        assert beats == ["a", "b"]


class TestDerive:
    def test_child_budget_capped_by_parent_remaining(self):
        parent = Deadline(max_wall_seconds=100.0)
        child = parent.derive(max_wall_seconds=500.0)
        assert child.max_wall_seconds <= 100.0

    def test_child_inherits_parent_budget_when_unset(self):
        parent = Deadline(max_wall_seconds=50.0)
        child = parent.derive()
        assert child.max_wall_seconds is not None
        assert child.max_wall_seconds <= 50.0

    def test_child_inherits_heartbeat_sink_and_delays(self):
        beats = []
        parent = Deadline(heartbeat=beats.append, heartbeat_interval=5.0)
        parent.add_stage_delay("sat", 0.01)
        child = parent.derive(max_wall_seconds=10.0)
        child.check("sat")
        assert beats == ["sat"]
        assert child.stage_delays.get("sat") == 0.01

    def test_null_derive_builds_real_deadline(self):
        child = NULL_DEADLINE.derive(max_wall_seconds=1.0)
        assert isinstance(child, Deadline)
        assert child.max_wall_seconds == 1.0


class TestAmbient:
    def test_default_is_null_deadline(self):
        assert isinstance(current_deadline(), NullDeadline)

    def test_use_deadline_installs_and_restores(self):
        deadline = Deadline(max_wall_seconds=5.0)
        with use_deadline(deadline) as installed:
            assert installed is deadline
            assert current_deadline() is deadline
        assert current_deadline() is NULL_DEADLINE

    def test_nesting_restores_outer(self):
        outer, inner = Deadline(), Deadline()
        with use_deadline(outer):
            with use_deadline(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_null_deadline_is_inert(self):
        NULL_DEADLINE.check("anything")
        NULL_DEADLINE.tick("anything")
        NULL_DEADLINE.charge(nodes=10, bytes_=1 << 30)
        NULL_DEADLINE.add_stage_delay("sat", 100.0)
        assert NULL_DEADLINE.counters() == {}


class TestCounters:
    def test_counters_report_activity(self):
        deadline = Deadline(tick_every=4)
        deadline.check("a")
        for _ in range(8):
            deadline.tick("b")
        counters = deadline.counters()
        assert counters["guard.checks"] == 3.0  # 1 explicit + 2 from ticks
        assert counters["guard.ticks"] == 8.0
        assert counters["guard.heartbeats"] == 0.0
