"""CircuitBreaker state machine: streaks, resets, one-shot opening."""

import pytest

from repro.guard import SHORT_CIRCUIT_PREFIX, CircuitBreaker


class TestBreaker:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(3)
        assert breaker.record("fam", True) is False
        assert breaker.record("fam", True) is False
        assert breaker.record("fam", True) is True  # the opening record
        assert breaker.is_open("fam")

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(2)
        breaker.record("fam", True)
        breaker.record("fam", False)
        assert breaker.record("fam", True) is False
        assert not breaker.is_open("fam")

    def test_families_are_independent(self):
        breaker = CircuitBreaker(1)
        breaker.record("a", True)
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.open_families == ("a",)

    def test_open_transition_reported_once(self):
        breaker = CircuitBreaker(1)
        assert breaker.record("fam", True) is True
        # Further records on an open family never re-report the transition.
        assert breaker.record("fam", True) is False
        assert breaker.record("fam", False) is False
        assert breaker.is_open("fam")

    def test_threshold_one_opens_immediately(self):
        breaker = CircuitBreaker(1)
        assert breaker.record("fam", True) is True

    def test_short_circuit_prefix_is_stable(self):
        # The journal and the runner's skip logic both depend on this
        # literal; changing it would misclassify old journals on resume.
        assert SHORT_CIRCUIT_PREFIX == "circuit breaker open"
