"""MemoryBudget accounting, exhaustion, and deadline integration."""

import pytest

from repro.errors import BudgetExhausted, MemoryBudgetExhausted
from repro.guard import Deadline, MemoryBudget, use_deadline
from repro.guard.memory import NODE_BYTES


class TestConstruction:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget(-5)

    def test_from_mb(self):
        budget = MemoryBudget.from_mb(2)
        assert budget.max_bytes == 2 * 1024 * 1024


class TestAccounting:
    def test_charged_bytes_trip_the_check(self):
        budget = MemoryBudget(1000)
        budget.charge(bytes_=2000)
        with pytest.raises(MemoryBudgetExhausted) as info:
            budget.check("sat")
        assert info.value.stage == "sat"
        assert info.value.max_bytes == 1000
        assert info.value.bytes_used >= 2000
        assert info.value.budget_kind == "memory"

    def test_charged_nodes_count_node_bytes(self):
        budget = MemoryBudget(10 * NODE_BYTES)
        budget.charge(nodes=11)
        with pytest.raises(MemoryBudgetExhausted):
            budget.check("encode.eij")

    def test_under_budget_is_silent(self):
        budget = MemoryBudget(1 << 30)
        budget.charge(nodes=100, bytes_=1000)
        budget.check("sat")
        assert budget.usage_bytes(sample=False) == 1000 + 100 * NODE_BYTES

    def test_exhaustion_is_also_a_memory_error(self):
        # The campaign executor's recoverable-retry path catches
        # (BudgetExhausted, MemoryError); exhaustion must match both.
        budget = MemoryBudget(1)
        budget.charge(bytes_=100)
        with pytest.raises(MemoryError):
            budget.check("sat")
        with pytest.raises(BudgetExhausted):
            budget.check("sat")

    def test_counters(self):
        budget = MemoryBudget(1 << 30)
        budget.charge(nodes=3, bytes_=7)
        budget.check("sat")
        counters = budget.counters()
        assert counters["guard.memory_checks"] == 1.0
        assert counters["guard.memory_charged_nodes"] == 3.0
        assert counters["guard.memory_charged_bytes"] == 7.0
        assert counters["guard.memory_peak_bytes"] >= 7.0

    def test_start_stop_reference_counted(self):
        budget = MemoryBudget(1 << 30)
        budget.start()
        budget.start()
        budget.stop()
        budget.stop()
        budget.stop()  # extra stop is harmless
        assert budget._active_depth == 0


class TestDeadlineIntegration:
    def test_ticks_charge_nodes_to_the_budget(self):
        budget = MemoryBudget(1 << 30)
        deadline = Deadline(memory=budget, tick_every=1000)
        for _ in range(10):
            deadline.tick("encode.tseitin")
        assert budget.charged_nodes == 10

    def test_check_raises_through_the_deadline(self):
        budget = MemoryBudget(100)
        deadline = Deadline(memory=budget)
        deadline.charge(bytes_=200)
        with pytest.raises(MemoryBudgetExhausted) as info:
            deadline.check("witness")
        assert info.value.stage == "witness"

    def test_bounded_when_only_memory_set(self):
        assert Deadline(memory=MemoryBudget(1000)).bounded

    def test_derived_deadline_shares_budget_by_reference(self):
        budget = MemoryBudget(1 << 30)
        parent = Deadline(memory=budget)
        child = parent.derive(max_wall_seconds=1.0)
        child.charge(bytes_=50)
        assert budget.charged_bytes == 50

    def test_use_deadline_anchors_budget_once(self):
        budget = MemoryBudget(1 << 30)
        parent = Deadline(memory=budget)
        with use_deadline(parent):
            assert budget._active_depth == 1
            with use_deadline(parent.derive()):
                assert budget._active_depth == 2
            assert budget._active_depth == 1
        assert budget._active_depth == 0

    def test_counters_flow_through_deadline(self):
        budget = MemoryBudget(1 << 30)
        deadline = Deadline(memory=budget)
        deadline.check("sat")
        counters = deadline.counters()
        assert "guard.memory_checks" in counters
        assert counters["guard.checks"] == 1.0
