"""Witness digests in campaign journals: write, resume, replay."""

import json

from repro.campaign import CampaignRunner, Job, JobResult, RetryPolicy


def _runner(journal_path, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    kwargs.setdefault("certify", True)
    return CampaignRunner(str(journal_path), **kwargs)


def _jobs():
    return [
        Job.build(4, 2),
        Job.build(
            4, 2, bug_kind="pc-single-increment",
            job_id="rw-N4-k2-pc-bug",
        ),
    ]


class TestWitnessJournaling:
    def test_finish_records_carry_witness(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        report = _runner(journal).run(_jobs())
        proved = report.results["rw-N4-k2"]
        buggy = report.results["rw-N4-k2-pc-bug"]
        assert proved.status == "PROVED"
        assert proved.witness["kind"] == "unsat-proof"
        assert proved.witness["validated"] is True
        assert buggy.status == "BUG_FOUND"
        assert buggy.witness["kind"] == "counterexample"
        assert buggy.witness["validated"] is True
        assert buggy.witness["minimized_size"] <= buggy.witness["raw_size"]
        assert buggy.witness["replay_value"] is False

    def test_witness_survives_crash_and_resume(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        first = _runner(journal).run(_jobs())
        digests = {
            job_id: result.witness["digest"]
            for job_id, result in first.results.items()
        }
        # A fresh runner (a "restarted process") replays from the journal
        # without re-running verification or the checker.
        resumed = _runner(journal).run(_jobs())
        assert resumed.replayed == 2
        for job_id, result in resumed.results.items():
            assert result.from_journal
            assert result.witness["digest"] == digests[job_id]
            assert result.witness["validated"] is True

    def test_resume_after_partial_run(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        jobs = _jobs()
        _runner(journal).run(jobs[:1])
        # The second job arrives only on resume: the finished one replays
        # (with its witness), the new one runs fresh.
        report = _runner(journal).run(jobs)
        assert report.replayed == 1
        assert report.results["rw-N4-k2"].from_journal
        assert report.results["rw-N4-k2"].witness["kind"] == "unsat-proof"
        fresh = report.results["rw-N4-k2-pc-bug"]
        assert not fresh.from_journal
        assert fresh.witness["kind"] == "counterexample"

    def test_journal_lines_are_json_with_witness(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        _runner(journal).run(_jobs()[:1])
        finishes = []
        for line in journal.read_text().splitlines():
            record = json.loads(line)
            data = record.get("data", record)
            if data.get("event") == "finish":
                finishes.append(data)
        assert finishes
        assert finishes[0]["witness"]["kind"] == "unsat-proof"

    def test_jobresult_dict_round_trip_preserves_witness(self):
        result = JobResult(
            job_id="j", status="PROVED", method="rewriting", attempts=1,
            witness={"kind": "unsat-proof", "validated": True,
                     "digest": "abc123"},
        )
        assert JobResult.from_dict(result.to_dict()).witness == result.witness

    def test_without_certify_no_witness(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        report = _runner(journal, certify=False).run(_jobs()[:1])
        assert report.results["rw-N4-k2"].witness is None

    def test_parallel_workers_journal_witness(self, tmp_path):
        journal = tmp_path / "camp.jsonl"
        report = _runner(journal, workers=2).run(_jobs())
        for result in report.results.values():
            assert result.witness is not None
            assert result.witness["validated"] is True
