"""Supervised execution: hang detection, new fault kinds, circuit breaker.

The parallel hang tests use real worker processes and the real verify on
tiny configurations, because the property under test — a silent worker is
detected by heartbeat absence, killed, journaled, and its job re-queued —
only exists in the full process topology.
"""

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    DegradePolicy,
    Fault,
    FaultKind,
    FaultPlan,
    Job,
    RetryPolicy,
)
from repro.campaign.parallel import (
    WORKER_HUNG_ERROR,
    _escalate_stop,
)
from repro.core.results import VerificationResult
from repro.errors import (
    BudgetExhausted,
    CampaignError,
    MemoryBudgetExhausted,
)
from repro.guard import Deadline, MemoryBudget, use_deadline


# -- fault grammar -------------------------------------------------------


class TestFaultParsing:
    def test_wildcard_attempt(self):
        fault = Fault.parse("hang@rw-N3-k1:*")
        assert fault.kind == FaultKind.HANG
        assert fault.attempt == 0

    def test_hang_with_duration(self):
        fault = Fault.parse("hang:10@rw-N3-k1")
        assert fault.amount == 10.0
        assert fault.attempt == 1

    def test_slow_with_stage_and_seconds(self):
        fault = Fault.parse("slow:sat:0.5@rw-N4-k2:2")
        assert fault.kind == FaultKind.SLOW
        assert fault.stage == "sat"
        assert fault.amount == 0.5
        assert fault.attempt == 2

    def test_slow_without_stage_means_every_stage(self):
        fault = Fault.parse("slow:0.25@rw-N4-k2")
        assert fault.stage is None
        assert fault.amount == 0.25

    def test_memory_bloat_with_mib(self):
        fault = Fault.parse("memory-bloat:64@rw-N4-k2")
        assert fault.kind == FaultKind.MEMORY_BLOAT
        assert fault.amount == 64.0

    def test_old_grammar_still_parses(self):
        fault = Fault.parse("solver-timeout@rw-N4-k2:2")
        assert fault.kind == FaultKind.SOLVER_TIMEOUT
        assert fault.attempt == 2

    def test_slow_requires_a_delay(self):
        with pytest.raises(CampaignError):
            Fault.parse("slow@rw-N4-k2")

    def test_memory_bloat_requires_a_size(self):
        with pytest.raises(CampaignError):
            Fault.parse("memory-bloat@rw-N4-k2")

    def test_argument_on_argless_kind_rejected(self):
        with pytest.raises(CampaignError):
            Fault.parse("oom:12@rw-N4-k2")

    def test_non_numeric_argument_rejected(self):
        with pytest.raises(CampaignError):
            Fault.parse("hang:soon@rw-N4-k2")

    def test_roundtrips_through_dict(self):
        fault = Fault.parse("slow:sat:0.5@rw-N4-k2:*")
        assert Fault.from_dict(fault.to_dict()) == fault


class TestFaultFiring:
    def test_wildcard_fires_on_every_attempt(self):
        plan = FaultPlan([Fault.parse("solver-timeout@job:*")])
        for attempt in (1, 2, 3):
            with pytest.raises(BudgetExhausted):
                plan.fire("job", attempt, "rewriting")
        assert plan.fired == 3

    def test_exact_fault_shadows_wildcard_then_stays_one_shot(self):
        plan = FaultPlan([
            Fault.parse("oom@job:2"),
            Fault.parse("solver-timeout@job:*"),
        ])
        with pytest.raises(BudgetExhausted):
            plan.fire("job", 1, "rewriting")
        with pytest.raises(MemoryError):
            plan.fire("job", 2, "rewriting")
        with pytest.raises(BudgetExhausted):
            plan.fire("job", 3, "rewriting")

    def test_bounded_hang_raises_budget_exhausted(self):
        plan = FaultPlan([Fault.parse("hang:0.05@job")])
        with pytest.raises(BudgetExhausted) as info:
            plan.fire("job", 1, "rewriting")
        assert info.value.stage == "injected-hang"
        assert info.value.budget_kind == "wall"

    def test_memory_bloat_trips_an_ambient_budget(self):
        plan = FaultPlan([Fault.parse("memory-bloat:8@job")])
        deadline = Deadline(memory=MemoryBudget.from_mb(2))
        with use_deadline(deadline):
            with pytest.raises(MemoryBudgetExhausted):
                plan.fire("job", 1, "rewriting")

    def test_memory_bloat_degrades_to_plain_memory_error(self):
        plan = FaultPlan([Fault.parse("memory-bloat:2@job")])
        with pytest.raises(MemoryError):
            plan.fire("job", 1, "rewriting")

    def test_slow_attaches_delay_to_ambient_deadline(self):
        plan = FaultPlan([Fault.parse("slow:sat:0.5@job")])
        deadline = Deadline()
        with use_deadline(deadline):
            plan.fire("job", 1, "rewriting")  # does not raise
        assert deadline.stage_delays == {"sat": 0.5}


# -- escalated stop ------------------------------------------------------


class _StubProcess:
    """Process double: optionally ignores terminate(), dies on kill()."""

    def __init__(self, ignores_sigterm):
        self.ignores_sigterm = ignores_sigterm
        self.alive = True
        self.calls = []
        self.exitcode = None

    def terminate(self):
        self.calls.append("terminate")
        if not self.ignores_sigterm:
            self.alive, self.exitcode = False, -15

    def kill(self):
        self.calls.append("kill")
        self.alive, self.exitcode = False, -9

    def join(self, timeout=None):
        self.calls.append("join")

    def is_alive(self):
        return self.alive


class TestEscalateStop:
    def test_terminate_suffices_for_cooperative_process(self):
        process = _StubProcess(ignores_sigterm=False)
        assert _escalate_stop(process, grace=0.01) == "terminated"
        assert "kill" not in process.calls

    def test_escalates_to_kill_when_sigterm_ignored(self):
        process = _StubProcess(ignores_sigterm=True)
        assert _escalate_stop(process, grace=0.01) == "killed"
        assert process.calls.count("kill") == 1
        assert not process.is_alive()


# -- hung workers, end to end -------------------------------------------


def journal_events(path):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            wrapper = json.loads(line)  # raises on a torn/corrupt line
            assert set(wrapper) == {"crc", "data"}
            events.append(wrapper["data"])
    return events


class TestHungWorkers:
    def test_permanent_hang_converges_to_inconclusive(self, tmp_path):
        path = str(tmp_path / "hang.jsonl")
        plan = FaultPlan([Fault.parse("hang@rw-N2-k1:*")])
        report = CampaignRunner(
            path,
            retry=RetryPolicy(max_attempts=1, base_conflicts=None),
            degrade=DegradePolicy(fallback_method=None),
            fault_plan=plan,
            workers=2,
            hang_timeout=1.0,
            heartbeat_interval=0.1,
        ).run([Job.build(2, 1), Job.build(3, 1)])

        assert report.results["rw-N2-k1"].status == "INCONCLUSIVE"
        assert report.results["rw-N3-k1"].status == "PROVED"
        assert report.metrics["campaign.worker_hangs"] >= 1.0

        events = journal_events(path)
        hung = [
            e for e in events
            if e.get("event") == "attempt_failed"
            and e.get("error") == WORKER_HUNG_ERROR
        ]
        assert hung, "the hang must be journaled as a WorkerHung attempt"
        assert all(e["job_id"] == "rw-N2-k1" for e in hung)
        assert "heartbeat" not in {e.get("event") for e in events}

        # Resume replays both verdicts without re-running anything.
        resumed = CampaignRunner(path).run()
        assert resumed.replayed == 2
        assert resumed.results["rw-N2-k1"].status == "INCONCLUSIVE"

    def test_healthy_parallel_run_kills_nothing(self, tmp_path):
        report = CampaignRunner(
            str(tmp_path / "ok.jsonl"),
            retry=RetryPolicy(max_attempts=1, base_conflicts=None),
            workers=2,
            hang_timeout=30.0,
            heartbeat_interval=0.1,
        ).run([Job.build(2, 1), Job.build(3, 1)])
        assert report.counts() == {"PROVED": 2}
        assert "campaign.worker_hangs" not in report.metrics
        assert "campaign.worker_crashes" not in report.metrics

    def test_hang_timeout_must_exceed_heartbeat_interval(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(
                str(tmp_path / "bad.jsonl"),
                workers=2,
                hang_timeout=0.5,
                heartbeat_interval=1.0,
            ).run([Job.build(2, 1), Job.build(3, 1)])


# -- circuit breaker in the runner --------------------------------------


def failing_verify(config, **kwargs):
    raise BudgetExhausted("stub blow-up", conflicts=0, seconds=0.0)


def proving_verify(config, method="rewriting", **kwargs):
    return VerificationResult(
        config=config, method=method, bug=None, correct=True,
        timings={"total": 0.0},
    )


FAMILY_JOBS = [Job.build(n, 1) for n in (2, 3, 4, 6)]


def breaker_runner(path, verify_fn, threshold=2):
    return CampaignRunner(
        path,
        retry=RetryPolicy(max_attempts=1, base_conflicts=None),
        degrade=DegradePolicy(fallback_method=None),
        verify_fn=verify_fn,
        breaker_threshold=threshold,
    )


class TestCircuitBreaker:
    def test_opens_and_short_circuits_the_family(self, tmp_path):
        path = str(tmp_path / "breaker.jsonl")
        report = breaker_runner(path, failing_verify).run(FAMILY_JOBS)
        assert all(
            r.status == "INCONCLUSIVE" for r in report.results.values()
        )
        # The first two fail on their own; the rest never run.
        assert report.results["rw-N4-k1"].attempts == 0
        assert report.results["rw-N6-k1"].detail.startswith(
            "circuit breaker open"
        )
        opens = [
            e for e in journal_events(path)
            if e.get("event") == "circuit_open"
        ]
        assert len(opens) == 1
        assert opens[0]["threshold"] == 2
        assert opens[0]["family"] == FAMILY_JOBS[0].breaker_key()

    def test_resume_reseeds_without_rejournaling(self, tmp_path):
        path = str(tmp_path / "breaker.jsonl")
        breaker_runner(path, failing_verify).run(FAMILY_JOBS)
        extra = FAMILY_JOBS + [Job.build(8, 1)]
        report = breaker_runner(path, failing_verify).run(extra)
        assert report.results["rw-N8-k1"].detail.startswith(
            "circuit breaker open"
        )
        opens = [
            e for e in journal_events(path)
            if e.get("event") == "circuit_open"
        ]
        assert len(opens) == 1  # not re-journaled on replay

    def test_success_keeps_the_family_closed(self, tmp_path):
        path = str(tmp_path / "ok.jsonl")
        report = breaker_runner(path, proving_verify).run(FAMILY_JOBS)
        assert report.counts() == {"PROVED": len(FAMILY_JOBS)}
        assert not [
            e for e in journal_events(path)
            if e.get("event") == "circuit_open"
        ]

    def test_different_families_are_isolated(self, tmp_path):
        jobs = [
            Job.build(2, 1), Job.build(3, 1),  # k=1: will fail and open
            Job.build(2, 2, method="positive_equality",
                      job_id="pe-N2-k2"),
        ]

        def verify_fn(config, method="rewriting", **kwargs):
            if method == "rewriting":
                raise BudgetExhausted("stub", conflicts=0, seconds=0.0)
            return proving_verify(config, method=method, **kwargs)

        report = breaker_runner(
            str(tmp_path / "fam.jsonl"), verify_fn
        ).run(jobs)
        assert report.results["pe-N2-k2"].status == "PROVED"
        assert report.results["rw-N3-k1"].status == "INCONCLUSIVE"

    def test_disabled_by_default(self, tmp_path):
        path = str(tmp_path / "off.jsonl")
        report = CampaignRunner(
            path,
            retry=RetryPolicy(max_attempts=1, base_conflicts=None),
            degrade=DegradePolicy(fallback_method=None),
            verify_fn=failing_verify,
        ).run(FAMILY_JOBS)
        # Without a breaker every job burns its own budget.
        assert all(r.attempts == 1 for r in report.results.values())
        assert not [
            e for e in journal_events(path)
            if e.get("event") == "circuit_open"
        ]


# -- guard budgets through the campaign ---------------------------------


class TestGuardBudgetsInCampaign:
    def test_memory_bloat_retries_under_escalated_budget(self, tmp_path):
        path = str(tmp_path / "bloat.jsonl")
        report = CampaignRunner(
            path,
            retry=RetryPolicy(
                max_attempts=2, base_conflicts=None, base_memory_mb=16
            ),
            fault_plan=FaultPlan([Fault.parse("memory-bloat:64@rw-N2-k1:1")]),
        ).run([Job.build(2, 1)])
        result = report.results["rw-N2-k1"]
        assert result.status == "PROVED"
        assert result.attempts == 2
        events = journal_events(path)
        fails = [e for e in events if e.get("event") == "attempt_failed"]
        assert fails[0]["error"] == "MemoryBudgetExhausted"
        starts = [e for e in events if e.get("event") == "start"]
        assert [s["max_memory_mb"] for s in starts] == [16, 32]

    def test_slow_stage_blows_the_wall_deadline(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        report = CampaignRunner(
            path,
            retry=RetryPolicy(
                max_attempts=2, base_conflicts=None, base_wall_seconds=0.5
            ),
            fault_plan=FaultPlan([Fault.parse("slow:tlsim:1.0@rw-N2-k1:1")]),
        ).run([Job.build(2, 1)])
        result = report.results["rw-N2-k1"]
        assert result.status == "PROVED"
        assert result.attempts == 2
        fails = [
            e for e in journal_events(path)
            if e.get("event") == "attempt_failed"
        ]
        assert fails[0]["error"] == "BudgetExhausted"
        assert "tlsim" in fails[0]["detail"]

    def test_unsupervised_start_records_keep_their_shape(self, tmp_path):
        path = str(tmp_path / "plain.jsonl")
        CampaignRunner(
            path, retry=RetryPolicy(max_attempts=1, base_conflicts=None),
            verify_fn=proving_verify,
        ).run([Job.build(2, 1)])
        starts = [
            e for e in journal_events(path) if e.get("event") == "start"
        ]
        assert starts
        for record in starts:
            assert "max_wall_seconds" not in record
            assert "max_memory_mb" not in record
