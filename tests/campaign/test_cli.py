"""Tests for the ``python -m repro campaign`` subcommand."""

import json

from repro.__main__ import main as repro_main
from repro.campaign.cli import main as campaign_main


class TestGridCampaigns:
    def test_grid_campaign_all_proved(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main(["--journal", journal, "--grid", "2x1,2x2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 PROVED" in out

    def test_dispatch_through_python_m_repro(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = repro_main(["campaign", "--journal", journal, "--grid", "2x1"])
        assert code == 0
        assert "PROVED" in capsys.readouterr().out

    def test_bug_grid_exits_one(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main([
            "--journal", journal, "--grid", "3x1",
            "--bug", "forward-wrong-source", "--entry", "2",
        ])
        assert code == 1
        assert "BUG_FOUND" in capsys.readouterr().out

    def test_bad_grid_is_a_setup_error(self, tmp_path, capsys):
        code = campaign_main([
            "--journal", str(tmp_path / "c.jsonl"), "--grid", "banana",
        ])
        assert code == 2
        assert "campaign error" in capsys.readouterr().err


class TestSpecCampaigns:
    def test_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps([
            {"job_id": "a", "n_rob": 2, "issue_width": 1},
            {"job_id": "b", "n_rob": 2, "issue_width": 2},
        ]))
        code = campaign_main([
            "--journal", str(tmp_path / "c.jsonl"), "--spec", str(spec),
        ])
        assert code == 0
        assert "2 PROVED" in capsys.readouterr().out

    def test_bad_spec_shape_is_a_setup_error(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"not": "a list"}))
        code = campaign_main([
            "--journal", str(tmp_path / "c.jsonl"), "--spec", str(spec),
        ])
        assert code == 2


class TestParallelAndInjection:
    def test_workers_flag_runs_the_grid(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main([
            "--journal", journal, "--grid", "2x1,2x2,3x1", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 PROVED" in out
        assert "2 workers" in out

    def test_injected_worker_crash_recovers(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main([
            "--journal", journal, "--grid", "2x1,2x2,3x1",
            "--workers", "2", "--inject", "crash@rw-N2-k2:1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 PROVED" in out
        assert "worker" in out and "crashed" in out

    def test_injected_timeout_is_retried_sequentially(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main([
            "--journal", journal, "--grid", "2x1",
            "--inject", "solver-timeout@rw-N2-k1:1",
        ])
        assert code == 0
        assert "1 PROVED" in capsys.readouterr().out

    def test_bad_inject_spec_is_a_setup_error(self, tmp_path, capsys):
        code = campaign_main([
            "--journal", str(tmp_path / "c.jsonl"), "--grid", "2x1",
            "--inject", "not-a-kind@rw-N2-k1",
        ])
        assert code == 2
        assert "campaign error" in capsys.readouterr().err

    def test_bad_worker_count_is_a_setup_error(self, tmp_path, capsys):
        code = campaign_main([
            "--journal", str(tmp_path / "c.jsonl"), "--grid", "2x1",
            "--workers", "0",
        ])
        assert code == 2


class TestResumeFlow:
    def test_second_run_replays_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        assert campaign_main(["--journal", journal, "--grid", "2x1"]) == 0
        capsys.readouterr()
        # Resume without any job source: jobs come from the journal.
        code = campaign_main(["--journal", journal])
        assert code == 0
        assert "1 replayed from journal" in capsys.readouterr().out

    def test_fresh_discards_previous_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "c.jsonl")
        assert campaign_main(["--journal", journal, "--grid", "2x1"]) == 0
        capsys.readouterr()
        code = campaign_main(["--journal", journal, "--grid", "2x1", "--fresh"])
        assert code == 0
        assert "0 replayed from journal" in capsys.readouterr().out

    def test_resume_with_no_journal_is_a_setup_error(self, tmp_path, capsys):
        code = campaign_main(["--journal", str(tmp_path / "missing.jsonl")])
        assert code == 2

    def test_inconclusive_grid_exits_four(self, tmp_path, capsys):
        # A hopeless budget with degradation disabled: INCONCLUSIVE -> 4.
        journal = str(tmp_path / "c.jsonl")
        code = campaign_main([
            "--journal", journal, "--grid", "3x3",
            "--method", "positive_equality", "--max-conflicts", "1",
            "--max-attempts", "2", "--no-degrade", "--quiet",
        ])
        assert code == 4
        assert "INCONCLUSIVE" in capsys.readouterr().out
