"""Crash-safety tests for the campaign journal."""

import json

import pytest

from repro.campaign import Journal
from repro.errors import JournalError


def _append_all(path, records):
    with Journal(str(path)) as journal:
        for record in records:
            journal.append(record)


class TestRoundtrip:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [
            {"event": "enqueue", "job": {"job_id": "a", "n_rob": 2}},
            {"event": "start", "job_id": "a", "attempt": 1},
            {"event": "finish", "job_id": "a", "status": "PROVED"},
        ]
        _append_all(path, records)
        replay = Journal.load(str(path))
        assert replay.records == records
        assert replay.corrupt_lines == 0
        assert replay.torn_tail is False

    def test_missing_file_is_empty(self, tmp_path):
        replay = Journal.load(str(tmp_path / "absent.jsonl"))
        assert replay.records == []
        assert replay.finished() == {}

    def test_append_resumes_existing_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1}])
        _append_all(path, [{"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        replay = Journal.load(str(path))
        assert [rec["event"] for rec in replay.records] == ["start", "finish"]


class TestCorruptionTolerance:
    def test_torn_tail_is_silently_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "start", "job_id": "a", "attempt": 1},
            {"event": "finish", "job_id": "a", "status": "PROVED"},
        ])
        # Simulate a crash mid-write: truncate the final line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        replay = Journal.load(str(path))
        assert len(replay.records) == 1
        assert replay.records[0]["event"] == "start"
        assert replay.torn_tail is True
        assert replay.corrupt_lines == 0

    def test_corrupt_tail_helper(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(str(path)) as journal:
            journal.append({"event": "start", "job_id": "a", "attempt": 1})
            journal.append({"event": "finish", "job_id": "a",
                            "status": "PROVED"})
            journal.corrupt_tail()
        replay = Journal.load(str(path))
        assert replay.torn_tail is True
        assert "a" not in replay.finished()

    def test_mid_file_corruption_skipped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "start", "job_id": "a", "attempt": 1},
            {"event": "attempt_failed", "job_id": "a", "attempt": 1},
            {"event": "finish", "job_id": "a", "status": "INCONCLUSIVE"},
        ])
        lines = path.read_text().splitlines()
        lines[1] = "not json at all {{{"
        path.write_text("\n".join(lines) + "\n")
        replay = Journal.load(str(path))
        assert len(replay.records) == 2
        assert replay.corrupt_lines == 1
        assert replay.torn_tail is False

    def test_strict_mode_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "start", "job_id": "a", "attempt": 1},
            {"event": "finish", "job_id": "a", "status": "PROVED"},
        ])
        lines = path.read_text().splitlines()
        lines[0] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            Journal.load(str(path), strict=True)

    def test_checksum_catches_valid_json_bitflips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "finish", "job_id": "a", "status": "PROVED"},
            {"event": "finish", "job_id": "b", "status": "PROVED"},
        ])
        lines = path.read_text().splitlines()
        # Flip the payload without breaking JSON: the crc must catch it.
        wrapper = json.loads(lines[0])
        wrapper["data"]["status"] = "BUG_FOUND"
        lines[0] = json.dumps(wrapper)
        path.write_text("\n".join(lines) + "\n")
        replay = Journal.load(str(path))
        assert len(replay.records) == 1
        assert replay.corrupt_lines == 1
        assert "a" not in replay.finished()


class TestReplayDerivations:
    def test_finished_and_in_flight(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "start", "job_id": "a", "attempt": 1, "method": "rewriting"},
            {"event": "finish", "job_id": "a", "status": "PROVED"},
            {"event": "start", "job_id": "b", "attempt": 1, "method": "rewriting"},
        ])
        replay = Journal.load(str(path))
        assert set(replay.finished()) == {"a"}
        assert set(replay.in_flight()) == {"b"}

    def test_failed_attempts_are_counted_per_method(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "attempt_failed", "job_id": "a", "attempt": 1,
             "method": "rewriting"},
            {"event": "attempt_failed", "job_id": "a", "attempt": 2,
             "method": "rewriting"},
            {"event": "attempt_failed", "job_id": "a", "attempt": 1,
             "method": "positive_equality"},
        ])
        replay = Journal.load(str(path))
        counts = replay.failed_attempts()
        assert counts[("a", "rewriting")] == 2
        assert counts[("a", "positive_equality")] == 1

    def test_job_specs_in_order(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [
            {"event": "enqueue", "job": {"job_id": "a", "n_rob": 2,
                                         "issue_width": 1}},
            {"event": "enqueue", "job": {"job_id": "b", "n_rob": 3,
                                         "issue_width": 1}},
        ])
        specs = Journal.load(str(path)).job_specs()
        assert list(specs) == ["a", "b"]
        assert specs["b"]["n_rob"] == 3
