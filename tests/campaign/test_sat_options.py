"""Campaign wiring of the SAT options: worker oversubscription warning,
eager backend validation, and the ambient session pool / backend the
runner installs around verifications."""

import pytest

from repro import ProcessorConfig
from repro.campaign import CampaignRunner, Job, Journal
from repro.core.results import VerificationResult
from repro.errors import SolverError
from repro.sat import ReferenceBackend, current_backend, current_session_pool


def _proved(config, method):
    return VerificationResult(
        config=config, method=method, bug=None, correct=True,
        timings={"total": 0.0},
    )


class AmbientSpyVerify:
    """Records the ambient SAT selections seen by each verification."""

    def __init__(self):
        self.pools = []
        self.backends = []

    def __call__(self, config, method="rewriting", bug=None,
                 criterion="disjunction", max_conflicts=None,
                 max_seconds=None):
        self.pools.append(current_session_pool())
        self.backends.append(current_backend())
        return _proved(config, method)


class TestOversubscriptionWarning:
    def test_event_journaled_when_workers_exceed_cpus(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.campaign.runner.os.cpu_count", lambda: 1)
        journal = tmp_path / "camp.jsonl"
        messages = []
        runner = CampaignRunner(
            str(journal),
            verify_fn=AmbientSpyVerify(),
            log=messages.append,
            workers=3,
        )
        # A single job keeps execution sequential; the warning is about
        # the requested pool size, not the dispatch path taken.
        runner.run([Job.build(2, 1)])
        events = list(
            Journal.load(str(journal)).events("oversubscribed_workers")
        )
        assert len(events) == 1
        assert events[0]["workers"] == 3
        assert events[0]["cpu_count"] == 1
        assert any("oversubscription" in m for m in messages)

    def test_no_event_when_workers_fit(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.campaign.runner.os.cpu_count", lambda: 8)
        journal = tmp_path / "camp.jsonl"
        runner = CampaignRunner(
            str(journal), verify_fn=AmbientSpyVerify(), workers=2
        )
        runner.run([Job.build(2, 1), Job.build(3, 1)])
        replay = Journal.load(str(journal))
        assert list(replay.events("oversubscribed_workers")) == []

    def test_resume_ignores_the_unknown_event_kind(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr("repro.campaign.runner.os.cpu_count", lambda: 1)
        journal = tmp_path / "camp.jsonl"
        spy = AmbientSpyVerify()
        CampaignRunner(
            str(journal), verify_fn=spy, workers=2
        ).run([Job.build(2, 1)])
        # Resume with the journaled spec: the finish record replays and
        # the oversubscription event must not confuse the replayer.
        report = CampaignRunner(str(journal), verify_fn=spy).run()
        assert report.replayed == 1
        assert report.results["rw-N2-k1"].status == "PROVED"


class TestSatOptionWiring:
    def test_unknown_backend_fails_eagerly(self, tmp_path):
        with pytest.raises(SolverError):
            CampaignRunner(
                str(tmp_path / "camp.jsonl"), sat_backend="zchaff"
            )

    def test_session_pool_is_ambient_and_shared(self, tmp_path):
        spy = AmbientSpyVerify()
        CampaignRunner(str(tmp_path / "camp.jsonl"), verify_fn=spy).run(
            [Job.build(2, 1), Job.build(3, 1)]
        )
        assert all(pool is not None for pool in spy.pools)
        # One pool for the whole batch — that is what lets same-digest
        # CNFs resume across jobs.
        assert spy.pools[0] is spy.pools[1]

    def test_no_incremental_sat_leaves_no_pool(self, tmp_path):
        spy = AmbientSpyVerify()
        CampaignRunner(
            str(tmp_path / "camp.jsonl"),
            verify_fn=spy,
            incremental_sat=False,
        ).run([Job.build(2, 1)])
        assert spy.pools == [None]

    def test_backend_selection_is_ambient(self, tmp_path):
        spy = AmbientSpyVerify()
        CampaignRunner(
            str(tmp_path / "camp.jsonl"),
            verify_fn=spy,
            sat_backend="reference",
        ).run([Job.build(2, 1)])
        assert spy.backends == [ReferenceBackend]
