"""Live-tailing regression tests for :class:`repro.campaign.journal
.JournalTailer`.

`Journal.load` is replay-time machinery — it assumes the writer is gone.
A *live* reader (the service's SSE endpoint) polls while the single
writer is still appending, so it can observe a torn tail mid-flush: a
trailing fragment with no newline yet, or a newline-terminated line
whose CRC does not check out.  The tailer must hold such tails back and
re-read them, never dropping or double-counting records.
"""

import json
import threading
import time

from repro.campaign import Journal
from repro.campaign.journal import JournalTailer


def _append_all(path, records):
    with Journal(str(path)) as journal:
        for record in records:
            journal.append(record)


class TestIncrementalPolling:
    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        tailer = JournalTailer(str(tmp_path / "absent.jsonl"))
        assert tailer.poll() == []
        assert tailer.poll() == []

    def test_poll_returns_only_new_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        tailer = JournalTailer(str(path))
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1},
                           {"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        first = tailer.poll()
        assert [rec["event"] for rec in first] == ["start", "finish"]
        assert tailer.poll() == []
        _append_all(path, [{"event": "start", "job_id": "b", "attempt": 1}])
        second = tailer.poll()
        assert [rec["job_id"] for rec in second] == ["b"]
        assert tailer.poll() == []

    def test_matches_replay_semantics_on_a_finished_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [
            {"event": "enqueue", "job": {"job_id": "a", "n_rob": 2}},
            {"event": "start", "job_id": "a", "attempt": 1},
            {"event": "finish", "job_id": "a", "status": "PROVED"},
        ]
        _append_all(path, records)
        tailer = JournalTailer(str(path))
        assert tailer.poll() == Journal.load(str(path)).records == records


class TestTornTailTolerance:
    def test_unterminated_fragment_is_held_back(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1}])
        # Capture one full encoded line, then replay its append in two
        # chunks with a poll in between — exactly what a reader racing
        # the writer's write(2) can observe.
        _append_all(path, [{"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        torn_at = len(lines[1]) // 2
        path.write_bytes(lines[0] + lines[1][:torn_at])

        tailer = JournalTailer(str(path))
        assert [rec["event"] for rec in tailer.poll()] == ["start"]
        assert tailer.poll() == []  # fragment still pending, no progress
        with open(path, "ab") as handle:
            handle.write(lines[1][torn_at:])
        assert [rec["event"] for rec in tailer.poll()] == ["finish"]
        assert tailer.corrupt_lines == 0

    def test_crc_bad_final_line_is_held_back_then_reread(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1},
                           {"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        raw_lines = path.read_bytes().splitlines(keepends=True)
        # Flip the final line's payload without breaking JSON: its CRC
        # no longer checks out — indistinguishable, to a live reader,
        # from a write still in flight.
        wrapper = json.loads(raw_lines[1])
        wrapper["data"]["status"] = "BUG_FOUND"
        bad = (json.dumps(wrapper) + "\n").encode("utf-8")
        path.write_bytes(raw_lines[0] + bad)

        tailer = JournalTailer(str(path))
        assert [rec["event"] for rec in tailer.poll()] == ["start"]
        assert tailer.corrupt_lines == 0  # held back, not yet condemned
        # The "flush" completes: the writer overwrites nothing, but a
        # fixed line lands where the bad bytes were re-read from.
        path.write_bytes(raw_lines[0] + raw_lines[1])
        assert [rec["status"] for rec in tailer.poll()] == ["PROVED"]
        assert tailer.corrupt_lines == 0

    def test_bad_line_superseded_by_later_record_counts_corrupt(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1}])
        with open(path, "ab") as handle:
            handle.write(b"not json at all {{{\n")
        tailer = JournalTailer(str(path))
        assert [rec["event"] for rec in tailer.poll()] == ["start"]
        assert tailer.corrupt_lines == 0  # still the live tail
        _append_all(path, [{"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        assert [rec["event"] for rec in tailer.poll()] == ["finish"]
        assert tailer.corrupt_lines == 1  # now provably mid-file garbage

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1}])
        with open(path, "ab") as handle:
            handle.write(b"\n\n")
        _append_all(path, [{"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        tailer = JournalTailer(str(path))
        assert [rec["event"] for rec in tailer.poll()] == ["start", "finish"]
        assert tailer.corrupt_lines == 0


class TestConcurrentWriter:
    def test_tailing_while_a_writer_appends(self, tmp_path):
        """The satellite regression scenario: a reader polls in a tight
        loop while a real Journal writer appends; every record must be
        seen exactly once, in order, with no corruption flagged."""
        path = tmp_path / "journal.jsonl"
        total = 200
        stop = threading.Event()

        def writer():
            with Journal(str(path)) as journal:
                for index in range(total):
                    journal.append({"event": "finish",
                                    "job_id": f"job-{index:04d}",
                                    "status": "PROVED"})
                    if index % 20 == 0:
                        time.sleep(0.001)
            stop.set()

        thread = threading.Thread(target=writer)
        tailer = JournalTailer(str(path))
        collected = []
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                collected.extend(tailer.poll())
                if stop.is_set():
                    collected.extend(tailer.poll())  # final drain
                    break
        finally:
            thread.join(30.0)
        assert [rec["job_id"] for rec in collected] == [
            f"job-{index:04d}" for index in range(total)
        ]
        assert tailer.corrupt_lines == 0

    def test_two_independent_tailers_see_the_same_stream(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _append_all(path, [{"event": "start", "job_id": "a", "attempt": 1}])
        one, two = JournalTailer(str(path)), JournalTailer(str(path))
        assert one.poll() == two.poll()
        _append_all(path, [{"event": "finish", "job_id": "a",
                            "status": "PROVED"}])
        assert one.poll() == two.poll()
        assert one.poll() == two.poll() == []
