"""Parallel campaign execution: single-writer journal consistency,
worker-crash recovery, and sequential/parallel equivalence."""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignRunner,
    DegradePolicy,
    Fault,
    FaultKind,
    FaultPlan,
    Job,
    Journal,
    RetryPolicy,
)
from repro.campaign.jobs import TERMINAL_STATES
from repro.campaign.parallel import WORKER_CRASH_ERROR
from repro.core.results import VerificationResult
from repro.errors import CampaignError


def fake_verify(config, method="rewriting", bug=None, criterion="disjunction",
                max_conflicts=None, max_seconds=None):
    """Instant always-proves verify; module-level so workers can pickle it."""
    return VerificationResult(
        config=config, method=method, bug=None, correct=True,
        timings={"total": 0.0},
    )


def journal_events(path):
    """Raw journal records, proving every line parses (no interleaving)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            wrapper = json.loads(line)  # raises on a torn/corrupt line
            assert set(wrapper) == {"crc", "data"}
            events.append(wrapper["data"])
    return events


GRID = [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2)]


def make_jobs(grid=GRID):
    return [Job.build(n, k) for n, k in grid]


class TestParallelBasics:
    def test_parallel_matches_sequential_outcomes(self, tmp_path):
        jobs = make_jobs()
        seq = CampaignRunner(
            str(tmp_path / "seq.jsonl"), verify_fn=fake_verify
        ).run(jobs)
        par = CampaignRunner(
            str(tmp_path / "par.jsonl"), verify_fn=fake_verify, workers=3
        ).run(jobs)
        assert {j: (r.status, r.method, r.attempts)
                for j, r in seq.results.items()} == \
               {j: (r.status, r.method, r.attempts)
                for j, r in par.results.items()}
        assert par.workers == 3
        # Results come back in job-list order regardless of finish order.
        assert list(par.results) == [job.job_id for job in jobs]

    def test_default_verify_runs_in_workers(self, tmp_path):
        # verify_fn=None: each worker imports repro.core.verify itself.
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), workers=2
        ).run(make_jobs([(2, 1), (2, 2), (3, 1)]))
        assert report.counts() == {"PROVED": 3}
        assert all(r.worker is not None for r in report.results.values())

    def test_worker_metrics_are_merged(self, tmp_path):
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), verify_fn=fake_verify, workers=2
        ).run(make_jobs())
        assert report.metrics["campaign.jobs_run"] == len(GRID)
        assert report.metrics["campaign.job_seconds"] > 0.0

    def test_workers_below_one_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(str(tmp_path / "j.jsonl"), workers=0)

    def test_single_job_runs_in_process(self, tmp_path):
        # One job never pays pool overhead; no worker id is recorded.
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), verify_fn=fake_verify, workers=4
        ).run([Job.build(2, 1)])
        assert report.counts() == {"PROVED": 1}
        assert next(iter(report.results.values())).worker is None


class TestSingleWriterJournal:
    def test_journal_is_consistent_under_workers_and_crashes(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = make_jobs()
        crashed = [jobs[1].job_id, jobs[4].job_id]
        plan = FaultPlan(
            [Fault(FaultKind.CRASH, job_id=job_id, attempt=1)
             for job_id in crashed]
            + [Fault(FaultKind.SOLVER_TIMEOUT, job_id=jobs[2].job_id,
                     attempt=1)]
        )
        report = CampaignRunner(
            path, verify_fn=fake_verify, workers=3, fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, escalation=2.0),
        ).run(jobs)

        # Every job recovered to a terminal state.
        assert set(report.results) == {job.job_id for job in jobs}
        for result in report.results.values():
            assert result.status in TERMINAL_STATES
        assert report.counts() == {"PROVED": len(jobs)}
        assert report.metrics["campaign.worker_crashes"] == len(crashed)

        # The journal one writer produced: every line parses, replay is
        # clean even under strict mode, and the event ledger balances.
        events = journal_events(path)
        replay = Journal.load(path, strict=True)
        assert replay.corrupt_lines == 0
        assert not replay.torn_tail
        assert not replay.in_flight()

        by_kind = {}
        for event in events:
            by_kind.setdefault(event["event"], []).append(event)
        assert len(by_kind["enqueue"]) == len(jobs)
        assert len(by_kind["finish"]) == len(jobs)
        failures = by_kind["attempt_failed"]
        assert sorted(
            e["job_id"] for e in failures if e["error"] == WORKER_CRASH_ERROR
        ) == sorted(crashed)
        assert any(e["error"] == "BudgetExhausted" for e in failures)

    def test_crashed_worker_job_is_requeued_and_resumable(self, tmp_path):
        """Acceptance scenario: a worker dies mid-job; the campaign
        journals the crash, retries the job, and a later run replays."""
        path = str(tmp_path / "j.jsonl")
        jobs = make_jobs([(2, 1), (2, 2), (3, 1), (3, 2)])
        victim = jobs[2].job_id
        plan = FaultPlan([Fault(FaultKind.CRASH, job_id=victim, attempt=1)])
        report = CampaignRunner(
            path, verify_fn=fake_verify, workers=2, fault_plan=plan
        ).run(jobs)

        assert report.counts() == {"PROVED": len(jobs)}
        # The victim's first attempt is journaled as a worker crash...
        crash_events = [
            e for e in journal_events(path)
            if e["event"] == "attempt_failed"
            and e["error"] == WORKER_CRASH_ERROR
        ]
        assert [e["job_id"] for e in crash_events] == [victim]
        assert "re-queued" in crash_events[0]["detail"]
        # ...and the escalation schedule advanced past it: the replacement
        # attempt is numbered 2, exactly as a campaign-level resume would.
        starts = [
            e["attempt"] for e in journal_events(path)
            if e["event"] == "start" and e["job_id"] == victim
        ]
        assert starts == [1, 2]

        # A fresh run over the same journal is a pure replay.
        rerun = CampaignRunner(path, verify_fn=fake_verify).run(jobs)
        assert rerun.replayed == len(jobs)

    def test_job_that_always_crashes_goes_inconclusive(self, tmp_path):
        # Crash faults on every attempt of both methods: the job must
        # converge to INCONCLUSIVE instead of looping forever.
        path = str(tmp_path / "j.jsonl")
        jobs = make_jobs([(2, 1), (2, 2)])
        victim = jobs[0].job_id
        plan = FaultPlan([
            Fault(FaultKind.CRASH, job_id=victim, attempt=attempt)
            for attempt in (1, 2, 3, 4)
        ])
        report = CampaignRunner(
            path, verify_fn=fake_verify, workers=2, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, escalation=2.0),
        ).run(jobs)
        assert report.results[victim].status == "INCONCLUSIVE"
        assert report.results[jobs[1].job_id].status == "PROVED"
        assert report.metrics["campaign.worker_crashes"] == 4


RECOVERABLE = [FaultKind.SOLVER_TIMEOUT, FaultKind.OOM,
               FaultKind.REWRITE_FAILURE]
PARITY_JOBS = [(2, 1), (2, 2), (3, 1), (3, 2)]
_counter = itertools.count()


def _attempt_trace(path):
    """Per-job (attempt, method, error) failure sequences — the observable
    fault firings — plus terminal (status, method, attempts)."""
    failures = {}
    outcomes = {}
    for event in journal_events(path):
        if event["event"] == "attempt_failed":
            failures.setdefault(event["job_id"], []).append(
                (event["attempt"], event["method"], event["error"])
            )
        elif event["event"] == "finish":
            outcomes[event["job_id"]] = (
                event["status"], event["method"], event["attempts"]
            )
    return failures, outcomes


@settings(max_examples=8, deadline=None)
@given(
    plan_spec=st.dictionaries(
        keys=st.tuples(
            st.integers(0, len(PARITY_JOBS) - 1), st.integers(1, 2)
        ),
        values=st.sampled_from(RECOVERABLE),
        max_size=4,
    )
)
def test_sequential_and_parallel_runs_are_equivalent(
    tmp_path_factory, plan_spec
):
    """Property: the same spec + fault plan produces identical per-job
    statuses and fault firings whether run sequentially or with workers.

    Restricted to recoverable fault kinds: ``crash`` intentionally differs
    in scope (kills the whole sequential campaign but only one worker)."""
    tmp_path = tmp_path_factory.mktemp(f"parity{next(_counter)}")
    jobs = make_jobs(PARITY_JOBS)

    def run(workers):
        path = str(tmp_path / f"w{workers}.jsonl")
        plan = FaultPlan(
            Fault(kind, job_id=jobs[index].job_id, attempt=attempt)
            for (index, attempt), kind in plan_spec.items()
        )
        report = CampaignRunner(
            path,
            verify_fn=fake_verify,
            workers=workers,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, escalation=2.0),
            degrade=DegradePolicy(fallback_method="positive_equality"),
        ).run(jobs)
        return _attempt_trace(path), report

    (seq_failures, seq_outcomes), seq_report = run(workers=1)
    (par_failures, par_outcomes), par_report = run(workers=2)

    assert par_outcomes == seq_outcomes
    assert par_failures == seq_failures
    assert par_report.counts() == seq_report.counts()
    assert {j: r.status for j, r in par_report.results.items()} == \
           {j: r.status for j, r in seq_report.results.items()}
