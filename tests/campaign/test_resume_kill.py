"""Acceptance scenario: a campaign of 12 real verification jobs is killed
mid-run via the fault harness, then resumed from its journal.  Completed
jobs must not be re-run, and every job must end in a terminal state."""

import pytest

from repro.campaign import (
    CampaignRunner,
    Fault,
    FaultKind,
    FaultPlan,
    InjectedCrash,
    Job,
    Journal,
)
from repro.campaign.jobs import TERMINAL_STATES
from repro.core import verify


class CountingVerify:
    """Real verification, with a per-configuration call counter."""

    def __init__(self):
        self.calls = {}

    def __call__(self, config, **kwargs):
        key = (config.n_rob, config.issue_width, kwargs.get("method"))
        self.calls[key] = self.calls.get(key, 0) + 1
        return verify(config, **kwargs)


def make_jobs():
    jobs = [
        Job.build(n, k)
        for n, k in [(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3),
                     (4, 1), (4, 2), (4, 4), (5, 1)]
    ]
    jobs.append(Job.build(4, 2, bug_kind="forward-wrong-source", bug_entry=3))
    # A Positive-Equality job with a hopeless 1-conflict budget: exhausts
    # its escalated retries and must land INCONCLUSIVE, not crash.
    jobs.append(Job.build(3, 3, method="positive_equality", max_conflicts=1))
    return jobs


def test_killed_campaign_resumes_and_reaches_all_terminal_states(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    jobs = make_jobs()
    assert len(jobs) >= 10
    kill_at = jobs[6].job_id

    # --- first run: killed while job 7 of 12 is in flight ---------------
    first = CountingVerify()
    plan = FaultPlan([Fault(FaultKind.CRASH, job_id=kill_at, attempt=1)])
    with pytest.raises(InjectedCrash):
        CampaignRunner(path, fault_plan=plan, verify_fn=first).run(jobs)
    replay = Journal.load(path)
    finished_before = set(replay.finished())
    assert finished_before == {job.job_id for job in jobs[:6]}
    assert kill_at in replay.in_flight()

    # --- resume: only unfinished jobs run --------------------------------
    second = CountingVerify()
    report = CampaignRunner(path, verify_fn=second).run(jobs)

    assert set(report.results) == {job.job_id for job in jobs}
    for job_id, result in report.results.items():
        assert result.status in TERMINAL_STATES, job_id
    assert report.replayed == 6
    # Jobs finished before the kill were not verified again.
    for job in jobs[:6]:
        assert (job.n_rob, job.issue_width, "rewriting") not in second.calls
    # The in-flight job was re-run on resume.
    assert second.calls[(4, 1, "rewriting")] == 1

    counts = report.counts()
    assert counts["PROVED"] == 10
    assert counts["BUG_FOUND"] == 1
    assert counts["INCONCLUSIVE"] == 1

    # --- a third run is a pure journal replay ----------------------------
    third = CountingVerify()
    report3 = CampaignRunner(path, verify_fn=third).run(jobs)
    assert third.calls == {}
    assert report3.replayed == len(jobs)
