"""Fault-injection harness tests: every injected failure kind must drive
the runner down its corresponding recovery path."""

import pytest

from repro.campaign import (
    CampaignRunner,
    DegradePolicy,
    Fault,
    FaultKind,
    FaultPlan,
    InjectedCrash,
    Job,
    Journal,
    RetryPolicy,
)
from repro.errors import BudgetExhausted, CampaignError, RewriteFailed

from .test_runner import SpyVerify


class TestFaultPlanMechanics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError):
            Fault("meteor-strike", job_id="a")

    def test_duplicate_fault_rejected(self):
        with pytest.raises(CampaignError):
            FaultPlan([
                Fault(FaultKind.OOM, job_id="a", attempt=1),
                Fault(FaultKind.CRASH, job_id="a", attempt=1),
            ])

    def test_faults_fire_exactly_once(self):
        plan = FaultPlan([Fault(FaultKind.SOLVER_TIMEOUT, job_id="a")])
        with pytest.raises(BudgetExhausted):
            plan.fire("a", 1, "rewriting")
        plan.fire("a", 1, "rewriting")  # second call: nothing happens
        assert plan.fired == 1

    def test_method_restriction(self):
        plan = FaultPlan([
            Fault(FaultKind.SOLVER_TIMEOUT, job_id="a", method="rewriting")
        ])
        plan.fire("a", 1, "positive_equality")  # no-op: wrong method
        with pytest.raises(BudgetExhausted):
            plan.fire("a", 1, "rewriting")

    def test_unplanned_attempts_untouched(self):
        plan = FaultPlan([Fault(FaultKind.OOM, job_id="a", attempt=2)])
        plan.fire("a", 1, "rewriting")
        plan.fire("b", 2, "rewriting")
        assert plan.fired == 0


class TestInjectedRecoveryPaths:
    def test_solver_timeout_retries_then_degrades(self, tmp_path):
        job = Job.build(4, 2)
        plan = FaultPlan([
            Fault(FaultKind.SOLVER_TIMEOUT, job_id=job.job_id, attempt=a,
                  method="rewriting")
            for a in (1, 2)
        ])
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=2),
            fault_plan=plan,
            verify_fn=SpyVerify(),
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.method == "positive_equality"
        assert result.attempts == 3

    def test_oom_is_retried_like_a_budget_kill(self, tmp_path):
        job = Job.build(4, 2)
        plan = FaultPlan([Fault(FaultKind.OOM, job_id=job.job_id, attempt=1)])
        spy = SpyVerify()
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), fault_plan=plan, verify_fn=spy
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.method == "rewriting"
        assert result.attempts == 2

    def test_rewrite_failure_degrades_immediately(self, tmp_path):
        job = Job.build(4, 2)
        plan = FaultPlan([
            Fault(FaultKind.REWRITE_FAILURE, job_id=job.job_id, attempt=1)
        ])
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), fault_plan=plan, verify_fn=SpyVerify()
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.method == "positive_equality"
        assert result.attempts == 2

    def test_injected_failures_are_journaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job.build(4, 2)
        plan = FaultPlan([Fault(FaultKind.OOM, job_id=job.job_id, attempt=1)])
        CampaignRunner(path, fault_plan=plan, verify_fn=SpyVerify()).run([job])
        replay = Journal.load(path)
        failed = list(replay.events("attempt_failed"))
        assert len(failed) == 1
        assert failed[0]["error"] == "MemoryError"


class TestCrashFaults:
    def test_crash_unwinds_the_whole_campaign(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2), Job.build(3, 1)]
        plan = FaultPlan([
            Fault(FaultKind.CRASH, job_id=jobs[1].job_id, attempt=1)
        ])
        with pytest.raises(InjectedCrash):
            CampaignRunner(path, fault_plan=plan,
                           verify_fn=SpyVerify()).run(jobs)
        replay = Journal.load(path)
        assert set(replay.finished()) == {jobs[0].job_id}
        assert set(replay.in_flight()) == {jobs[1].job_id}

    def test_crash_is_not_swallowed_by_recovery(self, tmp_path):
        # InjectedCrash is a BaseException: neither the retry loop nor the
        # degradation path may catch it.
        job = Job.build(2, 1)
        plan = FaultPlan([Fault(FaultKind.CRASH, job_id=job.job_id)])
        runner = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=5),
            fault_plan=plan,
            verify_fn=SpyVerify(),
        )
        with pytest.raises(InjectedCrash):
            runner.run([job])

    def test_resume_after_crash_completes_in_flight_job(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2)]
        plan = FaultPlan([
            Fault(FaultKind.CRASH, job_id=jobs[1].job_id, attempt=1)
        ])
        with pytest.raises(InjectedCrash):
            CampaignRunner(path, fault_plan=plan,
                           verify_fn=SpyVerify()).run(jobs)
        spy = SpyVerify()
        report = CampaignRunner(path, verify_fn=spy).run(jobs)
        assert report.counts() == {"PROVED": 2}
        # Only the in-flight job is re-run.
        assert [key[:2] for key, _, _ in spy.calls] == [(2, 2)]

    def test_journal_corrupt_crash_leaves_recoverable_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2)]
        plan = FaultPlan([
            Fault(FaultKind.JOURNAL_CORRUPT, job_id=jobs[1].job_id, attempt=1)
        ])
        with pytest.raises(InjectedCrash):
            CampaignRunner(path, fault_plan=plan,
                           verify_fn=SpyVerify()).run(jobs)
        replay = Journal.load(path)
        assert replay.torn_tail is True
        # The torn record was the second job's start; resume re-runs it.
        report = CampaignRunner(path, verify_fn=SpyVerify()).run(jobs)
        assert report.counts() == {"PROVED": 2}
        assert report.torn_tail is True
