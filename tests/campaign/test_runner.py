"""Campaign runner tests: budgets, escalation, degradation, resume."""

import pytest

from repro import ProcessorConfig
from repro.campaign import (
    CampaignRunner,
    DegradePolicy,
    Job,
    JobResult,
    Journal,
    RetryPolicy,
)
from repro.core.results import VerificationResult
from repro.errors import BudgetExhausted, CampaignError, RewriteFailed


def proved_result(config, method):
    return VerificationResult(
        config=config, method=method, bug=None, correct=True,
        timings={"total": 0.0},
    )


class SpyVerify:
    """A verify() stand-in with a programmable failure script."""

    def __init__(self, script=None):
        #: maps (job-config key, method, call-ordinal per key) to an
        #: exception instance to raise; everything else returns PROVED.
        self.script = script or {}
        self.calls = []

    def __call__(self, config, method="rewriting", bug=None,
                 criterion="disjunction", max_conflicts=None,
                 max_seconds=None):
        key = (config.n_rob, config.issue_width, method)
        ordinal = sum(1 for c in self.calls if c[0] == key)
        self.calls.append((key, max_conflicts, max_seconds))
        exc = self.script.get((key, ordinal))
        if exc is not None:
            raise exc
        return proved_result(config, method)


class TestRetryPolicy:
    def test_budget_escalates_exponentially(self):
        policy = RetryPolicy(base_conflicts=100, escalation=2.0,
                             conflicts_cap=350)
        job = Job.build(2, 1)
        assert policy.budget_for(job, 1) == (100, None)
        assert policy.budget_for(job, 2) == (200, None)
        assert policy.budget_for(job, 3) == (350, None)  # capped

    def test_job_budget_overrides_policy_base(self):
        policy = RetryPolicy(base_conflicts=100, escalation=3.0)
        job = Job.build(2, 1, max_conflicts=10, max_seconds=1.0)
        conflicts, seconds = policy.budget_for(job, 2)
        assert conflicts == 30
        assert seconds == pytest.approx(3.0)

    def test_unbounded_budgets(self):
        policy = RetryPolicy(base_conflicts=None)
        assert policy.budget_for(Job.build(2, 1), 1) == (None, None)

    def test_rejects_bad_parameters(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(escalation=0.5)


class TestTerminalStates:
    def test_all_jobs_proved(self, tmp_path):
        runner = CampaignRunner(str(tmp_path / "j.jsonl"))
        report = runner.run([Job.build(2, 1), Job.build(2, 2)])
        assert report.counts() == {"PROVED": 2}
        assert report.exit_code() == 0

    def test_buggy_job_is_bug_found(self, tmp_path):
        runner = CampaignRunner(str(tmp_path / "j.jsonl"))
        job = Job.build(3, 1, bug_kind="forward-wrong-source", bug_entry=2)
        report = runner.run([job])
        result = report.results[job.job_id]
        assert result.status == "BUG_FOUND"
        assert result.suspected_entry == 2
        assert report.exit_code() == 1

    def test_real_budget_exhaustion_goes_inconclusive(self, tmp_path):
        # Positive Equality on (3,3) conflicts immediately; with a 1-conflict
        # base budget and two attempts every budget is exhausted.
        job = Job.build(3, 3, method="positive_equality", max_conflicts=1)
        runner = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=2, escalation=2.0),
            degrade=DegradePolicy(fallback_method=None),
        )
        report = runner.run([job])
        result = report.results[job.job_id]
        assert result.status == "INCONCLUSIVE"
        assert result.attempts == 2
        assert "BudgetExhausted" in result.detail
        assert report.exit_code() == 4

    def test_invalid_config_is_inconclusive_not_crash(self, tmp_path):
        bad = Job(job_id="bad", n_rob=2, issue_width=8)  # width > ROB
        good = Job.build(2, 1)
        report = CampaignRunner(str(tmp_path / "j.jsonl")).run([bad, good])
        assert report.results["bad"].status == "INCONCLUSIVE"
        assert report.results[good.job_id].status == "PROVED"


class TestEscalation:
    def test_retry_until_budget_suffices(self, tmp_path):
        job = Job.build(4, 2, max_conflicts=10)
        key = (4, 2, "rewriting")
        spy = SpyVerify(script={
            (key, 0): BudgetExhausted("too small", conflicts=10),
            (key, 1): BudgetExhausted("still too small", conflicts=20),
        })
        runner = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=3, escalation=2.0),
            verify_fn=spy,
        )
        report = runner.run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.attempts == 3
        # Budgets escalated 10 -> 20 -> 40.
        assert [c[1] for c in spy.calls] == [10, 20, 40]

    def test_memory_error_follows_the_retry_path(self, tmp_path):
        job = Job.build(4, 2)
        key = (4, 2, "rewriting")
        spy = SpyVerify(script={(key, 0): MemoryError("simulated 4 GB kill")})
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), verify_fn=spy
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.attempts == 2


class TestDegradation:
    def test_rewriting_exhaustion_falls_back_to_positive_equality(
        self, tmp_path
    ):
        job = Job.build(4, 2)
        key = (4, 2, "rewriting")
        spy = SpyVerify(script={
            (key, i): BudgetExhausted("rewriting attempt dies")
            for i in range(3)
        })
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=3),
            verify_fn=spy,
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.method == "positive_equality"
        assert result.attempts == 4  # 3 rewriting + 1 fallback

    def test_rewrite_failure_degrades_without_retrying(self, tmp_path):
        job = Job.build(4, 2)
        key = (4, 2, "rewriting")
        spy = SpyVerify(script={
            (key, 0): RewriteFailed("no structure", stage="decompose"),
        })
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"), verify_fn=spy
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.method == "positive_equality"
        assert result.attempts == 2  # structural failure is not retried

    def test_no_degrade_policy_records_inconclusive(self, tmp_path):
        job = Job.build(4, 2)
        key = (4, 2, "rewriting")
        spy = SpyVerify(script={
            (key, 0): RewriteFailed("no structure", stage="decompose"),
        })
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            degrade=DegradePolicy(fallback_method=None),
            verify_fn=spy,
        ).run([job])
        assert report.results[job.job_id].status == "INCONCLUSIVE"
        assert "RewriteFailed" in report.results[job.job_id].detail

    def test_positive_equality_jobs_never_degrade(self, tmp_path):
        job = Job.build(3, 1, method="positive_equality")
        key = (3, 1, "positive_equality")
        spy = SpyVerify(script={
            (key, i): BudgetExhausted("dies") for i in range(3)
        })
        report = CampaignRunner(
            str(tmp_path / "j.jsonl"),
            retry=RetryPolicy(max_attempts=3),
            verify_fn=spy,
        ).run([job])
        assert report.results[job.job_id].status == "INCONCLUSIVE"


class TestResume:
    def test_finished_jobs_are_never_rerun(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2)]
        first = SpyVerify()
        CampaignRunner(path, verify_fn=first).run(jobs)
        assert len(first.calls) == 2
        second = SpyVerify()
        report = CampaignRunner(path, verify_fn=second).run(jobs)
        assert second.calls == []
        assert report.replayed == 2
        assert all(r.from_journal for r in report.results.values())

    def test_resume_from_journal_without_job_list(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(3, 1)]
        CampaignRunner(path, verify_fn=SpyVerify()).run(jobs)
        report = CampaignRunner(path, verify_fn=SpyVerify()).run()
        assert set(report.results) == {j.job_id for j in jobs}

    def test_resume_keeps_escalation_schedule(self, tmp_path):
        # Journal records two failed attempts; the resumed run must start
        # at attempt 3 with the twice-escalated budget.
        path = str(tmp_path / "j.jsonl")
        job = Job.build(4, 2, max_conflicts=10)
        with Journal(path) as journal:
            journal.append({"event": "enqueue", "job": job.to_dict()})
            for attempt in (1, 2):
                journal.append({"event": "start", "job_id": job.job_id,
                                "attempt": attempt, "method": "rewriting"})
                journal.append({"event": "attempt_failed",
                                "job_id": job.job_id, "attempt": attempt,
                                "method": "rewriting",
                                "error": "BudgetExhausted", "detail": "x"})
        spy = SpyVerify()
        report = CampaignRunner(
            path, retry=RetryPolicy(max_attempts=3, escalation=2.0),
            verify_fn=spy,
        ).run()
        assert report.results[job.job_id].status == "PROVED"
        assert [c[1] for c in spy.calls] == [40]  # attempt 3 only

    def test_empty_journal_resume_is_an_error(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(str(tmp_path / "j.jsonl")).run()

    def test_duplicate_job_ids_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(str(tmp_path / "j.jsonl")).run(
                [Job.build(2, 1), Job.build(2, 1)]
            )


class TestSpecDrift:
    def test_resupplying_identical_spec_is_fine(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2)]
        CampaignRunner(path, verify_fn=SpyVerify()).run(jobs)
        report = CampaignRunner(path, verify_fn=SpyVerify()).run(
            [Job.build(2, 1), Job.build(2, 2)]
        )
        assert report.replayed == 2

    def test_drifted_spec_raises_naming_the_fields(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CampaignRunner(path, verify_fn=SpyVerify()).run([Job.build(2, 1)])
        drifted = Job.build(2, 1, max_conflicts=99,
                            criterion="case_split")
        assert drifted.job_id == Job.build(2, 1).job_id  # same id, new spec
        with pytest.raises(CampaignError) as excinfo:
            CampaignRunner(path, verify_fn=SpyVerify()).run([drifted])
        message = str(excinfo.value)
        assert "spec drifted" in message
        assert "criterion" in message and "max_conflicts" in message
        assert "case_split" in message

    def test_drift_check_fires_before_any_job_runs(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CampaignRunner(path, verify_fn=SpyVerify()).run([Job.build(2, 1)])
        spy = SpyVerify()
        new_job = Job.build(3, 1)
        drifted = Job.build(2, 1, max_conflicts=7)
        with pytest.raises(CampaignError):
            CampaignRunner(path, verify_fn=spy).run([new_job, drifted])
        assert spy.calls == []  # nothing ran against the wrong spec

    def test_new_jobs_may_join_a_resumed_campaign(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CampaignRunner(path, verify_fn=SpyVerify()).run([Job.build(2, 1)])
        report = CampaignRunner(path, verify_fn=SpyVerify()).run(
            [Job.build(2, 1), Job.build(3, 1)]
        )
        assert report.replayed == 1
        assert len(report.results) == 2


class TestCallbackErrors:
    def test_callback_exception_does_not_abort_the_campaign(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2), Job.build(3, 1)]
        seen = []

        def flaky(job, result):
            seen.append(job.job_id)
            if job.job_id == jobs[1].job_id:
                raise RuntimeError("observer fell over")

        report = CampaignRunner(
            path, verify_fn=SpyVerify(), on_result=flaky
        ).run(jobs)
        # Every job still ran and the callback kept being invoked.
        assert report.counts() == {"PROVED": 3}
        assert seen == [job.job_id for job in jobs]
        assert report.callback_errors == 1
        assert "1 on_result callback error" in report.summary()

    def test_callback_error_is_journaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job.build(2, 1)

        def bad(j, r):
            raise ValueError("bad observer")

        CampaignRunner(path, verify_fn=SpyVerify(), on_result=bad).run([job])
        errors = Journal.load(path).callback_errors()
        assert len(errors) == 1
        assert errors[0]["job_id"] == job.job_id
        assert errors[0]["error"] == "ValueError"
        assert "bad observer" in errors[0]["detail"]

    def test_replayed_results_also_contain_callback_errors(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job.build(2, 1)
        CampaignRunner(path, verify_fn=SpyVerify()).run([job])

        def bad(j, r):
            raise RuntimeError("boom on replay")

        report = CampaignRunner(
            path, verify_fn=SpyVerify(), on_result=bad
        ).run([job])
        assert report.replayed == 1
        assert report.callback_errors == 1


class TestJobSerialization:
    def test_roundtrip(self):
        job = Job.build(8, 2, bug_kind="forward-stale-result", bug_entry=5,
                        max_conflicts=123)
        assert Job.from_dict(job.to_dict()) == job

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            Job.from_dict({"job_id": "x", "n_rob": 2, "issue_width": 1,
                           "bogus": True})

    def test_result_requires_terminal_state(self):
        with pytest.raises(CampaignError):
            JobResult(job_id="x", status="RUNNING", method="rewriting",
                      attempts=1)

    def test_config_and_bug_materialize(self):
        job = Job.build(8, 2, bug_kind="forward-wrong-source", bug_entry=3)
        assert job.config() == ProcessorConfig(n_rob=8, issue_width=2)
        assert job.bug().entry == 3
        assert Job.build(2, 1).bug() is None
