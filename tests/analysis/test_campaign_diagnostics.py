"""Diagnostics ride through the campaign journal and survive resume."""

import json

import pytest

from repro.campaign import CampaignRunner, Job, JobResult, RetryPolicy
from repro.campaign.faults import Fault, FaultKind, FaultPlan, InjectedCrash
from repro.core.results import VerificationResult


def _checks(result):
    return {d["check"] for d in result.diagnostics}


class TestAnalyzeFlag:
    def test_diagnostics_recorded_and_journaled(self, tmp_path):
        journal = str(tmp_path / "camp.jsonl")
        job = Job.build(2, 1)
        report = CampaignRunner(journal, analyze=True).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.diagnostics
        assert "rewrite.rules-applied" in _checks(result)
        # The finish record carries the findings verbatim.
        finishes = [
            json.loads(line.split("\t", 1)[-1]) if "\t" in line else None
            for line in open(journal, encoding="utf-8")
        ]
        raw = open(journal, encoding="utf-8").read()
        assert "rewrite.rules-applied" in raw

    def test_resume_replays_diagnostics(self, tmp_path):
        journal = str(tmp_path / "camp.jsonl")
        job = Job.build(2, 1)
        first = CampaignRunner(journal, analyze=True).run([job])
        recorded = first.results[job.job_id].diagnostics
        assert recorded

        resumed = CampaignRunner(journal, analyze=True).run()
        replayed = resumed.results[job.job_id]
        assert replayed.from_journal
        assert replayed.diagnostics == recorded

    def test_off_by_default(self, tmp_path):
        job = Job.build(2, 1)
        report = CampaignRunner(str(tmp_path / "c.jsonl")).run([job])
        assert report.results[job.job_id].diagnostics == []

    def test_narrow_stub_signature_still_works(self, tmp_path):
        # verify_fn overrides without an ``analyze`` parameter must keep
        # working as long as the runner's analyze flag stays off.
        def stub(config, method="rewriting", bug=None,
                 criterion="disjunction", max_conflicts=None,
                 max_seconds=None):
            return VerificationResult(
                config=config, method=method, bug=bug, correct=True,
                timings={"total": 0.0},
            )

        job = Job.build(4, 2)
        report = CampaignRunner(
            str(tmp_path / "c.jsonl"), verify_fn=stub
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.diagnostics == []


class TestFaultInjection:
    def test_diagnostics_present_after_retry(self, tmp_path):
        job = Job.build(2, 1)
        plan = FaultPlan([Fault(kind=FaultKind.SOLVER_TIMEOUT,
                                job_id=job.job_id, attempt=1)])
        report = CampaignRunner(
            str(tmp_path / "c.jsonl"),
            retry=RetryPolicy(max_attempts=2),
            fault_plan=plan,
            analyze=True,
        ).run([job])
        result = report.results[job.job_id]
        assert result.status == "PROVED"
        assert result.attempts == 2
        assert "rewrite.rules-applied" in _checks(result)

    def test_diagnostics_survive_crash_and_resume(self, tmp_path):
        journal = str(tmp_path / "camp.jsonl")
        survivor = Job.build(2, 1, job_id="survivor")
        doomed = Job.build(2, 1, job_id="doomed")
        plan = FaultPlan([Fault(kind=FaultKind.CRASH,
                                job_id="doomed", attempt=1)])
        with pytest.raises(InjectedCrash):
            CampaignRunner(journal, fault_plan=plan,
                           analyze=True).run([survivor, doomed])

        # The crash unwound the campaign after ``survivor`` finished; its
        # diagnostics must replay from the journal on resume, and the
        # re-run of ``doomed`` must produce its own.
        resumed = CampaignRunner(journal, analyze=True).run()
        replayed = resumed.results["survivor"]
        assert replayed.from_journal
        assert "rewrite.rules-applied" in _checks(replayed)
        rerun = resumed.results["doomed"]
        assert not rerun.from_journal
        assert rerun.status == "PROVED"
        assert "rewrite.rules-applied" in _checks(rerun)


class TestSerialization:
    def test_round_trip_preserves_diagnostics(self):
        result = JobResult(
            job_id="j", status="PROVED", method="rewriting", attempts=1,
            diagnostics=[{
                "severity": "info", "stage": "rewrite",
                "check": "rewrite.rules-applied", "subject": "j",
                "message": "rule applications: merge=1",
                "data": {"rules_applied": {"merge": 1}},
            }],
        )
        assert JobResult.from_dict(result.to_dict()) == result

    def test_from_dict_defaults_to_no_diagnostics(self):
        payload = {"job_id": "j", "status": "PROVED"}
        assert JobResult.from_dict(payload).diagnostics == []
