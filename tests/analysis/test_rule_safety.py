"""Rewrite-rule safety: the registry verifies, unsound rules are caught."""

from repro.analysis import (
    ERROR,
    REGISTRY,
    RuleInstance,
    RuleSpec,
    analyze_rule,
    analyze_rules,
)
from repro.eufm import builder
from repro.eufm.evaluator import Interpretation, evaluate


def errors(diagnostics):
    return [d for d in diagnostics if d.severity == ERROR]


def checks(diagnostics):
    return {d.check for d in diagnostics}


class TestRegistry:
    def test_every_registered_rule_is_sound(self):
        findings = analyze_rules()
        assert not errors(findings), [d.render() for d in findings]
        verified = {
            d.subject for d in findings
            if d.check in ("rules.verified",
                           "rules.identity-after-normalization")
        }
        assert verified == {spec.name for spec in REGISTRY}

    def test_verified_findings_report_interpretation_counts(self):
        for spec in REGISTRY:
            findings = analyze_rule(spec)
            for diag in findings:
                if diag.check == "rules.verified":
                    assert diag.data["interpretations"] > 0


def _unsound_drop_address_check():
    """read(write(m, a, d), b) -> d: ignores that a may differ from b."""
    m, a = builder.tvar("bad!m"), builder.tvar("bad!a")
    b, d = builder.tvar("bad!b"), builder.tvar("bad!d")
    lhs = builder.read(builder.write(m, a, d), b)
    return RuleInstance(
        lhs=lhs, rhs=d,
        pattern_vars=("bad!m", "bad!a", "bad!b", "bad!d"),
    )


UNSOUND_SPEC = RuleSpec(
    name="drop-address-check",
    description="deliberately unsound: forwards without comparing addresses",
    build=_unsound_drop_address_check,
)


class TestUnsoundRuleDetection:
    def test_unsound_rewrite_is_reported_with_witness(self):
        findings = analyze_rule(UNSOUND_SPEC)
        unsound = [d for d in findings if d.check == "rules.unsound-rewrite"]
        assert len(unsound) == 1
        diag = unsound[0]
        assert diag.severity == ERROR
        assert diag.subject == "drop-address-check"
        witness = diag.data
        assert witness["term_values"]["bad!a"] != witness["term_values"]["bad!b"]

    def test_witness_replays_concretely(self):
        instance = UNSOUND_SPEC.build()
        diag = next(
            d for d in analyze_rule(UNSOUND_SPEC)
            if d.check == "rules.unsound-rewrite"
        )
        interp = Interpretation(
            domain_size=diag.data["domain_size"],
            seed=diag.data["seed"],
            term_values=dict(diag.data["term_values"]),
            bool_values=dict(diag.data["bool_values"]),
        )
        equivalence = builder.eq(instance.lhs, instance.rhs)
        assert evaluate(equivalence, interp) is False


class TestStaticChecks:
    def test_rhs_inventing_a_variable_is_error(self):
        spec = RuleSpec(
            name="invent", description="", build=lambda: RuleInstance(
                lhs=builder.tvar("s!x"),
                rhs=builder.tvar("s!ghost"),
                pattern_vars=("s!x",),
            ),
        )
        assert "rules.rhs-invents-variable" in checks(analyze_rule(spec))

    def test_unbound_pattern_variable_is_error(self):
        spec = RuleSpec(
            name="unbound", description="", build=lambda: RuleInstance(
                lhs=builder.tvar("s!x"),
                rhs=builder.tvar("s!x"),
                pattern_vars=("s!x", "s!never"),
            ),
        )
        assert "rules.unbound-pattern-var" in checks(analyze_rule(spec))

    def test_nonlinear_pattern_is_error(self):
        spec = RuleSpec(
            name="nonlinear", description="", build=lambda: RuleInstance(
                lhs=builder.tvar("s!x"),
                rhs=builder.tvar("s!x"),
                pattern_vars=("s!x", "s!x"),
            ),
        )
        assert "rules.nonlinear-pattern" in checks(analyze_rule(spec))

    def test_dropped_guard_is_error(self):
        g = builder.bvar("s!g")
        t = builder.tvar("s!t")
        e = builder.tvar("s!e")
        spec = RuleSpec(
            name="drops-guard", description="", build=lambda: RuleInstance(
                lhs=builder.ite_term(g, t, e),
                rhs=builder.ite_term(g, t, e),
                pattern_vars=("s!g", "s!t", "s!e"),
                guards=(builder.bvar("s!other"),),
            ),
        )
        assert "rules.guard-dropped" in checks(analyze_rule(spec))

    def test_capture_into_general_position_is_error(self):
        # LHS uses x positively; the RHS moves it into a negated equation.
        x, y = builder.tvar("s!x"), builder.tvar("s!y")
        spec = RuleSpec(
            name="captures", description="", build=lambda: RuleInstance(
                lhs=builder.eq(x, y),
                rhs=builder.not_(builder.eq(x, y)),
                pattern_vars=("s!x", "s!y"),
            ),
        )
        findings = analyze_rule(spec)
        assert "rules.captures-into-general-position" in checks(findings)
        # It is also semantically unsound, and that is reported too.
        assert "rules.unsound-rewrite" in checks(findings)

    def test_declared_may_generalize_is_allowed(self):
        # The production forwarding rule generalizes its address variables
        # by declaration; no capture error may fire for it.
        fwd = next(s for s in REGISTRY if s.name == "forwarding-read-push")
        assert "rules.captures-into-general-position" not in checks(
            analyze_rule(fwd)
        )

    def test_broken_builder_is_a_finding_not_a_crash(self):
        def boom():
            raise RuntimeError("no instance today")

        spec = RuleSpec(name="broken", description="", build=boom)
        findings = analyze_rule(spec)
        assert checks(findings) == {"rules.builder-failed"}
        assert errors(findings)
