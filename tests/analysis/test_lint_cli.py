"""The ``python -m repro lint`` command and the strict verify mode."""

import json

import pytest

from repro import ProcessorConfig
from repro.__main__ import main as repro_main
from repro.analysis import ERROR, Diagnostic, RuleInstance, RuleSpec
from repro.analysis import rule_safety
from repro.analysis.cli import main as lint_main
from repro.core import verify
from repro.errors import AnalysisError
from repro.eufm import builder


class TestLintCli:
    def test_default_small_run_is_clean(self, capsys):
        assert lint_main(["--grid", "2x1", "--method", "rewriting"]) == 0
        out = capsys.readouterr().out
        assert "Soundness findings" in out
        assert "rules.verified" in out

    def test_json_report_shape(self, capsys):
        assert lint_main(["--rules-only", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_severity"] == "info"
        assert payload["summary"]["error"] == 0
        assert payload["findings"]
        finding = payload["findings"][0]
        assert {"severity", "stage", "check", "subject", "message",
                "data"} <= set(finding)

    def test_dispatch_through_python_m_repro(self, capsys):
        assert repro_main(["lint", "--rules-only", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["summary"]["error"] == 0

    def test_bad_grid_is_exit_2(self, capsys):
        assert lint_main(["--grid", "banana"]) == 2
        assert "lint failed" in capsys.readouterr().err

    def test_quiet_hides_info(self, capsys):
        assert lint_main(["--rules-only", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "rules.verified" not in out

    def test_no_rules_skips_registry(self, capsys):
        assert lint_main(["--grid", "2x1", "--method", "rewriting",
                          "--no-rules"]) == 0
        assert "rules.verified" not in capsys.readouterr().out


def _unsound_spec():
    def build():
        m, a = builder.tvar("bad!m"), builder.tvar("bad!a")
        b, d = builder.tvar("bad!b"), builder.tvar("bad!d")
        lhs = builder.read(builder.write(m, a, d), b)
        return RuleInstance(
            lhs=lhs, rhs=d,
            pattern_vars=("bad!m", "bad!a", "bad!b", "bad!d"),
        )

    return RuleSpec(name="drop-address-check",
                    description="deliberately unsound", build=build)


class TestUnsoundRuleThroughCli:
    def test_injected_unsound_rule_fails_the_lint(self, capsys, monkeypatch):
        monkeypatch.setattr(rule_safety, "REGISTRY", [_unsound_spec()])
        exit_code = lint_main(["--rules-only", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["max_severity"] == "error"
        unsound = [f for f in payload["findings"]
                   if f["check"] == "rules.unsound-rewrite"]
        assert unsound and unsound[0]["subject"] == "drop-address-check"
        # The witness interpretation is part of the machine-readable report.
        assert "term_values" in unsound[0]["data"]


class TestStrictVerify:
    def test_analyze_attaches_diagnostics(self):
        result = verify(ProcessorConfig(2, 1), analyze=True)
        assert result.correct
        assert result.diagnostics
        assert "analyze" in result.timings
        checks = {d.check for d in result.diagnostics}
        assert "rewrite.rules-applied" in checks

    def test_strict_clean_run_returns_normally(self):
        result = verify(ProcessorConfig(2, 1), strict=True)
        assert result.correct

    def test_strict_raises_on_error_findings(self, monkeypatch):
        from repro.analysis import pipeline

        def poisoned(result):
            return [Diagnostic(
                severity=ERROR, stage="polarity",
                check="polarity.p-var-in-general-position",
                subject="victim", message="planted for the test",
            )]

        monkeypatch.setattr(pipeline, "analyze_verification", poisoned)
        with pytest.raises(AnalysisError) as excinfo:
            verify(ProcessorConfig(2, 1), strict=True)
        assert excinfo.value.diagnostics
        assert "polarity.p-var-in-general-position" in str(excinfo.value)

    def test_strict_cli_exit_code_is_3(self, capsys, monkeypatch):
        from repro.analysis import pipeline

        monkeypatch.setattr(
            pipeline, "analyze_verification",
            lambda result: [Diagnostic(
                severity=ERROR, stage="cnf", check="cnf.zero-literal",
                message="planted",
            )],
        )
        assert repro_main(["--rob", "2", "--width", "1", "--strict"]) == 3
        err = capsys.readouterr().err
        assert "strict analysis failed" in err
        assert "cnf.zero-literal" in err
