"""Independent polarity re-derivation vs. the production classifier."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import ProcessorConfig
from repro.analysis import (
    ERROR,
    analyze_config,
    audit_diversity,
    cross_check_polarity,
    derive_polarity,
)
from repro.encode.eij import encode_equalities
from repro.eufm import (
    and_,
    bvar,
    classify,
    eq,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
)
from repro.eufm.polarity import PolarityInfo
from repro.eufm.traversal import term_variables


def errors(diagnostics):
    return [d for d in diagnostics if d.severity == ERROR]


class TestDerivePolarity:
    def test_positive_equation_not_general(self):
        info = derive_polarity(eq(tvar("x"), tvar("y")))
        assert not info.general_equations
        assert not info.g_vars

    def test_negated_equation_general(self):
        info = derive_polarity(not_(eq(tvar("x"), tvar("y"))))
        assert len(info.general_equations) == 1
        assert {v.name for v in info.g_vars} == {"x", "y"}

    def test_term_ite_guard_general_and_branch_closure(self):
        guard = eq(tvar("a"), tvar("b"))
        term = ite_term(guard, tvar("t"), tvar("e"))
        info = derive_polarity(not_(eq(term, tvar("z"))))
        assert guard in info.general_equations
        # Sides of the general equation close through the ITE branches.
        assert {v.name for v in info.g_vars} >= {"a", "b", "t", "e", "z"}

    def test_uf_symbol_closure(self):
        f1 = uf("f", [tvar("x")])
        f2 = uf("f", [tvar("y")])
        phi = and_(not_(eq(f1, tvar("z"))), eq(f2, tvar("w")))
        info = derive_polarity(phi)
        assert "f" in info.g_symbols
        assert f2 in info.g_terms

    def test_rejects_memory_operations(self):
        phi = eq(read(tvar("m"), tvar("a")), tvar("d"))
        with pytest.raises(TypeError):
            derive_polarity(phi)


class TestCrossCheck:
    def test_agreement_is_silent(self):
        phi = or_(
            not_(eq(tvar("x"), tvar("y"))),
            eq(uf("f", [tvar("x")]), tvar("z")),
        )
        assert cross_check_polarity(phi, classify(phi)) == []

    def test_general_equation_treated_as_positive_is_error(self):
        phi = not_(eq(tvar("x"), tvar("y")))
        info = classify(phi)
        corrupted = PolarityInfo(
            polarity=info.polarity,
            general_equations=set(),  # pretend nothing is general
            g_vars=set(),
            g_symbols=set(),
            g_terms=set(),
        )
        findings = cross_check_polarity(phi, corrupted)
        checks = {d.check for d in errors(findings)}
        assert "polarity.general-equation-treated-as-positive" in checks
        assert "polarity.p-var-in-general-position" in checks

    def test_p_symbol_in_general_position_is_error(self):
        phi = not_(eq(uf("f", [tvar("x")]), tvar("z")))
        info = classify(phi)
        corrupted = PolarityInfo(
            polarity=info.polarity,
            general_equations=info.general_equations,
            g_vars=info.g_vars,
            g_symbols=set(),  # drop the symbol classification
            g_terms=info.g_terms,
        )
        checks = {d.check for d in errors(cross_check_polarity(phi, corrupted))}
        assert "polarity.p-symbol-in-general-position" in checks

    def test_over_generalization_is_only_a_warning(self):
        phi = eq(tvar("x"), tvar("y"))
        info = classify(phi)
        inflated = PolarityInfo(
            polarity=info.polarity,
            general_equations=set(info.general_equations),
            g_vars={tvar("x")},  # general without a general use
            g_symbols={"ghost"},
            g_terms=set(info.g_terms),
        )
        findings = cross_check_polarity(phi, inflated)
        assert findings and not errors(findings)
        assert {d.check for d in findings} == {
            "polarity.var-generalized-unnecessarily",
            "polarity.symbol-generalized-unnecessarily",
        }


class TestDiversityAudit:
    def _empty_info(self):
        return PolarityInfo(
            polarity={}, general_equations=set(), g_vars=set(),
            g_symbols=set(), g_terms=set(),
        )

    def test_clean_encoding_is_clean(self):
        phi = and_(not_(eq(tvar("x"), tvar("y"))), eq(tvar("u"), tvar("v")))
        info = classify(phi)
        eij = encode_equalities(phi, info.g_vars,
                                known_vars=set(term_variables(phi)))
        independent = derive_polarity(phi)
        findings = audit_diversity(
            eij, info,
            independent_g_vars=independent.g_vars,
            known_vars=set(term_variables(phi)),
        )
        assert not errors(findings)
        assert findings[-1].check == "eij.audit-clean"

    def test_unjustified_diversity_is_error(self):
        # The encoder is (wrongly) told both variables are positive, but
        # the independent derivation knows they are general.
        phi = not_(eq(tvar("x"), tvar("y")))
        eij = encode_equalities(phi, set())
        assert eij.diverse_pairs
        findings = audit_diversity(
            eij, self._empty_info(),
            independent_g_vars=derive_polarity(phi).g_vars,
        )
        checks = {d.check for d in errors(findings)}
        assert "eij.diversity-not-justified" in checks

    def test_unknown_variable_is_error(self):
        phi = not_(eq(tvar("x"), tvar("y")))
        info = classify(phi)
        eij = encode_equalities(phi, info.g_vars)
        findings = audit_diversity(
            eij, info, known_vars={tvar("x")},  # y was never classified
        )
        checks = {d.check for d in errors(findings)}
        assert "eij.variable-unknown-to-classifier" in checks

    def test_eij_over_p_var_is_warning(self):
        phi = not_(eq(tvar("x"), tvar("y")))
        info = classify(phi)
        eij = encode_equalities(phi, info.g_vars)
        assert eij.eij_vars
        findings = audit_diversity(eij, self._empty_info())
        assert not errors(findings)
        assert {d.check for d in findings} == {"eij.eij-over-p-var"}


# ---------------------------------------------------------------------------
# Property: the two classifiers agree on randomly generated DAGs
# ---------------------------------------------------------------------------

_terms = st.deferred(lambda: st.one_of(
    st.sampled_from(("x", "y", "z", "w")).map(tvar),
    st.builds(
        lambda symbol, args: uf(symbol, list(args)),
        st.sampled_from(("f", "g")),
        st.lists(_terms, min_size=1, max_size=2),
    ),
    st.builds(ite_term, st.deferred(lambda: _formulas), _terms, _terms),
))

_formulas = st.deferred(lambda: st.one_of(
    st.sampled_from(("p", "q")).map(bvar),
    st.builds(eq, _terms, _terms),
    st.builds(not_, _formulas),
    st.builds(and_, _formulas, _formulas),
    st.builds(or_, _formulas, _formulas),
    st.builds(ite_formula, _formulas, _formulas, _formulas),
))


class TestAgreementProperty:
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(phi=_formulas)
    def test_cross_check_never_finds_unsoundness(self, phi):
        info = classify(phi)
        findings = cross_check_polarity(phi, info)
        assert not errors(findings), [d.render() for d in findings]

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(phi=_formulas)
    def test_general_equation_sets_coincide(self, phi):
        assert (derive_polarity(phi).general_equations
                == classify(phi).general_equations)


class TestPipelineFormulas:
    @pytest.mark.parametrize("method", ["rewriting", "positive_equality"])
    def test_processor_configs_are_clean(self, method):
        findings = analyze_config(ProcessorConfig(2, 1), method=method)
        assert not errors(findings), [d.render() for d in findings]
