"""DAG hygiene: hash-consing, stage residue, intern reachability."""

from repro.analysis import (
    ERROR,
    audit_dag,
    audit_hash_consing,
    audit_memory_free,
    audit_propositional,
)
from repro.eufm import and_, bvar, eq, ite_formula, not_, or_, read, tvar, write
from repro.eufm.ast import TermVar


def errors(diagnostics):
    return [d for d in diagnostics if d.severity == ERROR]


def checks(diagnostics):
    return {d.check for d in diagnostics}


def _rogue_tvar(name, uid=10 ** 9):
    """A structurally valid TermVar built behind intern_node's back."""
    node = object.__new__(TermVar)
    node._init(name)
    node.uid = uid
    return node


class TestHashConsing:
    def test_builder_output_is_clean(self):
        phi = and_(
            eq(tvar("x"), tvar("y")),
            or_(not_(eq(tvar("x"), tvar("y"))), bvar("p")),
        )
        assert audit_hash_consing(phi) == []

    def test_rogue_duplicate_is_error(self):
        legit = tvar("dup")
        rogue = _rogue_tvar("dup")
        assert rogue is not legit
        phi = and_(eq(legit, tvar("z")), eq(rogue, tvar("z")))
        findings = audit_hash_consing(phi)
        assert "dag.non-hash-consed-duplicate" in checks(errors(findings))

    def test_duplicate_detected_across_roots(self):
        legit = tvar("dup2")
        rogue = _rogue_tvar("dup2", uid=10 ** 9 + 1)
        findings = audit_hash_consing(
            eq(legit, tvar("a")), eq(rogue, tvar("b"))
        )
        assert "dag.non-hash-consed-duplicate" in checks(errors(findings))


class TestStageResidue:
    def test_memory_free_formula_passes(self):
        assert audit_memory_free(eq(tvar("x"), tvar("y"))) == []

    def test_surviving_read_write_is_error(self):
        m = tvar("m")
        phi = eq(read(write(m, tvar("a"), tvar("d")), tvar("b")), tvar("v"))
        findings = audit_memory_free(phi, stage="encode")
        assert findings
        assert all(d.check == "dag.memory-op-after-elimination"
                   for d in findings)
        assert all(d.stage == "encode" for d in findings)

    def test_propositional_formula_passes(self):
        phi = ite_formula(bvar("p"), and_(bvar("q"), bvar("r")),
                          not_(bvar("q")))
        assert audit_propositional(phi) == []

    def test_equation_residue_is_error(self):
        phi = and_(bvar("p"), eq(tvar("x"), tvar("y")))
        findings = audit_propositional(phi)
        assert "dag.non-propositional-residue" in checks(errors(findings))
        assert any("equation escaped" in d.message for d in findings)


class TestAuditDag:
    def test_clean_report_has_single_info(self):
        phi = and_(bvar("p"), not_(bvar("q")))
        findings = audit_dag(phi)
        assert not errors(findings)
        assert any(d.check in ("dag.audit-clean", "dag.interned-unreachable")
                   for d in findings)
