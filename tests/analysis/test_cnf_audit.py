"""CNF clause-hygiene and e_ij/transitivity completeness audits."""

from repro.analysis import ERROR, audit_cnf, audit_eij_transitivity
from repro.encode.eij import EijResult, encode_equalities
from repro.encode.evc import encode_validity
from repro.encode.transitivity import (
    TransitivityResult,
    transitivity_constraints,
)
from repro.eufm import and_, bvar, classify, eq, not_, or_, tvar
from repro.sat.tseitin import cnf_for_satisfiability, tseitin


def errors(diagnostics):
    return [d for d in diagnostics if d.severity == ERROR]


def checks(diagnostics):
    return {d.check for d in diagnostics}


def _sample():
    p, q, r = bvar("p"), bvar("q"), bvar("r")
    return cnf_for_satisfiability(or_(and_(p, q), and_(not_(p), r)))


class TestCnfAudit:
    def test_clean_translation_is_clean(self):
        findings = audit_cnf(_sample())
        assert checks(findings) == {"cnf.audit-clean"}

    def test_duplicate_clause_is_flagged(self):
        result = _sample()
        result.cnf.clauses.append(result.cnf.clauses[0])
        assert "cnf.duplicate-clause" in checks(audit_cnf(result))

    def test_tautological_clause_is_flagged(self):
        result = _sample()
        result.cnf.clauses.append((1, -1))
        assert "cnf.tautological-clause" in checks(audit_cnf(result))

    def test_unallocated_variable_is_error(self):
        result = _sample()
        result.cnf.clauses.append((result.cnf.num_vars + 7,))
        findings = audit_cnf(result)
        assert "cnf.unallocated-variable" in checks(errors(findings))

    def test_missing_root_unit_is_error(self):
        # Raw tseitin() emits definition clauses only; used for
        # satisfiability without asserting the root, it constrains nothing.
        result = tseitin(or_(bvar("p"), bvar("q")))
        findings = audit_cnf(result, expect_root_unit=True)
        assert "cnf.root-not-asserted" in checks(errors(findings))

    def test_var_map_name_mismatch_is_error(self):
        result = _sample()
        index = next(iter(result.var_map.values()))
        result.cnf.names[index] = "imposter"
        assert "cnf.var-map-name-mismatch" in checks(audit_cnf(result))

    def test_named_variable_missing_from_var_map_is_warning(self):
        result = _sample()
        result.cnf.new_var("ghost")
        findings = audit_cnf(result)
        assert "cnf.named-var-not-in-var-map" in checks(findings)
        assert not errors(findings)

    def test_solver_handoff_is_dedupe_clean_after_tseitin(self):
        # Satellite check: after Cnf.dedupe() in cnf_for_satisfiability,
        # the auditor must find zero duplicate or tautological clauses.
        findings = audit_cnf(_sample())
        assert "cnf.duplicate-clause" not in checks(findings)
        assert "cnf.tautological-clause" not in checks(findings)

    def test_pipeline_encoding_is_dedupe_clean(self):
        phi = or_(not_(eq(tvar("x"), tvar("y"))),
                  eq(tvar("y"), tvar("z")))
        encoded = encode_validity(phi, memory_mode="precise")
        assert encoded.tseitin is not None
        findings = audit_cnf(encoded.tseitin)
        assert "cnf.duplicate-clause" not in checks(findings)
        assert "cnf.tautological-clause" not in checks(findings)


def _triangle_encoding():
    x, y, z = tvar("tx"), tvar("ty"), tvar("tz")
    phi = not_(and_(eq(x, y), eq(y, z), eq(x, z)))
    info = classify(phi)
    eij = encode_equalities(phi, info.g_vars)
    return eij, transitivity_constraints(eij.eij_vars)


class TestEijTransitivityAudit:
    def test_complete_closure_is_clean(self):
        eij, trans = _triangle_encoding()
        assert trans.triangles
        findings = audit_eij_transitivity(eij, trans)
        assert checks(findings) == {"eij.transitivity-clean"}

    def test_missing_triangle_is_error(self):
        eij, trans = _triangle_encoding()
        trans.triangles.pop()
        findings = audit_eij_transitivity(eij, trans)
        assert "eij.missing-transitivity-triangle" in checks(errors(findings))

    def test_misnamed_eij_variable_is_error(self):
        x, y = tvar("tx"), tvar("ty")
        eij = EijResult(
            formula=bvar("whatever"),
            eij_vars={frozenset((x, y)): bvar("not-the-convention")},
        )
        findings = audit_eij_transitivity(eij, None)
        assert "eij.misnamed-variable" in checks(errors(findings))

    def test_triangle_over_unknown_edge_is_error(self):
        x, y, z = tvar("tx"), tvar("ty"), tvar("tz")
        eij = EijResult(
            formula=bvar("whatever"),
            eij_vars={frozenset((x, y)): bvar("eij!tx!ty")},
        )
        trans = TransitivityResult(triangles=[(x, y, z)])
        findings = audit_eij_transitivity(eij, trans)
        assert "eij.triangle-over-unknown-edge" in checks(errors(findings))
