"""Tests for term-level counterexample reconstruction and replay."""

import pytest

from repro.encode import check_validity
from repro.eufm import and_, bvar, eq, implies, not_, or_, tvar, uf, up
from repro.witness import reconstruct_counterexample, replay_assignment


def _falsify(phi, **kwargs):
    """Check validity, assert invalid, return (encoded, counterexample)."""
    result = check_validity(phi, **kwargs)
    assert not result.valid
    assert result.counterexample is not None
    return result.encoded, result.counterexample


class TestPropositional:
    def test_replay_is_false(self):
        encoded, cex = _falsify(implies(bvar("p"), bvar("q")))
        assert replay_assignment(encoded, cex) is False

    def test_reconstruction_shape(self):
        encoded, cex = _falsify(implies(bvar("p"), bvar("q")))
        rebuilt = reconstruct_counterexample(encoded, cex)
        assert rebuilt.replay_value is False
        assert rebuilt.bool_values["p"] is True
        assert rebuilt.bool_values["q"] is False
        assert rebuilt.uf_tables == {}
        assert rebuilt.replayed_false

    def test_minimization_drops_dont_cares(self):
        # not(p) v not(q) v r: falsified only by p=q=True, r=False; the
        # CNF also mentions an irrelevant variable s on a satisfied
        # branch which minimization may discard but never needs.
        phi = or_(not_(bvar("p")), not_(bvar("q")), bvar("r"),
                  and_(bvar("s"), not_(bvar("s"))))
        encoded, cex = _falsify(phi)
        rebuilt = reconstruct_counterexample(encoded, cex)
        assert rebuilt.replayed_false
        assert rebuilt.minimized_size <= rebuilt.raw_size
        assert set(rebuilt.minimized) <= {"p", "q", "r", "s"}
        assert rebuilt.minimized["p"] is True
        assert rebuilt.minimized["q"] is True

    def test_minimize_false_keeps_minimized_empty(self):
        encoded, cex = _falsify(implies(bvar("p"), bvar("q")))
        rebuilt = reconstruct_counterexample(encoded, cex, minimize=False)
        assert rebuilt.minimized == {}
        assert rebuilt.minimized_replay_value is None
        assert not rebuilt.replayed_false


class TestTermLevel:
    def test_congruence_counterexample(self):
        # f(x) = f(y) -> x = y is invalid; the reconstruction must merge
        # the two fresh f-application variables while keeping the
        # p-variables x and y apart.
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        encoded, cex = _falsify(phi)
        rebuilt = reconstruct_counterexample(encoded, cex)
        assert rebuilt.replayed_false
        assert rebuilt.term_values["x"] != rebuilt.term_values["y"]
        merged = [group for group in rebuilt.classes if len(group) > 1]
        assert len(merged) == 1
        assert all(name.startswith("vc!f!") for name in merged[0])
        # The two table rows for f land on the same result value.
        results = {value for _, value in rebuilt.uf_tables["f"]}
        assert len(results) == 1

    def test_distinct_values_per_class(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        encoded, cex = _falsify(phi)
        rebuilt = reconstruct_counterexample(encoded, cex)
        roots = {min(group) for group in rebuilt.classes}
        values = {rebuilt.term_values[root] for root in roots}
        assert len(values) == len(rebuilt.classes)
        assert rebuilt.domain_size == len(rebuilt.classes)

    def test_predicate_counterexample(self):
        # P(x) -> P(y) is invalid; the synthesized UP table must give
        # P(x) = True, P(y) = False.
        x, y = tvar("x"), tvar("y")
        phi = implies(up("P", [x]), up("P", [y]))
        encoded, cex = _falsify(phi)
        rebuilt = reconstruct_counterexample(encoded, cex)
        assert rebuilt.replayed_false
        table = dict(rebuilt.up_tables["P"])
        assert table[(rebuilt.term_values["x"],)] is True
        assert table[(rebuilt.term_values["y"],)] is False

    def test_disagreements_name_the_broken_equation(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        encoded, cex = _falsify(phi)
        rebuilt = reconstruct_counterexample(encoded, cex)
        assert any("(= x y)" in text for text in rebuilt.disagreements)

    def test_replay_rejects_wrong_model(self):
        # Flipping the model of p must make the formula true again.
        encoded, cex = _falsify(implies(bvar("p"), bvar("q")))
        wrong = dict(cex)
        wrong["p"] = False
        assert replay_assignment(encoded, wrong) is True


class TestRendering:
    def _rebuilt(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        encoded, cex = _falsify(phi)
        return reconstruct_counterexample(encoded, cex)

    def test_render_mentions_tables_and_classes(self):
        text = self._rebuilt().render()
        assert "equal term classes" in text
        assert "UF f:" in text
        assert "replays to False" in text

    def test_summary_dict_is_json_safe(self):
        import json

        summary = self._rebuilt().summary_dict()
        assert summary["replay_value"] is False
        assert summary["minimized_size"] <= summary["raw_size"]
        json.dumps(summary)
