"""Tests for ``python -m repro witness`` and the single-run --certify flag."""

import json

import pytest

from repro.witness.cli import main as witness_main


ROB4 = ["--rob", "4", "--width", "2"]


class TestCertifyCommand:
    def test_correct_design_exits_zero(self, capsys):
        assert witness_main(["certify", *ROB4]) == 0
        out = capsys.readouterr().out
        assert "unsat-proof" in out
        assert "VALIDATED" in out

    def test_proof_and_cnf_files_round_trip(self, tmp_path, capsys):
        proof_path = tmp_path / "proof.drup"
        cnf_path = tmp_path / "formula.cnf"
        code = witness_main([
            "certify", *ROB4,
            "--proof-out", str(proof_path),
            "--cnf-out", str(cnf_path),
        ])
        assert code == 0
        assert proof_path.read_text().strip().endswith("0")
        assert cnf_path.read_text().startswith("c ")
        capsys.readouterr()
        assert witness_main([
            "check", "--cnf", str(cnf_path), "--proof", str(proof_path)
        ]) == 0
        assert "VALIDATED" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert witness_main(["certify", *ROB4, "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["kind"] == "unsat-proof"
        assert payload["validated"] is True

    def test_buggy_design_with_validated_witness_exits_zero(self, capsys):
        code = witness_main([
            "certify", *ROB4, "--bug", "pc-single-increment"
        ])
        assert code == 0
        assert "counterexample" in capsys.readouterr().out

    def test_rewrite_flag_exits_one(self, capsys):
        # The witness exists but nothing propositional validates it.
        code = witness_main([
            "certify", *ROB4, "--bug", "forward-wrong-source", "--entry", "2"
        ])
        assert code == 1
        assert "rewrite-flag" in capsys.readouterr().out

    def test_proof_out_without_proof_exits_three(self, tmp_path, capsys):
        code = witness_main([
            "certify", *ROB4,
            "--bug", "forward-wrong-source", "--entry", "2",
            "--proof-out", str(tmp_path / "proof.drup"),
        ])
        assert code == 3
        assert not (tmp_path / "proof.drup").exists()


class TestExplainCommand:
    def test_explains_seeded_bug(self, capsys):
        code = witness_main([
            "explain", *ROB4, "--bug", "pc-single-increment"
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimized assignment" in out
        assert "replays to False" in out

    def test_correct_design_has_nothing_to_explain(self, capsys):
        assert witness_main(["explain", *ROB4]) == 3
        assert "no term-level counterexample" in capsys.readouterr().err


class TestCheckCommand:
    def _artifacts(self, tmp_path, capsys):
        proof_path = tmp_path / "proof.drup"
        cnf_path = tmp_path / "formula.cnf"
        assert witness_main([
            "certify", *ROB4,
            "--proof-out", str(proof_path),
            "--cnf-out", str(cnf_path),
        ]) == 0
        capsys.readouterr()
        return cnf_path, proof_path

    def test_tampered_proof_rejected(self, tmp_path, capsys):
        cnf_path, proof_path = self._artifacts(tmp_path, capsys)
        lines = proof_path.read_text().splitlines()
        additions = [l for l in lines if l != "0" and not l.startswith("d ")]
        lines.remove(additions[0])
        proof_path.write_text("\n".join(lines) + "\n")
        code = witness_main([
            "check", "--cnf", str(cnf_path), "--proof", str(proof_path)
        ])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_unparsable_proof_exits_three(self, tmp_path, capsys):
        cnf_path, proof_path = self._artifacts(tmp_path, capsys)
        proof_path.write_text("1 2\n")
        code = witness_main([
            "check", "--cnf", str(cnf_path), "--proof", str(proof_path)
        ])
        assert code == 3
        assert "witness error" in capsys.readouterr().err

    def test_missing_file_exits_three(self, tmp_path, capsys):
        code = witness_main([
            "check",
            "--cnf", str(tmp_path / "absent.cnf"),
            "--proof", str(tmp_path / "absent.drup"),
        ])
        assert code == 3


class TestMainDispatch:
    def test_witness_subcommand_dispatch(self, capsys):
        from repro.__main__ import main

        assert main(["witness", "certify", *ROB4]) == 0
        assert "unsat-proof" in capsys.readouterr().out

    def test_single_run_certify_flag(self, capsys):
        from repro.__main__ import main

        assert main([*ROB4, "--certify"]) == 0
        out = capsys.readouterr().out
        assert "witness [unsat-proof] VALIDATED" in out

    def test_single_run_certify_buggy_exits_one(self, capsys):
        from repro.__main__ import main

        code = main([*ROB4, "--bug", "pc-single-increment", "--certify"])
        assert code == 1
        assert "counterexample" in capsys.readouterr().out
