"""Witness round trips for the family-specific seeded bugs.

Every new bug kind must not just flip the verdict to BUG_FOUND — its
counterexample has to replay end to end through ``python -m repro
witness``: ``certify`` validates it propositionally and ``explain``
minimizes the assignment and re-evaluates the term-level formula to
False.  Configurations use ``positive_equality`` so the counterexample
is a genuine SAT assignment (under ``rewriting`` the branch families
also reach SAT via the fallback, but the memory families report a
rewrite-flag witness instead, which ``certify`` rejects by design).

``stale-load-forward`` never appears here: its smallest expressible
configuration already exhausts memory under the precise translation
(see EXPERIMENTS.md), so its round trip is covered by the rewrite-flag
path in the core tests.
"""

import json

import pytest

from repro.witness.cli import main as witness_main


BUG_CONFIGS = [
    pytest.param(
        ["--family", "branch", "--rob", "2", "--width", "1",
         "--retire-width", "2", "--bug", "wrong-path-retire",
         "--entry", "2"],
        id="wrong-path-retire",
    ),
    pytest.param(
        ["--family", "branch", "--rob", "2", "--width", "1",
         "--bug", "dropped-flush", "--entry", "2"],
        id="dropped-flush",
    ),
    pytest.param(
        ["--family", "mem", "--rob", "2", "--width", "1",
         "--retire-width", "2", "--bug", "store-order", "--entry", "2"],
        id="store-order",
    ),
]

PE = ["--method", "positive_equality"]


class TestFamilyBugRoundTrips:
    @pytest.mark.parametrize("config", BUG_CONFIGS)
    def test_certify_validates_the_counterexample(self, config, capsys):
        assert witness_main(["certify", *config, *PE]) == 0
        out = capsys.readouterr().out
        assert "counterexample" in out
        assert "VALIDATED" in out

    @pytest.mark.parametrize("config", BUG_CONFIGS)
    def test_explain_minimizes_and_replays(self, config, capsys):
        assert witness_main(["explain", *config, *PE]) == 0
        out = capsys.readouterr().out
        assert "minimized assignment" in out
        assert "replays to False" in out

    def test_certify_json_carries_the_family(self, capsys):
        code = witness_main([
            "certify", "--family", "branch", "--rob", "2", "--width", "1",
            "--bug", "dropped-flush", "--entry", "2", *PE, "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["kind"] == "counterexample"
        assert payload["validated"] is True


class TestFamilyCorrectDesigns:
    @pytest.mark.parametrize("family", ["branch", "mem", "mixed"])
    def test_certify_proves_under_rewriting(self, family, capsys):
        code = witness_main([
            "certify", "--family", family, "--rob", "2", "--width", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VALIDATED" in out

    def test_mem_rewrite_flag_exits_one(self, capsys):
        # Memory-family bugs caught by the rewriting engine itself carry
        # a rewrite-flag witness: real, but not propositionally
        # validatable, so certify refuses to bless it.
        code = witness_main([
            "certify", "--family", "mem", "--rob", "2", "--width", "1",
            "--retire-width", "2", "--bug", "store-order", "--entry", "2",
        ])
        assert code == 1
        assert "rewrite-flag" in capsys.readouterr().out
