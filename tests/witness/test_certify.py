"""End-to-end tests for ``verify(certify=True)`` and certify_result."""

import pytest

from repro.core import verify
from repro.errors import WitnessError
from repro.processor.bugs import Bug
from repro.processor.params import ProcessorConfig
from repro.witness import check_drup, certify_result


CONFIG = ProcessorConfig(n_rob=4, issue_width=2)


class TestCorrectDesign:
    def test_unsat_proof_witness_validates(self):
        result = verify(CONFIG, certify=True)
        assert result.correct
        witness = result.witness
        assert witness is not None
        assert witness.kind == "unsat-proof"
        assert witness.validated
        assert witness.proof is not None
        assert witness.proof.ends_with_empty_clause
        assert witness.check.ok
        assert witness.cnf_vars == result.validity.encoded.cnf.num_vars

    def test_proof_rechecks_independently(self):
        result = verify(CONFIG, certify=True)
        outcome = check_drup(
            result.validity.encoded.cnf, result.witness.proof
        )
        assert outcome.ok

    def test_proof_survives_text_round_trip(self):
        from repro.witness import DrupProof

        result = verify(CONFIG, certify=True)
        reparsed = DrupProof.from_text(result.witness.proof.to_text())
        assert reparsed.digest() == result.witness.proof.digest()
        assert check_drup(result.validity.encoded.cnf, reparsed).ok

    def test_without_certify_no_witness_and_no_proof(self):
        result = verify(CONFIG)
        assert result.witness is None
        assert result.validity.sat_result.proof is None

    def test_positive_equality_method_also_certifies(self):
        result = verify(
            ProcessorConfig(n_rob=2, issue_width=1),
            method="positive_equality",
            certify=True,
        )
        assert result.correct
        assert result.witness.kind in ("unsat-proof", "trivial")
        assert result.witness.validated


class TestBuggyDesign:
    def test_counterexample_witness_replays_and_shrinks(self):
        result = verify(
            CONFIG, bug=Bug("pc-single-increment"), certify=True
        )
        assert not result.correct
        witness = result.witness
        assert witness.kind == "counterexample"
        assert witness.validated
        cex = witness.counterexample
        assert cex.replayed_false
        # The acceptance bar: minimization must strictly shrink the raw
        # model for this seeded bug.
        assert cex.minimized_size < cex.raw_size
        assert cex.disagreements

    def test_rewrite_flag_witness_when_no_sat_artifact(self):
        result = verify(
            CONFIG, bug=Bug("forward-wrong-source", entry=2), certify=True
        )
        assert not result.correct
        witness = result.witness
        assert witness.kind == "rewrite-flag"
        assert not witness.validated
        assert "slice 2" in witness.detail

    def test_witness_digest_depends_on_kind(self):
        proved = verify(CONFIG, certify=True)
        buggy = verify(
            CONFIG, bug=Bug("pc-single-increment"), certify=True
        )
        assert proved.witness.digest() != buggy.witness.digest()


class TestCertifyResult:
    def test_uncertified_result_raises(self):
        result = verify(CONFIG)
        with pytest.raises(WitnessError):
            certify_result(result)

    def test_summary_dict_round_trips_as_json(self):
        import json

        for kwargs in ({}, {"bug": Bug("pc-single-increment")}):
            result = verify(CONFIG, certify=True, **kwargs)
            payload = json.loads(json.dumps(result.witness.summary_dict()))
            assert payload["kind"] == result.witness.kind
            assert payload["validated"] == result.witness.validated
            assert payload["digest"] == result.witness.digest()

    def test_witness_spans_recorded_in_trace(self):
        result = verify(CONFIG, certify=True, trace=True)
        names = {span.name for span in result.trace.children}
        assert "witness" in names
        witness_span = next(
            span for span in result.trace.children if span.name == "witness"
        )
        child_names = {span.name for span in witness_span.children}
        assert "witness.check_proof" in child_names
