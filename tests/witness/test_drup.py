"""Tests for the DRUP proof format and the independent RUP checker."""

import pytest

from repro.errors import WitnessError
from repro.sat import Cnf, solve_cnf
from repro.witness import DrupProof, DrupStep, check_drup


def _cnf(num_vars, clauses):
    cnf = Cnf(num_vars=num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def _proof(*steps):
    return DrupProof(
        steps=tuple(
            DrupStep(delete=(op == "d"), literals=tuple(lits))
            for op, lits in steps
        )
    )


class TestFormat:
    def test_text_round_trip(self):
        proof = _proof(("a", [1, -2]), ("d", [3]), ("a", []))
        text = proof.to_text()
        assert DrupProof.from_text(text).to_text() == text

    def test_text_layout(self):
        proof = _proof(("a", [1, -2]), ("d", [-3, 4]), ("a", []))
        lines = proof.to_text().splitlines()
        assert lines == ["1 -2 0", "d -3 4 0", "0"]

    def test_parser_skips_comments_and_blanks(self):
        text = "c a comment\n\n1 2 0\nc more\n0\n"
        proof = DrupProof.from_text(text)
        assert len(proof.steps) == 2
        assert proof.ends_with_empty_clause

    def test_parser_rejects_unterminated_line(self):
        with pytest.raises(WitnessError):
            DrupProof.from_text("1 2\n")

    def test_parser_rejects_interior_zero(self):
        with pytest.raises(WitnessError):
            DrupProof.from_text("1 0 2 0\n")

    def test_parser_rejects_garbage(self):
        with pytest.raises(WitnessError):
            DrupProof.from_text("1 banana 0\n")

    def test_digest_is_stable_and_content_sensitive(self):
        first = _proof(("a", [1]), ("a", []))
        second = _proof(("a", [1]), ("a", []))
        third = _proof(("a", [2]), ("a", []))
        assert first.digest() == second.digest()
        assert first.digest() != third.digest()

    def test_from_solver_steps_rejects_unknown_op(self):
        with pytest.raises(WitnessError):
            DrupProof.from_solver_steps([("x", (1,))])

    def test_counts(self):
        proof = _proof(("a", [1]), ("d", [2]), ("a", []))
        assert proof.additions == 2
        assert proof.deletions == 1


class TestChecker:
    def test_accepts_hand_built_proof(self):
        # 1 -> 2, 2 -> 3, 1, -3: classic unit chain.
        cnf = _cnf(3, [[1], [-1, 2], [-2, 3], [-3]])
        proof = _proof(("a", []))
        outcome = check_drup(cnf, proof)
        assert outcome.ok
        assert outcome.steps_checked == 1

    def test_accepts_resolution_step(self):
        # (1 v 2) and (-1 v 2) make [2] RUP; with [-2] the empty clause.
        cnf = _cnf(2, [[1, 2], [-1, 2], [-2]])
        proof = _proof(("a", [2]), ("a", []))
        assert check_drup(cnf, proof).ok

    def test_rejects_non_rup_addition(self):
        cnf = _cnf(2, [[1, 2]])
        proof = _proof(("a", [1]), ("a", []))
        outcome = check_drup(cnf, proof)
        assert not outcome.ok
        assert "step 1" in outcome.detail

    def test_rejects_proof_without_empty_clause(self):
        cnf = _cnf(2, [[1, 2], [-1, 2], [-2]])
        proof = _proof(("a", [2]))
        outcome = check_drup(cnf, proof)
        assert not outcome.ok
        assert "empty clause" in outcome.detail

    def test_rejects_deletion_of_absent_clause(self):
        cnf = _cnf(2, [[1, 2]])
        proof = _proof(("d", [1, -2]), ("a", []))
        outcome = check_drup(cnf, proof)
        assert not outcome.ok
        assert "deletion" in outcome.detail.lower()

    def test_deletion_matches_any_literal_order(self):
        # The solver's watch code permutes literals in place; deletions
        # must match the clause as a set.
        cnf = _cnf(3, [[1, 2, 3], [1], [-1]])
        proof = _proof(("d", [3, 1, 2]), ("a", []))
        assert check_drup(cnf, proof).ok

    def test_deleted_clause_no_longer_propagates(self):
        # After deleting [1], the empty clause is no longer RUP.
        cnf = _cnf(1, [[1], [-1]])
        proof = _proof(("d", [1]), ("a", []))
        outcome = check_drup(cnf, proof)
        assert not outcome.ok

    def test_steps_after_empty_clause_are_ignored(self):
        cnf = _cnf(1, [[1], [-1]])
        proof = _proof(("a", []), ("a", [1, -1]))
        outcome = check_drup(cnf, proof)
        assert outcome.ok
        assert outcome.steps_checked == 1

    def test_tautological_input_clause_is_harmless(self):
        cnf = _cnf(2, [[1, -1], [2], [-2]])
        assert check_drup(cnf, _proof(("a", []))).ok

    def test_duplicate_input_clauses_delete_one_at_a_time(self):
        cnf = _cnf(1, [[1], [1], [-1]])
        # Deleting one copy of [1] leaves the other; still unsat.
        proof = _proof(("d", [1]), ("a", []))
        assert check_drup(cnf, proof).ok

    def test_checker_is_independent_of_solver_simplification(self):
        # Clause [1, 1] is simplified by the solver at load; the checker
        # works on the raw CNF and must agree regardless.
        cnf = _cnf(2, [[1, 1], [-1], [2, 2]])
        assert check_drup(cnf, _proof(("a", []))).ok


class TestSolverIntegration:
    @pytest.mark.parametrize(
        "clauses",
        [
            [[1], [-1]],
            [[1, 2], [-1, 2], [1, -2], [-1, -2]],
            [[1, 2, 3], [-1, 2], [-2, 3], [-3], [1, -2, -3], [-1, -2]],
        ],
    )
    def test_solver_proofs_certify(self, clauses):
        num_vars = max(abs(lit) for clause in clauses for lit in clause)
        cnf = _cnf(num_vars, clauses)
        result = solve_cnf(cnf, log_proof=True)
        assert result.is_unsat
        proof = DrupProof.from_solver_steps(result.proof)
        assert check_drup(cnf, proof).ok

    def test_pigeonhole_proof_certifies(self):
        def var(i, j):
            return 1 + i * 3 + j

        clauses = [[var(i, j) for j in range(3)] for i in range(4)]
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    clauses.append([-var(i1, j), -var(i2, j)])
        cnf = _cnf(12, clauses)
        result = solve_cnf(cnf, log_proof=True)
        assert result.is_unsat
        proof = DrupProof.from_solver_steps(result.proof)
        outcome = check_drup(cnf, proof)
        assert outcome.ok
        assert proof.additions >= 1

    def test_tampered_solver_proof_is_rejected(self):
        # Prepend a deletion of an input clause the derivation needs:
        # a correct checker must flag the proof, not shrug it off.
        cnf = _cnf(3, [[1], [-1, 2], [-2, 3], [-3]])
        result = solve_cnf(cnf, log_proof=True)
        assert result.is_unsat
        proof = DrupProof.from_solver_steps(result.proof)
        assert check_drup(cnf, proof).ok
        tampered = DrupProof(
            steps=(DrupStep(delete=True, literals=(1,)),)
            + tuple(proof.steps)
        )
        assert not check_drup(cnf, tampered).ok
