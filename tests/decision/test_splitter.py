"""Tests for the reference EUF decision procedure."""

import pytest

from repro.decision import (
    BudgetExceeded,
    DecisionBudget,
    is_satisfiable,
    is_valid,
    prove_equal_under,
)
from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bvar,
    eq,
    iff,
    implies,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    up,
)


class TestPropositional:
    def test_true_is_valid(self):
        assert is_valid(TRUE)

    def test_false_is_unsat(self):
        assert not is_satisfiable(FALSE)

    def test_variable_is_satisfiable_not_valid(self):
        p = bvar("p")
        assert is_satisfiable(p)
        assert not is_valid(p)

    def test_excluded_middle(self):
        p = bvar("p")
        assert is_valid(or_(p, not_(p)))

    def test_contradiction(self):
        p = bvar("p")
        assert not is_satisfiable(and_(p, not_(p)))

    def test_de_morgan(self):
        p, q = bvar("p"), bvar("q")
        assert is_valid(iff(not_(and_(p, q)), or_(not_(p), not_(q))))

    def test_ite_expansion(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        lhs = ite_formula(p, q, r)
        rhs = or_(and_(p, q), and_(not_(p), r))
        assert is_valid(iff(lhs, rhs))


class TestEqualityTheory:
    def test_reflexivity(self):
        assert is_valid(eq(tvar("x"), tvar("x")))

    def test_distinct_vars_satisfiable_both_ways(self):
        e = eq(tvar("x"), tvar("y"))
        assert is_satisfiable(e)
        assert is_satisfiable(not_(e))
        assert not is_valid(e)

    def test_transitivity(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = implies(and_(eq(x, y), eq(y, z)), eq(x, z))
        assert is_valid(phi)

    def test_transitivity_chain(self):
        names = [tvar(f"t{i}") for i in range(5)]
        premise = and_(*[eq(a, b) for a, b in zip(names, names[1:])])
        assert is_valid(implies(premise, eq(names[0], names[-1])))

    def test_negative_transitivity_instance(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        phi = and_(eq(x, y), eq(y, z), not_(eq(x, z)))
        assert not is_satisfiable(phi)


class TestCongruence:
    def test_function_congruence(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(x, y), eq(uf("f", [x]), uf("f", [y])))
        assert is_valid(phi)

    def test_congruence_not_injective(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y))
        assert not is_valid(phi)

    def test_binary_congruence(self):
        a, b, c, d = tvar("a"), tvar("b"), tvar("c"), tvar("d")
        phi = implies(
            and_(eq(a, c), eq(b, d)),
            eq(uf("g", [a, b]), uf("g", [c, d])),
        )
        assert is_valid(phi)

    def test_nested_congruence(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(
            eq(x, y),
            eq(uf("f", [uf("g", [x])]), uf("f", [uf("g", [y])])),
        )
        assert is_valid(phi)

    def test_congruence_through_folded_ite(self):
        """ITE folding creates new applications; congruence must cover them."""
        p = bvar("p")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        app = uf("f", [ite_term(p, x, y)])
        phi = implies(and_(p, eq(x, z)), eq(app, uf("f", [z])))
        assert is_valid(phi)

    def test_predicate_congruence(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(and_(eq(x, y), up("pr", [x])), up("pr", [y]))
        assert is_valid(phi)

    def test_predicate_free_otherwise(self):
        x, y = tvar("x"), tvar("y")
        phi = implies(up("pr", [x]), up("pr", [y]))
        assert not is_valid(phi)


class TestIteTheory:
    def test_ite_selects_branch(self):
        p = bvar("p")
        x, y = tvar("x"), tvar("y")
        phi = implies(p, eq(ite_term(p, x, y), x))
        assert is_valid(phi)

    def test_ite_range(self):
        p = bvar("p")
        x, y = tvar("x"), tvar("y")
        node = ite_term(p, x, y)
        phi = or_(eq(node, x), eq(node, y))
        assert is_valid(phi)

    def test_equation_guard_drives_ite(self):
        a, b = tvar("a"), tvar("b")
        x, y = tvar("x"), tvar("y")
        node = ite_term(eq(a, b), x, y)
        phi = implies(eq(a, b), eq(node, x))
        assert is_valid(phi)

    def test_forwarding_shape(self):
        """The paper's forwarding-vs-register-file read shape."""
        dest, src = tvar("Dest"), tvar("Src")
        result, rf_data = tvar("Result"), tvar("rf_data")
        forwarded = ite_term(eq(dest, src), result, rf_data)
        spec_read = ite_term(eq(dest, src), result, rf_data)
        assert is_valid(eq(forwarded, spec_read))


class TestProveEqualUnder:
    def test_equal_under_context(self):
        x, y = tvar("x"), tvar("y")
        assert prove_equal_under(uf("f", [x]), uf("f", [y]), eq(x, y))

    def test_not_equal_without_context(self):
        x, y = tvar("x"), tvar("y")
        assert not prove_equal_under(uf("f", [x]), uf("f", [y]), TRUE)

    def test_false_context_proves_anything(self):
        assert prove_equal_under(tvar("x"), tvar("y"), FALSE)


class TestBudget:
    def test_budget_exceeded_raises(self):
        # A formula with many independent atoms forces many splits.
        parts = [
            or_(eq(tvar(f"a{i}"), tvar(f"b{i}")), bvar(f"p{i}")) for i in range(12)
        ]
        phi = and_(*parts)
        with pytest.raises(BudgetExceeded):
            is_satisfiable(not_(phi), DecisionBudget(max_splits=3))

    def test_memory_rejected(self):
        phi = eq(read(tvar("m"), tvar("a")), tvar("d"))
        with pytest.raises(TypeError):
            is_valid(phi)
