"""Unit tests for the congruence-closure assumption environment."""

import pytest

from repro.decision import Env
from repro.eufm import bvar, eq, tvar, uf, up


def _env(*apps):
    return Env(list(apps))


class TestUnionFind:
    def test_fresh_terms_are_their_own_representatives(self):
        env = _env()
        assert env.find(tvar("x")) is tvar("x")

    def test_assume_equality_merges(self):
        env = _env().assume(eq(tvar("x"), tvar("y")), True)
        assert env is not None
        assert env.congruent(tvar("x"), tvar("y"))

    def test_assume_does_not_mutate_original(self):
        env = _env()
        extended = env.assume(eq(tvar("x"), tvar("y")), True)
        assert extended is not None
        assert not env.congruent(tvar("x"), tvar("y"))

    def test_transitive_merge(self):
        env = _env()
        env = env.assume(eq(tvar("x"), tvar("y")), True)
        env = env.assume(eq(tvar("y"), tvar("z")), True)
        assert env.congruent(tvar("x"), tvar("z"))

    def test_disequality_tracked(self):
        env = _env().assume(eq(tvar("x"), tvar("y")), False)
        assert env is not None
        assert env.known_distinct(tvar("x"), tvar("y"))
        assert not env.known_distinct(tvar("x"), tvar("z"))

    def test_conflicting_assumptions_rejected(self):
        env = _env().assume(eq(tvar("x"), tvar("y")), True)
        assert env.assume(eq(tvar("x"), tvar("y")), False) is None

    def test_merge_violating_disequality_rejected(self):
        env = _env()
        env = env.assume(eq(tvar("x"), tvar("y")), False)
        env = env.assume(eq(tvar("y"), tvar("z")), True)
        assert env is not None
        assert env.assume(eq(tvar("x"), tvar("z")), True) is None

    def test_deep_chain_find_terminates(self):
        env = _env()
        names = [tvar(f"chain{i}") for i in range(50)]
        for a, b in zip(names, names[1:]):
            env = env.assume(eq(a, b), True)
            assert env is not None
        assert env.congruent(names[0], names[-1])


class TestCongruencePropagation:
    def test_merging_args_merges_applications(self):
        fx, fy = uf("f", [tvar("x")]), uf("f", [tvar("y")])
        env = _env(fx, fy).assume(eq(tvar("x"), tvar("y")), True)
        assert env is not None
        assert env.congruent(fx, fy)

    def test_propagation_is_transitive_through_nesting(self):
        gx, gy = uf("g", [tvar("x")]), uf("g", [tvar("y")])
        fgx, fgy = uf("f", [gx]), uf("f", [gy])
        env = _env(gx, gy, fgx, fgy).assume(eq(tvar("x"), tvar("y")), True)
        assert env is not None
        assert env.congruent(fgx, fgy)

    def test_congruence_contradicting_disequality_rejected(self):
        fx, fy = uf("f", [tvar("x")]), uf("f", [tvar("y")])
        env = _env(fx, fy).assume(eq(fx, fy), False)
        assert env is not None
        assert env.assume(eq(tvar("x"), tvar("y")), True) is None

    def test_universe_extends_on_assumption(self):
        """Applications first mentioned in an assumption join the universe."""
        fx, fy = uf("f", [tvar("x")]), uf("f", [tvar("y")])
        env = _env()  # empty universe
        env = env.assume(eq(fx, tvar("a")), True)
        env = env.assume(eq(fy, tvar("b")), True)
        env = env.assume(eq(tvar("x"), tvar("y")), True)
        assert env is not None
        assert env.congruent(tvar("a"), tvar("b"))


class TestBooleanAtoms:
    def test_bool_var_assignment(self):
        env = _env().assume(bvar("p"), True)
        assert env.query(bvar("p")) is True
        assert env.query(bvar("q")) is None

    def test_conflicting_bool_assignment_rejected(self):
        env = _env().assume(bvar("p"), True)
        assert env.assume(bvar("p"), False) is None

    def test_predicate_congruence_in_queries(self):
        env = _env()
        env = env.assume(up("pr", [tvar("x")]), True)
        env = env.assume(eq(tvar("x"), tvar("y")), True)
        assert env.query(up("pr", [tvar("y")])) is True

    def test_predicate_conflict_via_congruence(self):
        env = _env()
        env = env.assume(up("pr", [tvar("x")]), True)
        env = env.assume(up("pr", [tvar("y")]), False)
        assert env is not None
        assert env.assume(eq(tvar("x"), tvar("y")), True) is None

    def test_query_equation_three_valued(self):
        env = _env()
        assert env.query(eq(tvar("x"), tvar("y"))) is None
        env_eq = env.assume(eq(tvar("x"), tvar("y")), True)
        assert env_eq.query(eq(tvar("x"), tvar("y"))) is True
        env_ne = env.assume(eq(tvar("x"), tvar("y")), False)
        assert env_ne.query(eq(tvar("x"), tvar("y"))) is False
