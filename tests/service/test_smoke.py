"""End-to-end service smoke: a real ``python -m repro serve`` process.

Scenario (this is also what the CI service-smoke job runs):

1. start the server on an OS-assigned port;
2. three concurrent clients submit, one of them a duplicated
   configuration — exactly one content-addressed cache hit must be
   served, with correct verdicts everywhere;
3. a longer campaign is submitted and the server is ``kill -9``-ed
   mid-run;
4. a restarted server on the same data directory re-attaches the
   interrupted session from its journal and completes it.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def api(port, method, path, payload=None, timeout=30.0):
    """One JSON round-trip against the local server."""
    body = None
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


class Server:
    """A real `python -m repro serve` subprocess bound to a free port."""

    def __init__(self, data_dir, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", "0",
             "--data-dir", str(data_dir), *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        self.port = None
        self.lines = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.lines.append(line.rstrip())
            if line.startswith("ready http://"):
                self.port = int(line.rstrip().rsplit(":", 1)[1])
                break
        if self.port is None:
            self.kill()
            raise AssertionError(
                "server never became ready:\n" + "\n".join(self.lines)
            )
        # Keep draining stdout so the pipe can never fill up and stall
        # the server on a blocked write.
        self._drainer = threading.Thread(target=self._drain, daemon=True)
        self._drainer.start()

    def _drain(self):
        for line in self.proc.stdout:
            self.lines.append(line.rstrip())

    def kill(self):
        """SIGKILL — the crash the journal + cache must survive."""
        try:
            self.proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=30.0)

    def terminate(self):
        try:
            self.proc.terminate()
        except ProcessLookupError:
            pass
        try:
            self.proc.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            self.kill()


def poll_until_done(port, session_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    version = -1
    while time.monotonic() < deadline:
        status, payload = api(
            port, "GET",
            f"/v1/sessions/{session_id}?wait=2&version={version}",
        )
        assert status == 200, payload
        version = payload["version"]
        if payload["state"] in ("completed", "failed"):
            return payload
    raise AssertionError(f"session {session_id} never finished")


def test_service_smoke_concurrent_clients_and_kill9_resume(tmp_path):
    data_dir = tmp_path / "service-data"
    server = Server(data_dir)
    try:
        port = server.port

        # -- phase 1: three clients, one duplicated configuration ------
        outcomes = {}

        def client(name, payload):
            status, submitted = api(port, "POST", "/v1/sessions", payload)
            assert status == 200, submitted
            final = poll_until_done(port, submitted["session"])
            _status, result = api(
                port, "GET", f"/v1/sessions/{submitted['session']}/result"
            )
            outcomes[name] = (submitted, final, result)

        first = threading.Thread(
            target=client,
            args=("one", {"grid": "2x1,3x1", "client": "one"}),
        )
        third = threading.Thread(
            target=client, args=("three", {"grid": "4x1", "client": "three"})
        )
        first.start()
        third.start()
        first.join(120.0)
        third.join(120.0)
        assert set(outcomes) == {"one", "three"}
        # Client two duplicates a configuration client one already
        # proved: it must be answered entirely from the cache.
        client("two", {"grid": "2x1", "client": "two"})

        for name, (_submitted, final, result) in outcomes.items():
            assert final["state"] == "completed", (name, final)
            assert {r["status"] for r in result["results"].values()} == \
                {"PROVED"}, name
        submitted_two = outcomes["two"][0]
        assert submitted_two["complete"] is True
        assert [job["state"]
                for job in submitted_two["job_states"].values()] == \
            ["cached"]

        _status, metrics = api(port, "GET", "/metrics")
        counters = metrics["metrics"]
        assert counters.get("service.cache.hits", 0) == 1
        assert counters.get("service.cache.stored", 0) == 3

        # -- phase 2: kill -9 mid-campaign, restart, resume ------------
        grid = ",".join(
            f"{n_rob}x{width}"
            for n_rob in (5, 6, 7, 8, 9, 10, 11, 12)
            for width in (1, 2)
        )
        status, submitted = api(
            port, "POST", "/v1/sessions",
            {"grid": grid, "client": "kill9"},
        )
        assert status == 200, submitted
        session_id = submitted["session"]
        total = submitted["jobs"]["total"]
        assert total == 16

        # Wait for a mid-run state: some jobs done, some not.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _status, payload = api(
                port, "GET", f"/v1/sessions/{session_id}"
            )
            done = payload["jobs"].get("done", 0)
            if payload["state"] in ("completed", "failed") or done >= 1:
                break
            time.sleep(0.02)
        server.kill()

        journal = data_dir / "sessions" / session_id / "journal.jsonl"
        assert journal.exists()

        # -- restart on the same data dir ------------------------------
        server2 = Server(data_dir)
        try:
            final = poll_until_done(server2.port, session_id)
            assert final["state"] == "completed"
            assert final["jobs"].get("done", 0) + \
                final["jobs"].get("cached", 0) == total
            _status, result = api(
                server2.port, "GET", f"/v1/sessions/{session_id}/result"
            )
            assert len(result["results"]) == total
            assert {r["status"] for r in result["results"].values()} == \
                {"PROVED"}
            # Phase-1 sessions are still queryable after the crash.
            for name, (submitted_before, _final, _result) in \
                    outcomes.items():
                _status, revived = api(
                    server2.port, "GET",
                    f"/v1/sessions/{submitted_before['session']}",
                )
                assert revived["state"] == "completed", name
        finally:
            server2.terminate()
    finally:
        server.terminate()
