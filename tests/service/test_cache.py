"""Result-cache tests (repro.service.cache)."""

import json

import pytest

from repro.service.cache import CACHEABLE_STATES, CacheEntry, ResultCache

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


def _entry(key=KEY_A, status="PROVED"):
    return CacheEntry(
        key=key,
        result={"job_id": "rob4-w2", "status": status,
                "method": "rewriting", "attempts": 1},
        config={"n_rob": 4, "issue_width": 2, "retire_width": 2},
        options={"method": "rewriting", "criterion": "disjunction"},
        registry_version="5r-abcdefabcdef",
        repro_version="1.2.0",
        artifacts=["deadbeefdeadbeef"],
    )


class TestRoundtrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.put(_entry()) is True
        entry = cache.get(KEY_A)
        assert entry is not None
        assert entry.result["status"] == "PROVED"
        assert entry.config["n_rob"] == 4
        assert entry.artifacts == ["deadbeefdeadbeef"]
        assert entry.registry_version == "5r-abcdefabcdef"

    def test_miss_is_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get(KEY_B) is None

    def test_keys_and_len(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(_entry(KEY_A))
        cache.put(_entry(KEY_B, status="BUG_FOUND"))
        assert sorted(cache.keys()) == sorted([KEY_A, KEY_B])
        assert len(cache) == 2

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(_entry())
        newer = _entry()
        newer.result["attempts"] = 7
        cache.put(newer)
        assert cache.get(KEY_A).result["attempts"] == 7
        assert len(cache) == 1


class TestCacheability:
    @pytest.mark.parametrize("status", CACHEABLE_STATES)
    def test_definitive_outcomes_are_stored(self, tmp_path, status):
        cache = ResultCache(str(tmp_path))
        assert cache.put(_entry(status=status)) is True

    def test_inconclusive_is_refused(self, tmp_path):
        # INCONCLUSIVE means "the budget ran out" — a property of the
        # request, not the configuration; caching it would serve one
        # client's exhaustion as another client's verdict.
        cache = ResultCache(str(tmp_path))
        assert cache.put(_entry(status="INCONCLUSIVE")) is False
        assert cache.get(KEY_A) is None
        assert len(cache) == 0


class TestCorruptionTolerance:
    def test_torn_json_counts_as_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(_entry())
        path = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text(path.read_text()[:40])  # torn write
        assert cache.get(KEY_A) is None
        # And the key is not wedged: a re-put heals it.
        assert cache.put(_entry()) is True
        assert cache.get(KEY_A) is not None

    def test_key_mismatch_counts_as_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(_entry())
        path = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
        data = json.loads(path.read_text())
        data["key"] = KEY_B  # renamed/copied file: content disagrees
        path.write_text(json.dumps(data))
        assert cache.get(KEY_A) is None

    def test_non_object_document_counts_as_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(_entry())
        path = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text("[1, 2, 3]")
        assert cache.get(KEY_A) is None


class TestKeyValidation:
    @pytest.mark.parametrize("bad", ["", "xy", "ZZ" + "0" * 62,
                                     "../../etc/passwd"])
    def test_non_canonical_keys_are_rejected(self, tmp_path, bad):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.get(bad)
