"""HTTP transport tests (repro.service.app) over a real bound socket.

Each test stands up the asyncio server on an OS-assigned port, drives it
with a minimal HTTP/1.1 client on raw streams (the server speaks
one-request-per-connection, ``Connection: close``), and tears it down.
Verification is stubbed to keep the focus on the transport.
"""

import asyncio
import json
import threading

from repro.campaign import RetryPolicy
from repro.campaign.runner import DegradePolicy
from repro.core.results import VerificationResult
from repro.service.app import ServiceApp
from repro.service.sessions import SessionManager


class CountingVerify:
    def __init__(self, block=None):
        self.calls = []
        self.block = block

    def __call__(self, config, **kwargs):
        if self.block is not None:
            assert self.block.wait(30.0), "test gate never opened"
        self.calls.append((config.n_rob, config.issue_width))
        return VerificationResult(
            config=config, method=kwargs.get("method", "rewriting"),
            bug=None, correct=True, timings={"total": 0.0},
        )


def make_manager(tmp_path, verify, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    kwargs.setdefault("degrade", DegradePolicy(fallback_method=None))
    return SessionManager(str(tmp_path / "data"), verify_fn=verify,
                          **kwargs)


async def request(host, port, method, path, payload=None):
    """One HTTP round-trip; returns (status, headers, body_bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=30.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_raw, _sep, body = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def run_app(manager, scenario):
    """Start the app on port 0, run the async scenario, tear down."""

    async def main():
        app = ServiceApp(manager)
        host, port = await app.start("127.0.0.1", 0)
        try:
            await scenario(host, port)
        finally:
            await app.close()

    asyncio.run(main())


async def json_request(host, port, method, path, payload=None):
    status, headers, body = await request(host, port, method, path, payload)
    return status, headers, json.loads(body.decode("utf-8"))


class TestPlumbing:
    def test_healthz_version_metrics(self, tmp_path):
        manager = make_manager(tmp_path, CountingVerify())

        async def scenario(host, port):
            status, _headers, payload = await json_request(
                host, port, "GET", "/healthz"
            )
            assert (status, payload) == (200, {"ok": True})
            status, _headers, payload = await json_request(
                host, port, "GET", "/version"
            )
            assert status == 200
            assert payload["repro"]
            assert payload["registry_version"].endswith(
                payload["registry_fingerprint"][:12]
            )
            status, _headers, payload = await json_request(
                host, port, "GET", "/metrics"
            )
            assert status == 200
            assert payload["queue_limit"] == manager.queue_limit

        run_app(manager, scenario)

    def test_error_statuses(self, tmp_path):
        manager = make_manager(tmp_path, CountingVerify())

        async def scenario(host, port):
            status, _h, _b = await request(host, port, "GET", "/nope")
            assert status == 404
            status, _h, _b = await request(host, port, "DELETE",
                                           "/v1/sessions/abc")
            assert status == 405
            status, _h, body = await request(host, port, "POST",
                                             "/v1/sessions")
            assert status == 400  # empty body is not a request object
            status, _h, _b = await request(host, port, "GET",
                                           "/v1/sessions/doesnotexist")
            assert status == 404
            status, _h, _b = await request(
                host, port, "GET", "/v1/sessions/abc?wait=banana"
            )
            assert status == 400
            status, _h, _b = await request(host, port, "GET",
                                           "/v1/artifacts/ZZ")
            assert status == 400
            status, _h, _b = await request(host, port, "GET",
                                           "/v1/artifacts/" + "ab" * 8)
            assert status == 404

        run_app(manager, scenario)

    def test_unknown_request_field_is_400(self, tmp_path):
        manager = make_manager(tmp_path, CountingVerify())

        async def scenario(host, port):
            status, _h, payload = await json_request(
                host, port, "POST", "/v1/sessions", {"gird": "2x1"}
            )
            assert status == 400
            assert "gird" in payload["error"]

        run_app(manager, scenario)


class TestSubmitFlow:
    def test_submit_longpoll_result(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)

        async def scenario(host, port):
            status, _h, submitted = await json_request(
                host, port, "POST", "/v1/sessions",
                {"grid": "2x1,3x1", "client": "test-app"},
            )
            assert status == 200
            sid = submitted["session"]
            assert submitted["jobs"]["total"] == 2

            payload = submitted
            for _attempt in range(120):
                if payload["state"] in ("completed", "failed"):
                    break
                status, _h, payload = await json_request(
                    host, port, "GET",
                    f"/v1/sessions/{sid}?wait=1&version="
                    f"{payload['version']}",
                )
                assert status == 200
            assert payload["state"] == "completed"

            status, _h, result = await json_request(
                host, port, "GET", f"/v1/sessions/{sid}/result"
            )
            assert status == 200
            assert len(result["results"]) == 2
            assert {r["status"] for r in result["results"].values()} == \
                {"PROVED"}

        run_app(manager, scenario)

    def test_duplicate_submit_is_served_complete_from_cache(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)

        async def scenario(host, port):
            status, _h, first = await json_request(
                host, port, "POST", "/v1/sessions", {"grid": "2x1"}
            )
            sid = first["session"]
            payload = first
            while payload["state"] not in ("completed", "failed"):
                _status, _h, payload = await json_request(
                    host, port, "GET",
                    f"/v1/sessions/{sid}?wait=1&version="
                    f"{payload['version']}",
                )
            assert payload["state"] == "completed"

            status, _h, second = await json_request(
                host, port, "POST", "/v1/sessions", {"grid": "2x1"}
            )
            assert status == 200
            assert second["complete"] is True
            states = [job["state"]
                      for job in second["job_states"].values()]
            assert states == ["cached"]
            assert len(verify.calls) == 1

        run_app(manager, scenario)

    def test_backpressure_answers_429_with_retry_after(self, tmp_path):
        gate = threading.Event()
        verify = CountingVerify(block=gate)
        manager = make_manager(tmp_path, verify, queue_limit=1)

        async def scenario(host, port):
            status, _h, _first = await json_request(
                host, port, "POST", "/v1/sessions", {"grid": "2x1"}
            )
            assert status == 200
            status, headers, payload = await json_request(
                host, port, "POST", "/v1/sessions", {"grid": "3x1"}
            )
            assert status == 429
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 1
            assert "queue is full" in payload["error"]
            gate.set()

        try:
            run_app(manager, scenario)
        finally:
            gate.set()


class TestEventsAndArtifacts:
    def test_sse_streams_journal_records_then_state(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)

        async def scenario(host, port):
            _status, _h, submitted = await json_request(
                host, port, "POST", "/v1/sessions", {"grid": "2x1"}
            )
            sid = submitted["session"]
            status, headers, body = await request(
                host, port, "GET", f"/v1/sessions/{sid}/events?wait=30"
            )
            assert status == 200
            assert headers["content-type"] == "text/event-stream"
            text = body.decode("utf-8")
            frames = [frame for frame in text.split("\n\n") if frame]
            data_frames = [json.loads(frame[len("data: "):])
                           for frame in frames
                           if frame.startswith("data: ")]
            events = [frame["event"] for frame in data_frames]
            assert "enqueue" in events
            assert "finish" in events
            assert frames[-1].startswith("event: state\n")
            final = json.loads(frames[-1].split("\n", 1)[1][len("data: "):])
            assert final["state"] == "completed"

        run_app(manager, scenario)

    def test_artifact_bytes_roundtrip_over_http(self, tmp_path):
        manager = make_manager(tmp_path, CountingVerify())
        digest = "ab12" * 4
        payload = b"p drup\n1 0\n"
        manager.store.put(digest, payload, media_type="text/x-drup")

        async def scenario(host, port):
            status, headers, body = await request(
                host, port, "GET", f"/v1/artifacts/{digest}"
            )
            assert status == 200
            assert body == payload  # byte-identical through the store
            assert headers["content-type"] == "text/x-drup"

        run_app(manager, scenario)
