"""Session-manager tests: cache semantics, dedupe, backpressure, the
service breaker, and crash re-attach (repro.service.sessions)."""

import threading
import time

import pytest

from repro.campaign import Journal, RetryPolicy
from repro.campaign.jobs import JobResult
from repro.campaign.runner import DegradePolicy
from repro.core.results import VerificationResult
from repro.errors import BudgetExhausted
from repro.service.protocol import ServiceError, SubmitRequest
from repro.service.sessions import SessionManager


class CountingVerify:
    """A fast verify() stand-in that tallies every real solve."""

    def __init__(self, exc=None, block=None):
        self.calls = []
        self.exc = exc
        self.block = block  # threading.Event gating every call

    def __call__(self, config, **kwargs):
        if self.block is not None:
            assert self.block.wait(30.0), "test gate never opened"
        self.calls.append((config.n_rob, config.issue_width,
                           kwargs.get("method")))
        if self.exc is not None:
            raise self.exc
        return VerificationResult(
            config=config, method=kwargs.get("method", "rewriting"),
            bug=None, correct=True, timings={"total": 0.0},
        )


def make_manager(tmp_path, verify, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    kwargs.setdefault("degrade", DegradePolicy(fallback_method=None))
    return SessionManager(str(tmp_path / "data"), verify_fn=verify,
                          **kwargs)


def wait_done(manager, session, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        session = manager.wait_for_change(
            session.session_id, session.version, 0.5
        )
        if session.done():
            return session
    raise AssertionError(f"session never finished: {session.status_dict()}")


class TestRunAndComplete:
    def test_submit_runs_jobs_to_completion(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            session = manager.submit(SubmitRequest.parse(
                {"grid": "2x1,3x1"}
            ))
            session = wait_done(manager, session)
            assert session.state == "completed"
            results = session.result_dict(manager.store)["results"]
            assert {r["status"] for r in results.values()} == {"PROVED"}
            assert sorted(verify.calls) == [(2, 1, "rewriting"),
                                            (3, 1, "rewriting")]
        finally:
            manager.stop()

    def test_machinery_failure_marks_the_session_failed(self, tmp_path):
        import os

        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        # Sabotage the campaign machinery itself (not a job verdict):
        # the journal path is a directory, so the runner cannot open it.
        session = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
        os.makedirs(session.journal_path)
        manager.start()
        try:
            session = wait_done(manager, session)
            assert session.state == "failed"
            assert session.error
            assert verify.calls == []
        finally:
            manager.stop()


class TestCacheSemantics:
    def test_hit_serves_without_resolving(self, tmp_path):
        """The satellite contract: a cache hit must not re-solve — no
        verify() call, no campaign run, every sat.* counter untouched."""
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            request = {"grid": "2x1,3x1"}
            first = manager.submit(SubmitRequest.parse(request))
            first = wait_done(manager, first)
            assert len(verify.calls) == 2
            assert manager.metrics.values()["service.cache.stored"] == 2

            before = dict(manager.metrics.values())
            second = manager.submit(SubmitRequest.parse(request))
            # All-hit sessions complete at admission; no scheduler trip.
            assert second.done() and second.state == "completed"
            assert all(view.cached and view.state == "cached"
                       for view in second.jobs.values())
            assert len(verify.calls) == 2  # nothing re-solved
            after = dict(manager.metrics.values())
            assert after["service.cache.hits"] == \
                before.get("service.cache.hits", 0) + 2
            # No campaign ran, so every solver counter is exactly flat —
            # in particular all sat.* spans stayed zero for the hit.
            for name in set(before) | set(after):
                if name.startswith("service.campaign."):
                    assert after.get(name, 0) == before.get(name, 0), name
            results = second.result_dict(manager.store)["results"]
            assert all(r["cached"] for r in results.values())
        finally:
            manager.stop()

    def test_miss_runs_and_populates(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            assert len(manager.cache) == 0
            session = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            session = wait_done(manager, session)
            assert len(verify.calls) == 1
            assert len(manager.cache) == 1
            (view,) = session.jobs.values()
            entry = manager.cache.get(view.cache_key)
            assert entry.result["status"] == "PROVED"
            assert entry.registry_version
            assert entry.repro_version
        finally:
            manager.stop()

    def test_inconclusive_is_never_cached(self, tmp_path):
        verify = CountingVerify(exc=BudgetExhausted("nope", conflicts=1))
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            session = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            session = wait_done(manager, session)
            (view,) = session.jobs.values()
            assert view.result["status"] == "INCONCLUSIVE"
            assert len(manager.cache) == 0
            # A second submit runs again — exhaustion is not a verdict.
            verify.exc = None
            second = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            second = wait_done(manager, second)
            (view2,) = second.jobs.values()
            assert view2.result["status"] == "PROVED"
            assert not view2.cached
            assert len(manager.cache) == 1
        finally:
            manager.stop()

    def test_cache_survives_a_new_manager(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            session = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            wait_done(manager, session)
        finally:
            manager.stop()
        # A fresh manager over the same data dir: pure disk hit.
        verify2 = CountingVerify()
        manager2 = make_manager(tmp_path, verify2)
        session = manager2.submit(SubmitRequest.parse({"grid": "2x1"}))
        assert session.done()
        assert verify2.calls == []


class TestDedupe:
    def test_duplicate_configs_in_one_request_run_once(self, tmp_path):
        verify = CountingVerify()
        manager = make_manager(tmp_path, verify)
        manager.start()
        try:
            session = manager.submit(SubmitRequest.parse(
                {"grid": "2x1,2x1,2x1"}
            ))
            session = wait_done(manager, session)
            assert len(verify.calls) == 1
            states = sorted(v.state for v in session.jobs.values())
            assert states == ["done", "done", "done"]
            duplicates = [v for v in session.jobs.values()
                          if v.duplicate_of]
            assert len(duplicates) == 2
            results = session.result_dict(manager.store)["results"]
            assert len(results) == 3
            assert {r["status"] for r in results.values()} == {"PROVED"}
            # Each duplicate reports under its own job id.
            for job_id, payload in results.items():
                assert payload["job_id"] == job_id
        finally:
            manager.stop()


class TestBackpressure:
    def test_admission_queue_full_answers_429(self, tmp_path):
        gate = threading.Event()
        verify = CountingVerify(block=gate)
        manager = make_manager(tmp_path, verify, queue_limit=1)
        manager.start()
        try:
            first = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            with pytest.raises(ServiceError) as excinfo:
                manager.submit(SubmitRequest.parse({"grid": "3x1"}))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert manager.metrics.values()["service.rejected_429"] == 1
            gate.set()
            wait_done(manager, first)
            # Capacity freed: the retry is admitted.
            second = manager.submit(SubmitRequest.parse({"grid": "3x1"}))
            wait_done(manager, second)
        finally:
            gate.set()
            manager.stop()

    def test_all_cache_hit_requests_bypass_the_queue(self, tmp_path):
        gate = threading.Event()
        gate.set()
        verify = CountingVerify(block=gate)
        manager = make_manager(tmp_path, verify, queue_limit=1)
        manager.start()
        try:
            warm = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            wait_done(manager, warm)
            gate.clear()
            running = manager.submit(SubmitRequest.parse({"grid": "3x1"}))
            # The queue is full, but a pure cache hit needs no slot.
            hit = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            assert hit.done()
            gate.set()
            wait_done(manager, running)
        finally:
            gate.set()
            manager.stop()


class TestServiceBreaker:
    def test_known_inconclusive_family_is_short_circuited(self, tmp_path):
        verify = CountingVerify(exc=BudgetExhausted("nope", conflicts=1))
        manager = make_manager(tmp_path, verify, breaker_threshold=1)
        manager.start()
        try:
            first = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            first = wait_done(manager, first)
            (view,) = first.jobs.values()
            assert view.result["status"] == "INCONCLUSIVE"
            calls_before = len(verify.calls)

            second = manager.submit(SubmitRequest.parse({"grid": "2x1"}))
            assert second.done()  # refused work at admission
            (view2,) = second.jobs.values()
            assert view2.state == "short-circuited"
            assert view2.result["status"] == "INCONCLUSIVE"
            assert "circuit breaker open" in view2.result["detail"]
            assert len(verify.calls) == calls_before
            assert manager.metrics.values()[
                "service.breaker_short_circuits"] == 1
        finally:
            manager.stop()


class TestReattach:
    def test_unstarted_session_is_requeued_and_completes(self, tmp_path):
        # Manager one admits durably but its scheduler never starts —
        # the moral equivalent of SIGKILL right after the 200 response.
        verify1 = CountingVerify()
        manager1 = make_manager(tmp_path, verify1)
        session = manager1.submit(SubmitRequest.parse({"grid": "2x1,3x1"}))
        assert verify1.calls == []

        verify2 = CountingVerify()
        manager2 = make_manager(tmp_path, verify2)
        requeued = manager2.reattach()
        assert requeued == [session.session_id]
        manager2.start()
        try:
            revived = wait_done(manager2, manager2.get(session.session_id))
            assert revived.state == "completed"
            assert sorted(verify2.calls) == [(2, 1, "rewriting"),
                                             (3, 1, "rewriting")]
        finally:
            manager2.stop()

    def test_journal_results_are_kept_and_only_unfinished_jobs_run(
        self, tmp_path
    ):
        verify1 = CountingVerify()
        manager1 = make_manager(tmp_path, verify1)
        session = manager1.submit(SubmitRequest.parse({"grid": "2x1,3x1"}))
        jobs = list(session.request.jobs)
        # Simulate a crash mid-campaign: job one's INCONCLUSIVE finish is
        # already journaled (a verdict the cache refuses to hold — only
        # the journal can resurrect it), job two never started.
        with Journal(session.journal_path) as journal:
            journal.append({"event": "enqueue", "job": jobs[0].to_dict()})
            journal.append({"event": "finish", **JobResult(
                job_id=jobs[0].job_id, status="INCONCLUSIVE",
                method="rewriting", attempts=1,
                detail="BudgetExhausted: budgets spent",
            ).to_dict()})

        verify2 = CountingVerify()
        manager2 = make_manager(tmp_path, verify2)
        assert manager2.reattach() == [session.session_id]
        manager2.start()
        try:
            revived = wait_done(manager2, manager2.get(session.session_id))
            assert revived.state == "completed"
            view_a = revived.jobs[jobs[0].job_id]
            view_b = revived.jobs[jobs[1].job_id]
            assert view_a.result["status"] == "INCONCLUSIVE"
            assert not view_a.cached
            assert view_b.result["status"] == "PROVED"
            # Only the unfinished job was verified again.
            assert verify2.calls == [(3, 1, "rewriting")]
        finally:
            manager2.stop()

    def test_finished_session_reattaches_queryable_not_requeued(
        self, tmp_path
    ):
        verify1 = CountingVerify()
        manager1 = make_manager(tmp_path, verify1)
        manager1.start()
        try:
            session = manager1.submit(SubmitRequest.parse({"grid": "2x1"}))
            wait_done(manager1, session)
        finally:
            manager1.stop()

        manager2 = make_manager(tmp_path, CountingVerify())
        assert manager2.reattach() == []
        revived = manager2.get(session.session_id)
        assert revived.state == "completed"
        results = revived.result_dict(manager2.store)["results"]
        assert {r["status"] for r in results.values()} == {"PROVED"}

    def test_unreadable_request_document_is_skipped(self, tmp_path):
        manager1 = make_manager(tmp_path, CountingVerify())
        session = manager1.submit(SubmitRequest.parse({"grid": "2x1"}))
        import os

        with open(os.path.join(session.directory, "request.json"),
                  "w") as handle:
            handle.write("{torn")
        manager2 = make_manager(tmp_path, CountingVerify())
        assert manager2.reattach() == []
        with pytest.raises(ServiceError):
            manager2.get(session.session_id)


class TestValidation:
    def test_bad_limits_are_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            SessionManager(str(tmp_path / "d"), queue_limit=0)
        with pytest.raises(ServiceError):
            SessionManager(str(tmp_path / "d"), max_running=0)

    def test_unknown_session_is_404(self, tmp_path):
        manager = make_manager(tmp_path, CountingVerify())
        with pytest.raises(ServiceError) as excinfo:
            manager.get("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError):
            manager.wait_for_change("nope", -1, 0.01)
