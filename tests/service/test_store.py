"""Artifact-store tests (repro.service.store), including the
``--certify`` round-trip: real witness artifacts must come back from the
store byte-identical."""

import pytest

from repro import Bug, ProcessorConfig, verify
from repro.service.store import ArtifactStore, ArtifactStoringVerify

DIGEST_A = "ab12" * 4
DIGEST_B = "cd34" * 4


class TestBlobSemantics:
    def test_put_get_byte_identical(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        payload = b"p drup\n1 2 0\nd 1 0\n"
        assert store.put(DIGEST_A, payload, "text/x-drup") == DIGEST_A
        assert store.get(DIGEST_A) == payload
        assert store.media_type(DIGEST_A) == "text/x-drup"

    def test_put_is_idempotent_and_immutable(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(DIGEST_A, b"first", "text/plain")
        store.put(DIGEST_A, b"second attempt ignored", "text/plain")
        assert store.get(DIGEST_A) == b"first"
        assert len(store) == 1

    def test_missing_digest_is_none(self, tmp_path):
        assert ArtifactStore(str(tmp_path)).get(DIGEST_A) is None
        assert ArtifactStore(str(tmp_path)).has(DIGEST_A) is False

    def test_media_type_defaults_without_sidecar(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(DIGEST_A, b"x", "text/plain")
        (tmp_path / DIGEST_A[:2] / (DIGEST_A + ".meta")).unlink()
        assert store.media_type(DIGEST_A) == "application/octet-stream"

    def test_digests_scan(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(DIGEST_A, b"a")
        store.put(DIGEST_B, b"b")
        assert sorted(store.digests()) == sorted([DIGEST_A, DIGEST_B])
        assert len(store) == 2

    @pytest.mark.parametrize("bad", ["", "xy", "../../evil", "GG" * 8])
    def test_malformed_digests_are_rejected(self, tmp_path, bad):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.put(bad, b"x")
        with pytest.raises(ValueError):
            store.get(bad)
        assert store.has(bad) is False


class TestCertifyRoundtrip:
    def test_drup_proof_roundtrips_byte_identical(self, tmp_path):
        result = verify(ProcessorConfig(2, 1), certify=True)
        witness = result.witness
        assert witness is not None and witness.validated
        payload = witness.artifact_bytes()
        assert payload  # a real DRUP proof, not a placeholder

        store = ArtifactStore(str(tmp_path))
        store.put(witness.digest(), payload,
                  media_type=witness.artifact_media_type)
        assert store.get(witness.digest()) == payload
        assert store.media_type(witness.digest()) == "text/x-drup"

    def test_counterexample_roundtrips_byte_identical(self, tmp_path):
        result = verify(
            ProcessorConfig(3, 1),
            bug=Bug("forward-wrong-source", entry=2),
            certify=True,
        )
        witness = result.witness
        assert witness is not None
        payload = witness.artifact_bytes()
        store = ArtifactStore(str(tmp_path))
        store.put(witness.digest(), payload,
                  media_type=witness.artifact_media_type)
        assert store.get(witness.digest()) == payload
        assert store.media_type(witness.digest()) == "application/json"


class TestArtifactStoringVerify:
    def test_wrapper_persists_the_witness_under_its_digest(self, tmp_path):
        wrapper = ArtifactStoringVerify(str(tmp_path))
        result = wrapper(ProcessorConfig(2, 1), certify=True)
        assert result.correct
        witness = result.witness
        store = ArtifactStore(str(tmp_path))
        assert store.has(witness.digest())
        assert store.get(witness.digest()) == witness.artifact_bytes()

    def test_wrapper_is_a_no_op_without_a_witness(self, tmp_path):
        wrapper = ArtifactStoringVerify(str(tmp_path))
        result = wrapper(ProcessorConfig(2, 1))  # no certify: no witness
        assert result.correct
        assert len(ArtifactStore(str(tmp_path))) == 0

    def test_wrapper_pickles(self, tmp_path):
        import pickle

        wrapper = ArtifactStoringVerify(str(tmp_path))
        clone = pickle.loads(pickle.dumps(wrapper))
        assert clone.store_root == wrapper.store_root
