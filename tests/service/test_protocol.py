"""Request-vocabulary tests (repro.service.protocol)."""

import pytest

from repro.campaign import Job
from repro.service.protocol import (
    MAX_JOBS_PER_REQUEST,
    ServiceError,
    SubmitRequest,
    job_options,
)


def _status(excinfo):
    return excinfo.value.status


class TestParseHappyPath:
    def test_grid_shorthand(self):
        request = SubmitRequest.parse({"grid": "4x2,8x2"})
        assert [(job.n_rob, job.issue_width) for job in request.jobs] == \
            [(4, 2), (8, 2)]
        assert request.certify is False
        assert request.analyze is False

    def test_explicit_configs_and_grid_combine(self):
        request = SubmitRequest.parse({
            "configs": [{"n_rob": 2, "issue_width": 1}],
            "grid": "4x2",
        })
        assert [(job.n_rob, job.issue_width) for job in request.jobs] == \
            [(2, 1), (4, 2)]

    def test_options_ride_on_every_job(self):
        request = SubmitRequest.parse({
            "grid": "4x2",
            "method": "positive_equality",
            "criterion": "case_split",
            "bug": {"kind": "forward-wrong-source", "entry": 3},
            "certify": True,
            "analyze": True,
            "client": "tester",
            "budgets": {"max_conflicts": 100, "max_seconds": 1.5},
        })
        (job,) = request.jobs
        assert job.method == "positive_equality"
        assert job.criterion == "case_split"
        assert job.bug_kind == "forward-wrong-source"
        assert job.bug_entry == 3
        assert job.max_conflicts == 100
        assert job.max_seconds == pytest.approx(1.5)
        assert request.certify and request.analyze
        assert request.client == "tester"

    def test_duplicate_configs_get_distinct_job_ids(self):
        request = SubmitRequest.parse({"grid": "4x2,4x2,4x2"})
        ids = [job.job_id for job in request.jobs]
        assert len(set(ids)) == 3  # the journal requires unique ids

    def test_roundtrip_through_durable_form(self):
        request = SubmitRequest.parse({
            "grid": "4x2", "certify": True, "client": "rt",
            "budgets": {"max_conflicts": 10},
        })
        again = SubmitRequest.from_dict(request.to_dict())
        assert [job.to_dict() for job in again.jobs] == \
            [job.to_dict() for job in request.jobs]
        assert again.certify == request.certify
        assert again.client == request.client
        assert again.budgets == request.budgets


class TestParseRejections:
    def test_non_object_body(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse(["not", "an", "object"])
        assert _status(excinfo) == 400

    def test_unknown_fields(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({"grid": "4x2", "bogus": 1})
        assert _status(excinfo) == 400
        assert "bogus" in str(excinfo.value)

    def test_unknown_method_and_criterion(self):
        with pytest.raises(ServiceError):
            SubmitRequest.parse({"grid": "4x2", "method": "magic"})
        with pytest.raises(ServiceError):
            SubmitRequest.parse({"grid": "4x2", "criterion": "vibes"})

    def test_bad_bug(self):
        with pytest.raises(ServiceError):
            SubmitRequest.parse({"grid": "4x2", "bug": "not-an-object"})
        with pytest.raises(ServiceError):
            SubmitRequest.parse({"grid": "4x2", "bug": {"kind": "no-such"}})

    def test_bad_budget_field(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({"grid": "4x2",
                                 "budgets": {"max_lightyears": 3}})
        assert "max_lightyears" in str(excinfo.value)

    def test_empty_request(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({})
        assert "no work" in str(excinfo.value)

    def test_bad_grid_string(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({"grid": "4by2"})
        assert _status(excinfo) == 400

    def test_config_missing_fields(self):
        with pytest.raises(ServiceError):
            SubmitRequest.parse({"configs": [{"n_rob": 4}]})

    def test_invalid_config_values(self):
        with pytest.raises(ServiceError):
            SubmitRequest.parse(
                {"configs": [{"n_rob": 0, "issue_width": 1}]}
            )

    def test_job_ceiling(self):
        configs = [{"n_rob": 2, "issue_width": 1}] * (
            MAX_JOBS_PER_REQUEST + 1
        )
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({"configs": configs})
        assert "ceiling" in str(excinfo.value)


class TestJobOptions:
    def test_budgets_never_leak_into_the_cache_key_options(self):
        job = Job.build(4, 2, max_conflicts=100, max_seconds=1.0)
        options = job_options(job, certify=False, analyze=False)
        assert "max_conflicts" not in options
        assert "max_seconds" not in options

    def test_bug_fields_are_none_without_a_bug(self):
        job = Job.build(4, 2)
        options = job_options(job, certify=False, analyze=False)
        assert options["bug_kind"] is None
        assert options["bug_entry"] is None
        assert options["bug_operand"] is None

    def test_certify_and_analyze_matter(self):
        job = Job.build(4, 2)
        plain = job_options(job, certify=False, analyze=False)
        certified = job_options(job, certify=True, analyze=False)
        assert plain != certified

    def test_key_schema_is_stable_and_backend_free(self):
        # The cache-key vocabulary is frozen: verdicts are a function of
        # (config, these options, registry version) only.  The SAT
        # backend is verdict-equivalent by contract, so it must never
        # appear here — a cache filled under one backend serves another.
        job = Job.build(4, 2)
        options = job_options(job, certify=True, analyze=True)
        assert sorted(options) == [
            "analyze", "bug_entry", "bug_kind", "bug_operand",
            "certify", "criterion", "method",
        ]
        assert "sat_backend" not in options
        assert "incremental_sat" not in options

    def test_canonical_key_unmoved_by_ambient_backend(self):
        from repro.core.keys import canonical_key
        from repro.sat import use_backend

        job = Job.build(4, 2)
        config = {"n_rob": 4, "issue_width": 2}
        options = job_options(job, certify=False, analyze=False)
        baseline = canonical_key(config, options, registry_version="t")
        with use_backend("reference"):
            assert canonical_key(
                config, options, registry_version="t"
            ) == baseline


class TestFamilyField:
    def test_top_level_family_rides_on_every_job(self):
        request = SubmitRequest.parse({"grid": "4x2,8x2", "family": "mem"})
        assert [job.family for job in request.jobs] == ["mem", "mem"]
        assert [job.config().family for job in request.jobs] == ["mem", "mem"]

    def test_per_config_family_overrides_the_shared_one(self):
        request = SubmitRequest.parse({
            "family": "branch",
            "configs": [
                {"n_rob": 2, "issue_width": 1},
                {"n_rob": 2, "issue_width": 1, "family": "mixed"},
            ],
        })
        assert [job.family for job in request.jobs] == ["branch", "mixed"]

    def test_family_default_is_reg_reg(self):
        request = SubmitRequest.parse({"grid": "4x2"})
        (job,) = request.jobs
        assert job.family == "reg-reg"
        assert job.job_id == "rw-N4-k2"  # seed ids unchanged

    def test_unknown_top_level_family_is_a_400(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({"grid": "4x2", "family": "vliw"})
        assert _status(excinfo) == 400

    def test_unknown_per_config_family_is_a_400(self):
        with pytest.raises(ServiceError) as excinfo:
            SubmitRequest.parse({
                "configs": [
                    {"n_rob": 2, "issue_width": 1, "family": "vliw"}
                ],
            })
        assert _status(excinfo) == 400

    def test_family_reaches_the_cache_key_options(self):
        # Distinct families must never collide in the result cache.
        from repro.core.keys import canonical_key

        keys = set()
        for family in ("reg-reg", "branch", "mem", "mixed"):
            job = Job.build(4, 2, family=family)
            keys.add(canonical_key(
                {"n_rob": 4, "issue_width": 2, "retire_width": None,
                 "family": family},
                job_options(job, certify=False, analyze=False),
                registry_version="t",
            ))
        assert len(keys) == 4
