"""Tests for circuit construction and validation."""

import pytest

from repro.tlsim import (
    AndGate,
    Circuit,
    CircuitError,
    Fn,
    Latch,
    NotGate,
    Signal,
    FORMULA,
)


def _sig(name, sort=FORMULA):
    return Signal(name, sort)


class TestConstruction:
    def test_single_driver_enforced(self):
        circuit = Circuit()
        a, b, out = _sig("a"), _sig("b"), _sig("out")
        circuit.add(AndGate("g1", [a, b], out))
        with pytest.raises(CircuitError):
            circuit.add(NotGate("g2", a, out))

    def test_primary_inputs_detected(self):
        circuit = Circuit()
        a, b, out = _sig("a"), _sig("b"), _sig("out")
        circuit.add(AndGate("g1", [a, b], out))
        assert circuit.primary_inputs == [a, b]

    def test_latch_output_is_not_primary_input(self):
        circuit = Circuit()
        d, q, nd = _sig("d"), _sig("q"), _sig("nd")
        circuit.add(Latch("l", d, q))
        circuit.add(NotGate("inv", q, nd))
        assert q not in circuit.primary_inputs
        assert d in circuit.primary_inputs

    def test_state_signals(self):
        circuit = Circuit()
        d, q = _sig("d"), _sig("q")
        circuit.add(Latch("l", d, q))
        assert circuit.state_signals == [q]

    def test_frozen_circuit_rejects_additions(self):
        circuit = Circuit()
        a, out = _sig("a"), _sig("out")
        circuit.add(NotGate("inv", a, out))
        circuit.freeze()
        with pytest.raises(CircuitError):
            circuit.add(NotGate("inv2", out, _sig("out2")))

    def test_latch_sort_mismatch_rejected(self):
        from repro.tlsim import TERM

        with pytest.raises(ValueError):
            Latch("l", Signal("d", TERM), Signal("q", FORMULA))


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        circuit = Circuit()
        a, b, c, d = _sig("a"), _sig("b"), _sig("c"), _sig("d")
        g2 = NotGate("g2", c, d)
        g1 = AndGate("g1", [a, b], c)
        circuit.add(g2)
        circuit.add(g1)
        order = circuit.combinational_order()
        assert order.index(g1) < order.index(g2)

    def test_combinational_cycle_rejected(self):
        circuit = Circuit()
        a, b = _sig("a"), _sig("b")
        circuit.add(NotGate("g1", a, b))
        circuit.add(NotGate("g2", b, a))
        with pytest.raises(CircuitError):
            circuit.freeze()

    def test_cycle_through_latch_allowed(self):
        circuit = Circuit()
        d, q = _sig("d"), _sig("q")
        circuit.add(Latch("l", d, q))
        circuit.add(NotGate("inv", q, d))
        circuit.freeze()  # no error: the latch breaks the cycle

    def test_readers_map(self):
        circuit = Circuit()
        a, b, c = _sig("a"), _sig("b"), _sig("c")
        g1 = NotGate("g1", a, b)
        g2 = NotGate("g2", a, c)
        circuit.add(g1)
        circuit.add(g2)
        circuit.freeze()
        assert set(circuit.readers_of(a)) == {g1, g2}
        assert circuit.readers_of(_sig("unknown")) == []
