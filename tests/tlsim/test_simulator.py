"""Tests for the event-driven symbolic simulator."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    and_,
    bvar,
    eq,
    ite_term,
    not_,
    read,
    tvar,
    uf,
    write,
)
from repro.tlsim import (
    AndGate,
    Circuit,
    EqComparator,
    Fn,
    Latch,
    MemRead,
    MemWrite,
    Mux,
    NotGate,
    Signal,
    SimulationError,
    Simulator,
    UFBlock,
    FORMULA,
    MEMORY,
    TERM,
)


def _counter_circuit():
    """PC <- NextPC(PC), gated by an enable input."""
    circuit = Circuit("counter")
    pc = Signal("pc", TERM)
    pc_next = Signal("pc_next", TERM)
    pc_inc = Signal("pc_inc", TERM)
    enable = Signal("enable", FORMULA)
    circuit.add(UFBlock("inc", "NextPC", [pc], pc_inc))
    circuit.add(Mux("gate", enable, pc_inc, pc, pc_next))
    circuit.add(Latch("pc_latch", pc_next, pc))
    return circuit, pc, enable


class TestBasicSimulation:
    def test_combinational_evaluation(self):
        circuit = Circuit()
        a, b, out = Signal("a", FORMULA), Signal("b", FORMULA), Signal("o", FORMULA)
        circuit.add(AndGate("g", [a, b], out))
        sim = Simulator(circuit)
        sim.set_input(a, bvar("p"))
        sim.set_input(b, TRUE)
        sim.settle()
        assert sim.peek(out) is bvar("p")

    def test_latch_captures_on_step(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.init_state({pc: tvar("PC0")})
        sim.set_input(enable, TRUE)
        sim.step()
        assert sim.peek(pc) is uf("NextPC", [tvar("PC0")])
        sim.step()
        assert sim.peek(pc) is uf("NextPC", [uf("NextPC", [tvar("PC0")])])

    def test_disabled_counter_holds(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.init_state({pc: tvar("PC0")})
        sim.set_input(enable, FALSE)
        sim.run(3)
        assert sim.peek(pc) is tvar("PC0")

    def test_symbolic_enable_builds_ite(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.init_state({pc: tvar("PC0")})
        sim.set_input(enable, bvar("fetch"))
        sim.step()
        expected = ite_term(
            bvar("fetch"), uf("NextPC", [tvar("PC0")]), tvar("PC0")
        )
        assert sim.peek(pc) is expected

    def test_uninitialized_state_raises(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.set_input(enable, TRUE)
        with pytest.raises(SimulationError):
            sim.step()

    def test_driving_non_input_rejected(self):
        circuit = Circuit()
        a, out = Signal("a", FORMULA), Signal("o", FORMULA)
        circuit.add(NotGate("g", a, out))
        sim = Simulator(circuit)
        with pytest.raises(SimulationError):
            sim.set_input(out, TRUE)

    def test_sort_checking(self):
        circuit = Circuit()
        a, out = Signal("a", FORMULA), Signal("o", FORMULA)
        circuit.add(NotGate("g", a, out))
        sim = Simulator(circuit)
        with pytest.raises(SimulationError):
            sim.set_input(a, tvar("x"))


class TestMemoryPorts:
    def test_register_file_write_then_read(self):
        circuit = Circuit()
        rf = Signal("rf", MEMORY)
        rf_next = Signal("rf_next", MEMORY)
        wen = Signal("wen", FORMULA)
        waddr, wdata = Signal("waddr", TERM), Signal("wdata", TERM)
        raddr, rdata = Signal("raddr", TERM), Signal("rdata", TERM)
        circuit.add(MemWrite("wp", rf, wen, waddr, wdata, rf_next))
        circuit.add(MemRead("rp", rf, raddr, rdata))
        circuit.add(Latch("rf_latch", rf_next, rf))
        sim = Simulator(circuit)
        sim.init_state({rf: tvar("RF0")})
        sim.set_inputs(
            {
                wen: TRUE,
                waddr: tvar("r1"),
                wdata: tvar("v1"),
                raddr: tvar("r2"),
            }
        )
        sim.step()
        assert sim.peek(rf) is write(tvar("RF0"), tvar("r1"), tvar("v1"))
        sim.settle()
        assert sim.peek(rdata) is read(
            write(tvar("RF0"), tvar("r1"), tvar("v1")), tvar("r2")
        )


class TestEventDriven:
    def test_unchanged_inputs_skip_evaluation(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.init_state({pc: tvar("PC0")})
        sim.set_input(enable, FALSE)
        sim.step()
        evals_after_first = sim.stats.component_evaluations
        # PC did not change (enable false), so the second step should skip
        # the whole cone.
        sim.step()
        assert sim.stats.component_evaluations == evals_after_first

    def test_cone_of_influence_scoping(self):
        """Two independent slices: poking one leaves the other unevaluated."""
        circuit = Circuit()
        evaluated = []

        def make_slice(i):
            inp = Signal(f"in{i}", TERM)
            out = Signal(f"out{i}", TERM)

            def fn(x):
                evaluated.append(i)
                return uf(f"slice{i}", [x])

            circuit.add(Fn(f"s{i}", [inp], [out], fn))
            return inp, out

        in0, _ = make_slice(0)
        in1, _ = make_slice(1)
        sim = Simulator(circuit)
        sim.set_input(in0, tvar("x0"))
        sim.set_input(in1, tvar("x1"))
        sim.settle()
        assert sorted(evaluated) == [0, 1]
        evaluated.clear()
        sim.set_input(in0, tvar("x0_new"))
        sim.settle()
        assert evaluated == [0]

    def test_stable_state_costs_no_evaluations(self):
        circuit, pc, enable = _counter_circuit()
        sim = Simulator(circuit)
        sim.init_state({pc: tvar("PC0")})
        sim.set_input(enable, FALSE)
        sim.step()
        evaluations_after_first = sim.stats.component_evaluations
        sim.run(4)
        assert sim.stats.component_evaluations == evaluations_after_first
        assert sim.stats.steps == 5


class TestComparator:
    def test_eq_comparator(self):
        circuit = Circuit()
        a, b = Signal("a", TERM), Signal("b", TERM)
        out = Signal("eq_out", FORMULA)
        circuit.add(EqComparator("cmp", a, b, out))
        sim = Simulator(circuit)
        sim.set_input(a, tvar("x"))
        sim.set_input(b, tvar("y"))
        sim.settle()
        assert sim.peek(out) is eq(tvar("x"), tvar("y"))
        sim.set_input(b, tvar("x"))
        sim.settle()
        assert sim.peek(out) is TRUE
