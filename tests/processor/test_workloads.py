"""End-to-end verification of every workload family.

Each family must (a) prove the correct design under both methods and
(b) falsify each of its seeded family-specific bug kinds — the PROVED /
BUG_FOUND round trip the family registry promises.  Configurations are
kept tiny: the precise-memory SAT path grows steeply with the ROB size
for the memory families (that blow-up is the research finding charted in
EXPERIMENTS.md, not something to re-measure in unit tests).
"""

import pytest

from repro.core.verifier import verify
from repro.processor.bugs import Bug, BugKind
from repro.processor.params import ProcessorConfig


class TestProvedAllFamilies:
    @pytest.mark.parametrize("family", ["branch", "mem", "mixed"])
    def test_rewriting_proves_each_family(self, family):
        result = verify(ProcessorConfig(2, 1, family=family))
        assert result.correct is True

    @pytest.mark.parametrize("family", ["branch", "mem", "mixed"])
    def test_positive_equality_proves_each_family(self, family):
        result = verify(
            ProcessorConfig(2, 1, family=family), method="positive_equality"
        )
        assert result.correct is True

    def test_mem_family_with_wide_issue(self):
        result = verify(ProcessorConfig(4, 2, family="mem"))
        assert result.correct is True


class TestRewritingReduction:
    def test_mem_family_reduces_fully(self):
        result = verify(ProcessorConfig(6, 2, family="mem"))
        assert result.correct is True
        assert result.rewrite.reduction == "full"
        assert result.rewrite.proved_entries == list(range(1, 7))
        assert result.rewrite.reduced_dmem_impl is not None
        assert len(result.rewrite.reduced_spec_dmems) == 3

    def test_mem_reduced_formula_is_rob_size_independent(self):
        # The paper's central claim, extended to loads/stores: after the
        # rewriting rules remove the initial entries, the residual SAT
        # problem depends only on the issue width.
        small = verify(ProcessorConfig(3, 2, family="mem"))
        large = verify(ProcessorConfig(10, 2, family="mem"))
        assert small.correct and large.correct

        def shape(result):
            row = dict(result.encoding_stats.as_row())
            row.pop("translate_seconds", None)
            return row

        assert shape(small) == shape(large)

    @pytest.mark.parametrize("family", ["branch", "mixed"])
    def test_branch_families_fall_back_to_the_full_formula(self, family):
        result = verify(ProcessorConfig(2, 1, family=family))
        assert result.correct is True
        assert result.rewrite.reduction == "none"
        assert result.rewrite.rules_applied.get("fallback") == 1
        assert result.rewrite.reduced_formula is not None

    def test_reg_reg_reduction_is_unchanged(self):
        result = verify(ProcessorConfig(3, 2))
        assert result.correct is True
        assert result.rewrite.reduction == "full"
        assert result.rewrite.reduced_dmem_impl is None


class TestSeededBugsFalsify:
    @pytest.mark.parametrize("method", ["rewriting", "positive_equality"])
    def test_wrong_path_retire(self, method):
        result = verify(
            ProcessorConfig(2, 1, 2, family="branch"),
            method=method,
            bug=Bug(BugKind.WRONG_PATH_RETIRE, entry=2),
        )
        assert result.correct is False

    @pytest.mark.parametrize("method", ["rewriting", "positive_equality"])
    def test_dropped_flush(self, method):
        result = verify(
            ProcessorConfig(2, 1, family="branch"),
            method=method,
            bug=Bug(BugKind.DROPPED_FLUSH, entry=2),
        )
        assert result.correct is False

    def test_stale_load_forward(self):
        # Rewriting only: the smallest config expressing this bug (the
        # load needs two preceding stores, so N=3) already exhausts
        # memory under the precise positive-equality translation — the
        # paper's out-of-memory column, charted in EXPERIMENTS.md.  The
        # mem family's BUG_FOUND path under positive_equality is covered
        # by test_store_order below.
        result = verify(
            ProcessorConfig(3, 1, 2, family="mem"),
            bug=Bug(BugKind.STALE_LOAD_FORWARD, entry=3),
        )
        assert result.correct is False

    @pytest.mark.parametrize("method", ["rewriting", "positive_equality"])
    def test_store_order(self, method):
        result = verify(
            ProcessorConfig(2, 1, 2, family="mem"),
            method=method,
            bug=Bug(BugKind.STORE_ORDER, entry=2),
        )
        assert result.correct is False

    def test_stale_load_forward_is_attributed_to_its_slice(self):
        # The rewriting engine names the offending computation slice, the
        # family analogue of the paper's 72nd-slice experiment.
        result = verify(
            ProcessorConfig(3, 1, 2, family="mem"),
            bug=Bug(BugKind.STALE_LOAD_FORWARD, entry=3),
        )
        assert result.correct is False
        assert result.suspected_entry == 3
        assert "data" in result.failure_detail

    def test_legacy_bug_kinds_still_falsify_in_new_families(self):
        result = verify(
            ProcessorConfig(3, 1, family="mem"),
            bug=Bug(BugKind.FORWARD_WRONG_SOURCE, entry=2),
        )
        assert result.correct is False
        assert result.suspected_entry == 2


class TestCriterionSoundness:
    def test_case_split_rejected_for_branch_families(self):
        with pytest.raises(ValueError, match="case_split.*unsound"):
            verify(
                ProcessorConfig(2, 1, family="branch"),
                method="positive_equality",
                criterion="case_split",
            )

    def test_case_split_still_works_for_mem(self):
        result = verify(
            ProcessorConfig(2, 1, family="mem"),
            method="positive_equality",
            criterion="case_split",
        )
        assert result.correct is True
