"""Tests for the Burch–Dill diagram and correctness formula."""

import pytest

from repro.decision import is_valid
from repro.encode import check_validity
from repro.eufm import TRUE, bool_variables, term_variables
from repro.processor import (
    ProcessorConfig,
    build_correctness_formula,
    run_diagram,
    forwarding_bug,
)


class TestDiagram:
    def test_artifacts_populated(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=1))
        assert artifacts.pc_impl is not None
        assert artifacts.rf_impl is not None
        assert artifacts.rf_impl_mid is not None
        assert len(artifacts.spec_states) == 2
        assert artifacts.simulate_seconds > 0

    def test_spec_zero_state_uses_initial_pc(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=1))
        assert artifacts.spec_states[0].pc is artifacts.initial_pc

    def test_mid_state_is_inside_final_state(self):
        from repro.eufm import iter_dag

        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=2))
        assert artifacts.rf_impl_mid in set(iter_dag(artifacts.rf_impl))

    def test_fetch_conditions_are_monotone(self):
        from repro.eufm import Interpretation, evaluate

        artifacts = run_diagram(ProcessorConfig(n_rob=3, issue_width=3))
        for seed in range(20):
            interp = Interpretation(seed=seed)
            values = [evaluate(f, interp) for f in artifacts.fetch_conditions]
            for earlier, later in zip(values, values[1:]):
                if later:
                    assert earlier  # fetch_j implies fetch_{j-1}


class TestCorrectnessFormula:
    def test_disjunction_criterion_shape(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=2))
        phi = build_correctness_formula(artifacts, criterion="disjunction")
        assert phi.kind == "or"
        assert len(phi.args) == 3  # 0, 1 or 2 instructions

    def test_case_split_criterion_shape(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=2))
        phi = build_correctness_formula(artifacts, criterion="case_split")
        assert phi.kind == "and"

    def test_unknown_criterion_rejected(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=1, issue_width=1))
        with pytest.raises(ValueError):
            build_correctness_formula(artifacts, criterion="nonsense")

    def test_formula_mentions_scheduling_variables(self):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=1))
        phi = build_correctness_formula(artifacts)
        names = {v.name for v in bool_variables(phi)}
        assert "NDFetch1" in names
        assert "NDExecute1" in names or "NDExecute2" in names


class TestEndToEndValidity:
    """The gold checks: correct designs valid, buggy ones invalid, under
    both criteria (small configurations, precise memory model)."""

    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 2)])
    def test_correct_designs_are_valid(self, n, k):
        artifacts = run_diagram(ProcessorConfig(n_rob=n, issue_width=k))
        phi = build_correctness_formula(artifacts)
        assert check_validity(phi).valid is True

    @pytest.mark.parametrize("criterion", ["disjunction", "case_split"])
    def test_both_criteria_hold_for_correct_design(self, criterion):
        artifacts = run_diagram(ProcessorConfig(n_rob=2, issue_width=1))
        phi = build_correctness_formula(artifacts, criterion=criterion)
        assert check_validity(phi).valid is True

    def test_buggy_design_is_invalid(self):
        artifacts = run_diagram(
            ProcessorConfig(n_rob=2, issue_width=1), bug=forwarding_bug(2)
        )
        phi = build_correctness_formula(artifacts)
        result = check_validity(phi)
        assert result.valid is False
        assert result.counterexample is not None
