"""Tests for the non-pipelined specification processor."""

from repro.eufm import (
    Interpretation,
    bvar,
    eq,
    evaluate,
    read,
    tvar,
    uf,
    up,
)
from repro.processor import SpecState, fetch_fields, spec_step, spec_trajectory
from repro.processor.isa import ALU, NEXT_PC


def _initial():
    return SpecState(pc=tvar("PC"), reg_file=tvar("RegFile"))


class TestSpecStep:
    def test_pc_increments_through_next_pc(self):
        state = spec_step(_initial())
        assert state.pc is uf(NEXT_PC, [tvar("PC")])

    def test_rf_write_is_guarded_by_valid(self):
        state = spec_step(_initial())
        # The new RF is ITE(InstrValid(PC), write(...), RegFile).
        assert state.reg_file.kind == "tite"
        assert state.reg_file.els is tvar("RegFile")

    def test_result_uses_alu_of_fetched_operands(self):
        state = spec_step(_initial())
        written = state.reg_file.then
        assert written.kind == "write"
        data = written.data
        assert data.kind == "uf" and data.symbol == ALU

    def test_two_steps_chain_pc(self):
        states = spec_trajectory(_initial(), 2)
        assert len(states) == 3
        assert states[2].pc is uf(NEXT_PC, [uf(NEXT_PC, [tvar("PC")])])

    def test_invalid_instruction_leaves_rf_unchanged(self):
        """Concrete check: when InstrValid(PC) is false the Register File
        is untouched."""
        state = spec_step(_initial())
        probe = tvar("probe")
        changed = read(state.reg_file, probe)
        unchanged = read(tvar("RegFile"), probe)
        valid, _, _, _, _ = fetch_fields(tvar("PC"))
        hits = 0
        for seed in range(40):
            interp = Interpretation(domain_size=3, seed=seed)
            if not evaluate(valid, interp):
                hits += 1
                assert evaluate(eq(changed, unchanged), interp) is True
        assert hits > 0  # the sample actually exercised the invalid case

    def test_fetch_fields_deterministic(self):
        f1 = fetch_fields(tvar("PC"))
        f2 = fetch_fields(tvar("PC"))
        assert all(a is b for a, b in zip(f1, f2))
