"""Tests for the abstract out-of-order implementation model."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    Interpretation,
    bvar,
    eq,
    evaluate,
    read,
    tvar,
    uf,
)
from repro.processor import (
    ProcessorConfig,
    build_ooo_processor,
    flush_range,
    make_simulator,
)
from repro.processor.isa import NEXT_PC


def _build(n=2, k=1, bug=None):
    proc = build_ooo_processor(ProcessorConfig(n_rob=n, issue_width=k), bug=bug)
    return proc, make_simulator(proc)


class TestConstruction:
    def test_slot_count(self):
        proc, _ = _build(n=4, k=2)
        assert len(proc.valid) == 6
        assert len(proc.nd_execute) == 4
        assert len(proc.nd_fetch) == 2
        assert len(proc.activate) == 6

    def test_initial_state_variables_recorded(self):
        proc, _ = _build(n=2, k=1)
        for name in ("Valid1", "ValidResult2", "Dest1", "Src1_2", "Result1", "PC"):
            assert name in proc.vars

    def test_fetch_slots_start_invalid(self):
        proc, _ = _build(n=2, k=2)
        assert proc.initial_state[proc.valid[2]] is FALSE
        assert proc.initial_state[proc.valid[3]] is FALSE

    def test_circuit_is_acyclic(self):
        proc, _ = _build(n=3, k=2)
        assert proc.circuit.combinational_order()


class TestRegularOperation:
    def test_pc_advances_by_fetch_count(self):
        proc, sim = _build(n=2, k=2)
        sim.step()
        pc = sim.peek(proc.pc)
        # PC_Impl = ITE(fetch_2, NextPC^2(PC), ITE(fetch_1, NextPC(PC), PC)).
        interp = Interpretation(bool_values={"NDFetch1": True, "NDFetch2": True})
        two = uf(NEXT_PC, [uf(NEXT_PC, [tvar("PC")])])
        assert evaluate(eq(pc, two), interp) is True
        interp = Interpretation(bool_values={"NDFetch1": True, "NDFetch2": False})
        one = uf(NEXT_PC, [tvar("PC")])
        assert evaluate(eq(pc, one), interp) is True
        interp = Interpretation(bool_values={"NDFetch1": False, "NDFetch2": True})
        assert evaluate(eq(pc, tvar("PC")), interp) is True

    def test_retired_instruction_writes_register_file(self):
        proc, sim = _build(n=1, k=1)
        sim.step()
        rf = sim.peek(proc.rf)
        probe = tvar("Dest1")
        value = read(rf, probe)
        # Valid & ValidResult -> retires, writing Result1 to Dest1.
        interp = Interpretation(
            domain_size=4,
            bool_values={"Valid1": True, "ValidResult1": True, "NDFetch1": False},
        )
        assert evaluate(eq(value, tvar("Result1")), interp) is True

    def test_unretired_instruction_does_not_write(self):
        proc, sim = _build(n=1, k=1)
        sim.step()
        rf = sim.peek(proc.rf)
        value = read(rf, tvar("Dest1"))
        baseline = read(tvar("RegFile"), tvar("Dest1"))
        interp = Interpretation(
            domain_size=4,
            bool_values={
                "Valid1": True,
                "ValidResult1": False,
                "NDFetch1": False,
                "NDExecute1": False,
            },
        )
        assert evaluate(eq(value, baseline), interp) is True

    def test_in_order_retirement(self):
        """Entry 2 cannot retire when entry 1 has no result yet."""
        proc, sim = _build(n=2, k=2)
        sim.step()
        rf = sim.peek(proc.rf)
        value = read(rf, tvar("Dest2"))
        baseline = read(tvar("RegFile"), tvar("Dest2"))
        interp = Interpretation(
            domain_size=5,
            bool_values={
                "Valid1": True,
                "ValidResult1": False,  # blocks retirement of entry 2
                "Valid2": True,
                "ValidResult2": True,
                "NDFetch1": False,
                "NDFetch2": False,
                "NDExecute1": False,
                "NDExecute2": False,
            },
            term_values={"Dest1": 0, "Dest2": 1},
        )
        assert evaluate(eq(value, baseline), interp) is True

    def test_execution_forwards_from_producer(self):
        """Entry 2 executing out of order forwards Result1 when its source
        matches Dest1 and entry 1 has a result."""
        proc, sim = _build(n=2, k=1)
        sim.step()
        vres2 = sim.peek(proc.vres[1])
        interp = Interpretation(
            domain_size=5,
            bool_values={
                "Valid1": True,
                "ValidResult1": True,
                "Valid2": True,
                "ValidResult2": False,
                "NDExecute1": False,
                "NDExecute2": True,
                "NDFetch1": False,
            },
            term_values={"Dest1": 2, "Src1_2": 2, "Src2_2": 3, "Dest2": 4},
        )
        assert evaluate(vres2, interp) is True

    def test_execution_stalls_on_pending_producer(self):
        proc, sim = _build(n=2, k=1)
        sim.step()
        vres2 = sim.peek(proc.vres[1])
        interp = Interpretation(
            domain_size=5,
            bool_values={
                "Valid1": True,
                "ValidResult1": False,  # producer has no result yet
                "Valid2": True,
                "ValidResult2": False,
                "NDExecute1": False,
                "NDExecute2": True,
                "NDFetch1": False,
            },
            term_values={"Dest1": 2, "Src1_2": 2, "Src2_2": 3, "Dest2": 4},
        )
        assert evaluate(vres2, interp) is False

    def test_nd_execute_gates_execution(self):
        proc, sim = _build(n=1, k=1)
        sim.step()
        vres1 = sim.peek(proc.vres[0])
        interp = Interpretation(
            bool_values={
                "Valid1": True,
                "ValidResult1": False,
                "NDExecute1": False,
                "NDFetch1": False,
            },
        )
        assert evaluate(vres1, interp) is False


class TestFlush:
    def test_flush_preserves_pc(self):
        proc, sim = _build(n=2, k=1)
        sim.step()
        pc_before = sim.peek(proc.pc)
        flush_range(sim, proc, 1, proc.total_slots)
        assert sim.peek(proc.pc) is pc_before

    def test_flush_of_initial_state_completes_all_valid(self):
        """Flushing the initial state writes every valid instruction's
        completion data in program order."""
        proc, sim = _build(n=2, k=1)
        flush_range(sim, proc, 1, proc.total_slots)
        rf = sim.peek(proc.rf)
        value = read(rf, tvar("Dest2"))
        interp = Interpretation(
            domain_size=5,
            bool_values={
                "Valid1": False,
                "Valid2": True,
                "ValidResult2": True,
            },
        )
        assert evaluate(eq(value, tvar("Result2")), interp) is True

    def test_program_order_of_completions(self):
        """When two valid entries share a destination, the later one wins."""
        proc, sim = _build(n=2, k=1)
        flush_range(sim, proc, 1, proc.total_slots)
        rf = sim.peek(proc.rf)
        value = read(rf, tvar("Dest1"))
        interp = Interpretation(
            domain_size=5,
            bool_values={
                "Valid1": True,
                "ValidResult1": True,
                "Valid2": True,
                "ValidResult2": True,
            },
            term_values={"Dest1": 2, "Dest2": 2},
        )
        assert evaluate(eq(value, tvar("Result2")), interp) is True

    def test_invalid_entries_do_not_write(self):
        proc, sim = _build(n=1, k=1)
        flush_range(sim, proc, 1, proc.total_slots)
        rf = sim.peek(proc.rf)
        interp = Interpretation(bool_values={"Valid1": False})
        probe = tvar("anywhere")
        assert (
            evaluate(eq(read(rf, probe), read(tvar("RegFile"), probe)), interp)
            is True
        )

    def test_flush_range_validates_bounds(self):
        proc, sim = _build(n=2, k=1)
        with pytest.raises(ValueError):
            flush_range(sim, proc, 0, 1)
        with pytest.raises(ValueError):
            flush_range(sim, proc, 1, 99)
