"""Tests for processor configuration validation."""

import pytest

from repro.processor import ProcessorConfig


class TestProcessorConfig:
    def test_defaults_retire_to_issue_width(self):
        config = ProcessorConfig(n_rob=8, issue_width=2)
        assert config.retire_width == 2

    def test_explicit_retire_width(self):
        config = ProcessorConfig(n_rob=8, issue_width=2, retire_width=1)
        assert config.retire_width == 1

    def test_total_slots(self):
        config = ProcessorConfig(n_rob=8, issue_width=2)
        assert config.total_slots == 10

    def test_width_cannot_exceed_size(self):
        # The dash entries of Tables 1-4.
        with pytest.raises(ValueError):
            ProcessorConfig(n_rob=2, issue_width=4)

    def test_positive_sizes_required(self):
        with pytest.raises(ValueError):
            ProcessorConfig(n_rob=0, issue_width=1)
        with pytest.raises(ValueError):
            ProcessorConfig(n_rob=4, issue_width=0)

    def test_retire_width_validated(self):
        with pytest.raises(ValueError):
            ProcessorConfig(n_rob=4, issue_width=2, retire_width=8)

    def test_describe(self):
        text = ProcessorConfig(n_rob=16, issue_width=4).describe()
        assert "16-entry" in text
        assert "issue width 4" in text

    def test_frozen(self):
        config = ProcessorConfig(n_rob=4, issue_width=2)
        with pytest.raises(Exception):
            config.n_rob = 8
