"""Property test: flush-and-replay parity on random branch programs.

The Burch–Dill correctness formula states that one implementation step
followed by the abstraction function lands on some prefix of the
specification trajectory.  For a *correct* design that formula is valid,
so it must evaluate to True under **every** concrete interpretation — in
particular under randomly drawn programs where branch outcomes, opcodes
and memory contents are picked by hypothesis.  Evaluating the formula
directly checks the spec/impl parity (including misprediction squash,
ROB-flush recovery and store-to-load forwarding) with the evaluator as
the semantic ground truth, completely independent of the SAT path.
"""

from hypothesis import given, settings, strategies as st

from repro.eufm import Interpretation, evaluate
from repro.processor.correctness import (
    build_correctness_formula,
    run_diagram,
)
from repro.processor.params import ProcessorConfig

_FORMULAS = {}


def _formula(family):
    # The diagram is simulated once per family (it is symbolic — the
    # randomness lives entirely in the interpretations drawn below).
    if family not in _FORMULAS:
        artifacts = run_diagram(ProcessorConfig(2, 1, 2, family=family))
        _FORMULAS[family] = build_correctness_formula(artifacts)
    return _FORMULAS[family]


class TestBranchReplayParity:
    @given(seed=st.integers(0, 2**32 - 1), domain=st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_random_branch_programs_replay_to_the_spec_trajectory(
        self, seed, domain
    ):
        formula = _formula("branch")
        interp = Interpretation(domain_size=domain, seed=seed)
        assert evaluate(formula, interp) is True

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_mixed_programs_replay_to_the_spec_trajectory(self, seed):
        formula = _formula("mixed")
        interp = Interpretation(domain_size=4, seed=seed)
        assert evaluate(formula, interp) is True

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_memory_programs_replay_to_the_spec_trajectory(self, seed):
        formula = _formula("mem")
        interp = Interpretation(domain_size=4, seed=seed)
        assert evaluate(formula, interp) is True

    def test_a_buggy_design_fails_replay_for_some_program(self):
        # Sanity: the property is not vacuous — a wrong-path-retire bug
        # must be falsified by at least one of the same drawn programs.
        from repro.processor.bugs import Bug, BugKind

        artifacts = run_diagram(
            ProcessorConfig(2, 1, 2, family="branch"),
            bug=Bug(BugKind.WRONG_PATH_RETIRE, entry=2),
        )
        formula = build_correctness_formula(artifacts)
        # Wrong-path programs are a thin slice of the interpretation
        # space (the mispredicted branch must retire inside the window),
        # so sweep a few hundred seeds rather than relying on one draw.
        assert any(
            evaluate(formula, Interpretation(domain_size=4, seed=seed))
            is False
            for seed in range(300)
        )
