"""The workload-family registry and its plumbing through the stack."""

import pytest

from repro.campaign.jobs import Job
from repro.eufm.ast import FALSE, TRUE
from repro.processor.bugs import Bug, BugKind
from repro.processor.families import (
    DEFAULT_FAMILY,
    FAMILIES,
    family_names,
    get_family,
)
from repro.processor.isa import kind_precedence, writes_reg_file
from repro.processor.ooo import build_ooo_processor
from repro.processor.params import ProcessorConfig

from repro.eufm import builder


class TestRegistry:
    def test_the_four_families(self):
        assert family_names() == ("reg-reg", "branch", "mem", "mixed")
        assert DEFAULT_FAMILY == "reg-reg"

    def test_capabilities(self):
        assert not FAMILIES["reg-reg"].has_branches
        assert not FAMILIES["reg-reg"].has_memory
        assert FAMILIES["branch"].has_branches
        assert not FAMILIES["branch"].has_memory
        assert not FAMILIES["mem"].has_branches
        assert FAMILIES["mem"].has_memory
        assert FAMILIES["mixed"].has_branches
        assert FAMILIES["mixed"].has_memory

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            get_family("vliw")

    def test_every_family_lists_exercisable_bug_kinds(self):
        for family in FAMILIES.values():
            assert family.bug_kinds, family.name
            for kind in family.bug_kinds:
                assert kind in BugKind.ALL
                # Each listed kind must pass the capability gate.
                Bug(kind, entry=1).check_family(family)

    def test_branch_and_memory_kinds_only_in_capable_families(self):
        assert set(BugKind.NEEDS_BRANCHES) <= set(FAMILIES["branch"].bug_kinds)
        assert set(BugKind.NEEDS_MEMORY) <= set(FAMILIES["mem"].bug_kinds)
        assert not set(BugKind.NEEDS_BRANCHES) & set(FAMILIES["mem"].bug_kinds)
        assert not set(BugKind.NEEDS_MEMORY) & set(
            FAMILIES["branch"].bug_kinds
        )


class TestConfigPlumbing:
    def test_default_family_keeps_seed_describe(self):
        config = ProcessorConfig(4, 2)
        assert config.family == "reg-reg"
        assert "family" not in config.describe()

    def test_non_default_family_in_describe(self):
        config = ProcessorConfig(4, 2, family="mem")
        assert "family mem" in config.describe()

    def test_unknown_family_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            ProcessorConfig(4, 2, family="vliw")

    def test_family_spec_resolves(self):
        assert ProcessorConfig(4, 2, family="mixed").family_spec.has_memory


class TestKindPrecedence:
    def test_reg_reg_pins_every_kind_to_false(self):
        b, l, s = builder.bvar("b"), builder.bvar("l"), builder.bvar("s")
        isb, isl, iss = kind_precedence(get_family("reg-reg"), b, l, s)
        assert isb is FALSE and isl is FALSE and iss is FALSE

    def test_branch_family_pins_memory_kinds(self):
        b, l, s = builder.bvar("b"), builder.bvar("l"), builder.bvar("s")
        isb, isl, iss = kind_precedence(get_family("branch"), b, l, s)
        assert isb is b and isl is FALSE and iss is FALSE

    def test_mixed_kinds_are_mutually_exclusive(self):
        from repro.eufm import Interpretation, evaluate

        b, l, s = builder.bvar("b"), builder.bvar("l"), builder.bvar("s")
        isb, isl, iss = kind_precedence(get_family("mixed"), b, l, s)
        for seed in range(16):
            interp = Interpretation(domain_size=3, seed=seed)
            flags = [evaluate(k, interp) for k in (isb, isl, iss)]
            assert sum(flags) <= 1

    def test_writes_reg_file_collapses_for_reg_reg(self):
        assert writes_reg_file(FALSE, FALSE) is TRUE


class TestBugGating:
    def test_branch_bug_rejected_in_memory_family(self):
        with pytest.raises(ValueError, match="branch logic"):
            Bug(BugKind.DROPPED_FLUSH).check_family(get_family("mem"))

    def test_memory_bug_rejected_in_branch_family(self):
        with pytest.raises(ValueError, match="load-store logic"):
            Bug(BugKind.STORE_ORDER).check_family(get_family("branch"))

    def test_build_rejects_inexpressible_bug(self):
        with pytest.raises(ValueError, match="branch logic"):
            build_ooo_processor(
                ProcessorConfig(2, 1), bug=Bug(BugKind.WRONG_PATH_RETIRE)
            )

    def test_mixed_family_accepts_all_kinds(self):
        mixed = get_family("mixed")
        for kind in BugKind.ALL:
            Bug(kind).check_family(mixed)


class TestCircuitShape:
    def test_reg_reg_circuit_has_no_family_signals(self):
        proc = build_ooo_processor(ProcessorConfig(2, 1))
        assert proc.dmem is None
        assert proc.wp is None
        assert proc.kb == [] and proc.kl == [] and proc.ks == []
        assert proc.taken == []

    def test_mem_circuit_has_data_memory(self):
        proc = build_ooo_processor(ProcessorConfig(2, 1, family="mem"))
        assert proc.dmem is not None and proc.dmem_hold is not None
        assert len(proc.kl) == len(proc.ks) > 0
        assert proc.wp is None

    def test_branch_circuit_has_recovery_state(self):
        proc = build_ooo_processor(ProcessorConfig(2, 1, family="branch"))
        assert proc.wp is not None
        assert len(proc.kb) > 0 and len(proc.taken) > 0
        assert proc.dmem is None


class TestJobPlumbing:
    def test_job_family_reaches_the_config(self):
        job = Job.build(4, 2, family="mem")
        assert job.config().family == "mem"
        assert job.job_id.endswith("-mem")

    def test_default_family_keeps_seed_job_ids(self):
        assert Job.build(4, 2).job_id == "rw-N4-k2"

    def test_breaker_key_separates_families(self):
        assert Job.build(4, 2, family="mem").breaker_key() != \
            Job.build(4, 2, family="branch").breaker_key()
        assert Job.build(4, 2).breaker_key() == \
            Job.build(8, 2).breaker_key()

    def test_job_round_trips_family(self):
        job = Job.build(4, 2, family="mixed")
        assert Job.from_dict(job.to_dict()) == job
