"""Tests for DAG traversal, substitution and statistics."""

import pytest

from repro.eufm import (
    TRUE,
    and_,
    bool_variables,
    bvar,
    dag_depth,
    eq,
    equations,
    expression_stats,
    function_symbols,
    ite_term,
    iter_dag,
    memory_nodes,
    node_count,
    not_,
    or_,
    predicate_symbols,
    read,
    substitute,
    term_variables,
    tvar,
    uf,
    up,
    write,
)


def _sample_formula():
    x, y = tvar("x"), tvar("y")
    p = bvar("p")
    return and_(or_(p, eq(uf("f", [x]), y)), not_(up("q", [x, y])))


class TestIteration:
    def test_postorder_children_before_parents(self):
        root = _sample_formula()
        seen = set()
        for node in iter_dag(root):
            for child in node.children:
                assert child in seen
            seen.add(node)

    def test_each_node_once(self):
        root = _sample_formula()
        nodes = list(iter_dag(root))
        assert len(nodes) == len(set(nodes))

    def test_shared_subdag_counted_once(self):
        x = tvar("x")
        f1 = uf("f", [x])
        root = eq(uf("g", [f1, f1]), x)
        nodes = list(iter_dag(root))
        assert sum(1 for n in nodes if n is f1) == 1

    def test_multiple_roots(self):
        x, y = tvar("x"), tvar("y")
        nodes = list(iter_dag(x, y, x))
        assert set(nodes) == {x, y}


class TestCollectors:
    def test_term_variables(self):
        root = _sample_formula()
        names = {v.name for v in term_variables(root)}
        assert names == {"x", "y"}

    def test_bool_variables(self):
        root = _sample_formula()
        assert {v.name for v in bool_variables(root)} == {"p"}

    def test_function_symbols(self):
        root = _sample_formula()
        assert function_symbols(root) == ["f"]

    def test_predicate_symbols(self):
        root = _sample_formula()
        assert predicate_symbols(root) == ["q"]

    def test_equations(self):
        root = _sample_formula()
        assert len(equations(root)) == 1

    def test_memory_nodes(self):
        m, a, d = tvar("m"), tvar("a"), tvar("d")
        root = eq(read(write(m, a, d), tvar("b")), d)
        assert len(memory_nodes(root)) == 2


class TestMetrics:
    def test_node_count_leaf(self):
        assert node_count(tvar("lonely")) == 1

    def test_depth_leaf(self):
        assert dag_depth(tvar("lonely")) == 1

    def test_depth_chain(self):
        node = tvar("base")
        for i in range(10):
            node = uf("f", [node])
        assert dag_depth(node) == 11

    def test_stats_totals(self):
        root = _sample_formula()
        stats = expression_stats(root)
        assert stats["total"] == node_count(root)
        assert stats["tvar"] == 2
        assert stats["eq"] == 1


class TestSubstitution:
    def test_simple_var_replacement(self):
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        root = eq(uf("f", [x]), y)
        result = substitute(root, {x: z})
        assert result is eq(uf("f", [z]), y)

    def test_substitution_is_simultaneous(self):
        x, y = tvar("x"), tvar("y")
        root = uf("f", [x, y])
        result = substitute(root, {x: y, y: x})
        assert result is uf("f", [y, x])

    def test_substitution_triggers_simplification(self):
        x, y = tvar("x"), tvar("y")
        root = eq(x, y)
        assert substitute(root, {y: x}) is TRUE

    def test_formula_substitution(self):
        p, q = bvar("p"), bvar("q")
        root = and_(p, not_(q))
        assert substitute(root, {q: p}) is and_(p, not_(p))  # = FALSE
        from repro.eufm import FALSE

        assert substitute(root, {q: p}) is FALSE

    def test_sort_mismatch_rejected(self):
        with pytest.raises(TypeError):
            substitute(eq(tvar("x"), tvar("y")), {tvar("x"): bvar("p")})

    def test_deep_chain_no_recursion_error(self):
        node = tvar("base")
        for _ in range(5000):
            node = uf("f", [node])
        replaced = substitute(node, {tvar("base"): tvar("other")})
        assert node_count(replaced) == node_count(node)
