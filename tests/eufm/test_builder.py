"""Unit tests for the EUFM smart constructors."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    And,
    Eq,
    FormulaITE,
    Not,
    Or,
    TermITE,
    and_,
    bvar,
    eq,
    iff,
    implies,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    up,
    write,
    xor,
)


class TestInterning:
    def test_term_vars_are_interned(self):
        assert tvar("x") is tvar("x")

    def test_distinct_names_distinct_nodes(self):
        assert tvar("x") is not tvar("y")

    def test_bool_vars_are_interned(self):
        assert bvar("p") is bvar("p")

    def test_term_and_bool_namespaces_are_separate(self):
        assert tvar("v") is not bvar("v")

    def test_uf_applications_are_interned(self):
        a = uf("f", [tvar("x"), tvar("y")])
        b = uf("f", [tvar("x"), tvar("y")])
        assert a is b

    def test_uf_differs_by_symbol(self):
        assert uf("f", [tvar("x")]) is not uf("g", [tvar("x")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            tvar("")
        with pytest.raises(ValueError):
            bvar("")


class TestEq:
    def test_reflexive_equation_is_true(self):
        assert eq(tvar("x"), tvar("x")) is TRUE

    def test_equation_is_symmetric_by_canonical_order(self):
        assert eq(tvar("x"), tvar("y")) is eq(tvar("y"), tvar("x"))

    def test_equation_on_non_term_rejected(self):
        with pytest.raises(TypeError):
            eq(bvar("p"), tvar("x"))


class TestNot:
    def test_double_negation(self):
        p = bvar("p")
        assert not_(not_(p)) is p

    def test_constants(self):
        assert not_(TRUE) is FALSE
        assert not_(FALSE) is TRUE


class TestAndOr:
    def test_and_identity(self):
        p = bvar("p")
        assert and_(p, TRUE) is p

    def test_and_domination(self):
        assert and_(bvar("p"), FALSE) is FALSE

    def test_and_empty_is_true(self):
        assert and_() is TRUE

    def test_and_dedup(self):
        p = bvar("p")
        assert and_(p, p) is p

    def test_and_complement(self):
        p = bvar("p")
        assert and_(p, not_(p)) is FALSE

    def test_and_flattens(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        assert and_(and_(p, q), r) is and_(p, q, r)

    def test_and_commutative_by_canonical_order(self):
        p, q = bvar("p"), bvar("q")
        assert and_(p, q) is and_(q, p)

    def test_or_identity(self):
        p = bvar("p")
        assert or_(p, FALSE) is p

    def test_or_domination(self):
        assert or_(bvar("p"), TRUE) is TRUE

    def test_or_empty_is_false(self):
        assert or_() is FALSE

    def test_or_complement(self):
        p = bvar("p")
        assert or_(p, not_(p)) is TRUE

    def test_or_flattens_and_dedups(self):
        p, q = bvar("p"), bvar("q")
        assert or_(or_(p, q), q, p) is or_(p, q)


class TestIte:
    def test_term_ite_constant_condition(self):
        x, y = tvar("x"), tvar("y")
        assert ite_term(TRUE, x, y) is x
        assert ite_term(FALSE, x, y) is y

    def test_term_ite_same_branches(self):
        x = tvar("x")
        assert ite_term(bvar("p"), x, x) is x

    def test_term_ite_nested_same_condition_then(self):
        p = bvar("p")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        inner = ite_term(p, x, y)
        outer = ite_term(p, inner, z)
        assert outer is ite_term(p, x, z)

    def test_term_ite_nested_same_condition_else(self):
        p = bvar("p")
        x, y, z = tvar("x"), tvar("y"), tvar("z")
        inner = ite_term(p, x, y)
        outer = ite_term(p, z, inner)
        assert outer is ite_term(p, z, y)

    def test_formula_ite_to_connectives(self):
        p, q = bvar("p"), bvar("q")
        assert ite_formula(p, TRUE, FALSE) is p
        assert ite_formula(p, FALSE, TRUE) is not_(p)
        assert ite_formula(p, q, FALSE) is and_(p, q)
        assert ite_formula(p, TRUE, q) is or_(p, q)

    def test_formula_ite_remains_when_no_simplification(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        node = ite_formula(p, q, r)
        assert isinstance(node, FormulaITE)

    def test_mixed_sorts_rejected(self):
        with pytest.raises(TypeError):
            ite_term(bvar("p"), tvar("x"), bvar("q"))


class TestDerivedConnectives:
    def test_implies(self):
        p, q = bvar("p"), bvar("q")
        assert implies(p, q) is or_(not_(p), q)

    def test_implies_true_antecedent(self):
        q = bvar("q")
        assert implies(TRUE, q) is q

    def test_iff_with_constants(self):
        p = bvar("p")
        assert iff(p, TRUE) is p
        assert iff(p, FALSE) is not_(p)

    def test_xor_with_constants(self):
        p = bvar("p")
        assert xor(p, FALSE) is p
        assert xor(p, TRUE) is not_(p)


class TestMemoryConstructors:
    def test_read_of_same_address_write_forwards(self):
        m, a, d = tvar("m"), tvar("a"), tvar("d")
        assert read(write(m, a, d), a) is d

    def test_read_of_different_address_stays(self):
        m, a, b, d = tvar("m"), tvar("a"), tvar("b"), tvar("d")
        node = read(write(m, a, d), b)
        assert node.kind == "read"

    def test_write_requires_terms(self):
        with pytest.raises(TypeError):
            write(tvar("m"), bvar("p"), tvar("d"))
