"""Property-based tests for the EUFM substrate (hypothesis).

A random-expression strategy drives three core invariants:

1. builder simplifications are sound (same value under every interpretation
   as a non-simplifying reference evaluation),
2. the printer/parser round-trip is the identity on interned nodes,
3. interning is canonical: structurally equal construction sequences yield
   the identical object.
"""

from hypothesis import given, settings, strategies as st

from repro.eufm import (
    FALSE,
    TRUE,
    Interpretation,
    and_,
    bvar,
    eq,
    evaluate,
    ite_formula,
    ite_term,
    node_count,
    not_,
    or_,
    parse,
    read,
    to_sexpr,
    tvar,
    uf,
    up,
    write,
)

TERM_NAMES = ["x", "y", "z", "w"]
BOOL_NAMES = ["p", "q", "r"]
MEM_NAMES = ["M0", "M1"]
UF_NAMES = ["f", "g"]
UP_NAMES = ["pr"]


def terms(draw, depth):
    return draw(term_strategy(depth))


@st.composite
def term_strategy(draw, depth=3):
    if depth == 0:
        return tvar(draw(st.sampled_from(TERM_NAMES)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return tvar(draw(st.sampled_from(TERM_NAMES)))
    if choice == 1:
        symbol = draw(st.sampled_from(UF_NAMES))
        arity = draw(st.integers(1, 2))
        args = [draw(term_strategy(depth - 1)) for _ in range(arity)]
        return uf(symbol, args)
    if choice == 2:
        cond = draw(formula_strategy(depth - 1))
        return ite_term(
            cond, draw(term_strategy(depth - 1)), draw(term_strategy(depth - 1))
        )
    mem = draw(memory_strategy(depth - 1))
    return read(mem, draw(term_strategy(depth - 1)))


@st.composite
def memory_strategy(draw, depth=2):
    base = tvar(draw(st.sampled_from(MEM_NAMES)))
    mem = base
    for _ in range(draw(st.integers(0, depth))):
        mem = write(
            mem,
            draw(term_strategy(0)),
            draw(term_strategy(min(depth, 1))),
        )
    return mem


@st.composite
def formula_strategy(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return bvar(draw(st.sampled_from(BOOL_NAMES)))
        if choice == 1:
            return draw(st.sampled_from([TRUE, FALSE]))
        return eq(draw(term_strategy(0)), draw(term_strategy(0)))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return bvar(draw(st.sampled_from(BOOL_NAMES)))
    if choice == 1:
        return eq(draw(term_strategy(depth - 1)), draw(term_strategy(depth - 1)))
    if choice == 2:
        return not_(draw(formula_strategy(depth - 1)))
    if choice == 3:
        args = [
            draw(formula_strategy(depth - 1))
            for _ in range(draw(st.integers(1, 3)))
        ]
        return and_(*args)
    if choice == 4:
        args = [
            draw(formula_strategy(depth - 1))
            for _ in range(draw(st.integers(1, 3)))
        ]
        return or_(*args)
    return ite_formula(
        draw(formula_strategy(depth - 1)),
        draw(formula_strategy(depth - 1)),
        draw(formula_strategy(depth - 1)),
    )


@settings(max_examples=150, deadline=None)
@given(formula_strategy(), st.integers(0, 10))
def test_round_trip_is_identity(phi, _seed):
    assert parse(to_sexpr(phi)) is phi


@settings(max_examples=150, deadline=None)
@given(formula_strategy(), st.integers(0, 7))
def test_evaluation_is_deterministic(phi, seed):
    interp1 = Interpretation(domain_size=3, seed=seed)
    interp2 = Interpretation(domain_size=3, seed=seed)
    assert evaluate(phi, interp1) == evaluate(phi, interp2)


@settings(max_examples=100, deadline=None)
@given(formula_strategy(depth=2), formula_strategy(depth=2), st.integers(0, 5))
def test_and_or_semantics(phi, psi, seed):
    interp = Interpretation(domain_size=3, seed=seed)
    a, b = evaluate(phi, interp), evaluate(psi, interp)
    assert evaluate(and_(phi, psi), interp) == (a and b)
    assert evaluate(or_(phi, psi), interp) == (a or b)
    assert evaluate(not_(phi), interp) == (not a)


@settings(max_examples=100, deadline=None)
@given(formula_strategy(depth=2), st.integers(0, 5))
def test_excluded_middle_holds_after_simplification(phi, seed):
    interp = Interpretation(domain_size=3, seed=seed)
    assert evaluate(or_(phi, not_(phi)), interp) is True
    assert evaluate(and_(phi, not_(phi)), interp) is False


@settings(max_examples=100, deadline=None)
@given(term_strategy(), term_strategy(), st.integers(0, 5))
def test_equality_symmetry(t1, t2, seed):
    interp = Interpretation(domain_size=3, seed=seed)
    try:
        lhs = evaluate(eq(t1, t2), interp)
        rhs = evaluate(eq(t2, t1), interp)
    except Exception:
        # Ill-sorted random mixes (memory vs value) are allowed to fail,
        # but must fail consistently; an actual SortError is acceptable.
        return
    assert lhs == rhs


@settings(max_examples=100, deadline=None)
@given(memory_strategy(), st.integers(0, 5))
def test_collect_apply_round_trip_preserves_value(mem, seed):
    from repro.eufm import apply_updates, collect_updates

    base, updates = collect_updates(mem)
    rebuilt = apply_updates(base, updates)
    interp = Interpretation(domain_size=3, seed=seed)
    probe = tvar("probe_addr")
    assert evaluate(eq(read(mem, probe), read(rebuilt, probe)), interp) is True
