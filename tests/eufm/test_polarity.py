"""Tests for the Positive-Equality polarity classification."""

import pytest

from repro.eufm import (
    BOTH,
    NEG,
    POS,
    and_,
    bvar,
    classify,
    eq,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    up,
    uf,
    write,
)


class TestEquationPolarity:
    def test_positive_equation_is_not_general(self):
        phi = eq(tvar("x"), tvar("y"))
        info = classify(phi)
        assert not info.general_equations
        assert not info.g_vars

    def test_negated_equation_is_general(self):
        phi = not_(eq(tvar("x"), tvar("y")))
        info = classify(phi)
        assert len(info.general_equations) == 1
        assert {v.name for v in info.g_vars} == {"x", "y"}

    def test_equation_under_double_negation_is_positive(self):
        phi = not_(not_(or_(eq(tvar("x"), tvar("y")), bvar("p"))))
        info = classify(phi)
        assert not info.general_equations

    def test_formula_ite_condition_is_general(self):
        guard = eq(tvar("a"), tvar("b"))
        phi = ite_formula(guard, bvar("p"), bvar("q"))
        info = classify(phi)
        assert guard in info.general_equations

    def test_term_ite_condition_is_general(self):
        guard = eq(tvar("a"), tvar("b"))
        phi = eq(ite_term(guard, tvar("x"), tvar("y")), tvar("z"))
        info = classify(phi)
        assert guard in info.general_equations
        assert {v.name for v in info.g_vars} == {"a", "b"}

    def test_implication_antecedent_equation_is_general(self):
        from repro.eufm import implies

        ante = eq(tvar("a"), tvar("b"))
        post = eq(tvar("x"), tvar("y"))
        info = classify(implies(ante, post))
        assert ante in info.general_equations
        assert post not in info.general_equations

    def test_same_equation_in_both_polarities_is_general(self):
        e = eq(tvar("x"), tvar("y"))
        phi = or_(e, and_(not_(e), bvar("p")))
        # Builder may simplify; ensure both polarities survive structurally.
        info = classify(phi)
        assert e in info.general_equations


class TestTermPropagation:
    def test_ite_branches_of_general_term_are_general(self):
        branch_var = tvar("bx")
        term = ite_term(bvar("p"), branch_var, tvar("by"))
        phi = not_(eq(term, tvar("z")))
        info = classify(phi)
        assert branch_var in info.g_vars

    def test_general_uf_symbol_marks_all_applications(self):
        f1 = uf("f", [tvar("x")])
        f2 = uf("f", [tvar("y")])
        phi = and_(not_(eq(f1, tvar("z"))), eq(f2, tvar("w")))
        info = classify(phi)
        assert info.is_g_symbol("f")
        assert f1 in info.g_terms
        assert f2 in info.g_terms

    def test_arguments_of_general_uf_stay_positive(self):
        # Argument terms are not classified general merely because the
        # application result is general (BGV: maximal diversity applies to
        # argument comparisons of p-classified argument terms).
        x = tvar("x")
        phi = not_(eq(uf("f", [x]), tvar("z")))
        info = classify(phi)
        assert x not in info.g_vars

    def test_p_symbol_stays_positive(self):
        phi = eq(uf("alu", [tvar("op"), tvar("a")]), tvar("r"))
        info = classify(phi)
        assert not info.is_g_symbol("alu")

    def test_summary_counts(self):
        phi = not_(eq(tvar("x"), tvar("y")))
        info = classify(phi)
        assert info.summary() == {
            "general_equations": 1,
            "g_vars": 2,
            "g_symbols": 0,
        }


class TestMemoryRejection:
    def test_memory_nodes_rejected(self):
        m = tvar("m")
        phi = eq(read(m, tvar("a")), tvar("d"))
        with pytest.raises(TypeError):
            classify(phi)

    def test_write_rejected(self):
        phi = eq(write(tvar("m"), tvar("a"), tvar("d")), tvar("m2"))
        with pytest.raises(TypeError):
            classify(phi)


class TestBothPolarity:
    """Equations reachable in both polarities must be classified BOTH
    (hence general): maximal diversity over their variables would be
    unsound if even one occurrence is effectively negative."""

    def test_shared_equation_has_both_polarity(self):
        e = eq(tvar("bp_x"), tvar("bp_y"))
        phi = and_(or_(e, bvar("p")), or_(not_(e), bvar("q")))
        info = classify(phi)
        assert info.polarity[e] == BOTH
        assert e in info.general_equations
        assert {v.name for v in info.g_vars} == {"bp_x", "bp_y"}

    def test_ite_guard_equation_is_both(self):
        # A formula-ITE condition feeds both branches: its equation is
        # seen positively (cond -> then) and negatively (~cond -> else).
        guard = eq(tvar("bp_a"), tvar("bp_b"))
        phi = ite_formula(guard, bvar("p"), bvar("q"))
        info = classify(phi)
        assert info.polarity[guard] == BOTH

    def test_nested_ite_guard_stays_both(self):
        inner = eq(tvar("bp_c"), tvar("bp_d"))
        outer = eq(tvar("bp_e"), tvar("bp_f"))
        phi = ite_formula(outer, ite_formula(inner, bvar("p"), bvar("q")),
                          bvar("r"))
        info = classify(phi)
        assert info.polarity[outer] == BOTH
        assert info.polarity[inner] == BOTH

    def test_single_plus_double_negation_is_both(self):
        # The hash-consed node not_(e) is shared by two contexts: one
        # even-depth (e ends up NEG) and one odd-depth under an enclosing
        # not_ (the flips cancel, e ends up POS).  Together: BOTH.
        e = eq(tvar("bp_g"), tvar("bp_h"))
        neg_e = not_(e)
        phi = and_(or_(neg_e, bvar("q")),
                   not_(and_(or_(neg_e, bvar("p")), bvar("r"))))
        info = classify(phi)
        assert info.polarity[e] == BOTH
        assert e in info.general_equations

    def test_shared_subdag_under_mixed_parents(self):
        # One hash-consed sub-DAG referenced from a positive parent and a
        # negated parent: the shared node itself carries BOTH.  The extra
        # literals keep the builder from collapsing x | ~x to TRUE.
        e = eq(tvar("bp_i"), tvar("bp_j"))
        shared = and_(e, bvar("p"))
        phi = and_(or_(shared, bvar("u")), or_(not_(shared), bvar("v")))
        info = classify(phi)
        assert info.polarity[shared] == BOTH
        assert info.polarity[e] == BOTH

    def test_both_polarity_vars_are_general(self):
        # The whole point: BOTH-polarity equations poison their variables
        # for maximal diversity, exactly like pure NEG ones.
        e = eq(tvar("bp_k"), tvar("bp_l"))
        only_neg = not_(eq(tvar("bp_m"), tvar("bp_n")))
        phi = and_(or_(e, bvar("p")), or_(not_(e), bvar("q")), only_neg)
        info = classify(phi)
        assert {v.name for v in info.g_vars} == {
            "bp_k", "bp_l", "bp_m", "bp_n"
        }


class TestProcessorShapedFormula:
    def test_register_ids_general_data_positive(self):
        """The canonical shape from the paper: register identifiers are
        compared in forwarding guards (general), data values only in the
        final positive equation (positive)."""
        dest, src = tvar("Dest1"), tvar("Src1")
        result, data = tvar("Result1"), tvar("rf_data")
        operand = ite_term(eq(dest, src), result, data)
        spec = uf("ALU", [tvar("op"), operand])
        phi = eq(spec, tvar("impl_result"))
        info = classify(phi)
        assert {v.name for v in info.g_vars} == {"Dest1", "Src1"}
        assert not info.is_g_symbol("ALU")
        assert tvar("Result1") not in info.g_vars
