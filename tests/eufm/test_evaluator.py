"""Tests for the concrete EUFM evaluator (the semantic ground truth)."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    Interpretation,
    MemVal,
    SortError,
    and_,
    bvar,
    eq,
    evaluate,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    up,
    write,
)
from repro.eufm.evaluator import infer_memory_sorts


@pytest.fixture
def interp():
    return Interpretation(domain_size=4, seed=7)


class TestBasicEvaluation:
    def test_constants(self, interp):
        assert evaluate(TRUE, interp) is True
        assert evaluate(FALSE, interp) is False

    def test_term_var_in_domain(self, interp):
        value = evaluate(tvar("x"), interp)
        assert 0 <= value < 4

    def test_term_var_deterministic(self, interp):
        assert evaluate(tvar("x"), interp) == evaluate(tvar("x"), interp)

    def test_explicit_assignment(self):
        interp = Interpretation(term_values={"x": 3}, bool_values={"p": True})
        assert evaluate(tvar("x"), interp) == 3
        assert evaluate(bvar("p"), interp) is True

    def test_connectives(self):
        interp = Interpretation(bool_values={"p": True, "q": False})
        p, q = bvar("p"), bvar("q")
        assert evaluate(and_(p, q), interp) is False
        assert evaluate(or_(p, q), interp) is True
        assert evaluate(not_(q), interp) is True

    def test_formula_ite(self):
        interp = Interpretation(bool_values={"p": False, "q": True, "r": False})
        node = ite_formula(bvar("p"), bvar("q"), bvar("r"))
        assert evaluate(node, interp) is False

    def test_term_ite(self):
        interp = Interpretation(term_values={"x": 1, "y": 2}, bool_values={"p": True})
        node = ite_term(bvar("p"), tvar("x"), tvar("y"))
        assert evaluate(node, interp) == 1

    def test_equation(self):
        interp = Interpretation(term_values={"x": 2, "y": 2, "z": 3})
        assert evaluate(eq(tvar("x"), tvar("y")), interp) is True
        assert evaluate(eq(tvar("x"), tvar("z")), interp) is False


class TestUninterpretedFunctions:
    def test_functional_consistency(self, interp):
        a = uf("f", [tvar("x")])
        b = uf("f", [tvar("x")])
        assert evaluate(a, interp) == evaluate(b, interp)

    def test_equal_args_equal_results(self):
        interp = Interpretation(term_values={"x": 1, "y": 1})
        fx = uf("f", [tvar("x")])
        fy = uf("f", [tvar("y")])
        assert evaluate(eq(fx, fy), interp) is True

    def test_predicate_consistency(self, interp):
        assert evaluate(up("p", [tvar("x")]), interp) == evaluate(
            up("p", [tvar("x")]), interp
        )

    def test_nested_applications(self, interp):
        node = uf("f", [uf("g", [tvar("x")]), tvar("y")])
        assert 0 <= evaluate(node, interp) < interp.domain_size


class TestMemorySemantics:
    def test_read_after_write_same_address(self):
        interp = Interpretation(term_values={"a": 1, "b": 1, "d": 3})
        m = tvar("RF")
        node = read(write(m, tvar("a"), tvar("d")), tvar("b"))
        assert evaluate(node, interp) == 3

    def test_read_after_write_different_address(self):
        interp = Interpretation(term_values={"a": 1, "b": 2, "d": 3})
        m = tvar("RF")
        chained = read(write(m, tvar("a"), tvar("d")), tvar("b"))
        direct = read(m, tvar("b"))
        assert evaluate(chained, interp) == evaluate(direct, interp)

    def test_last_write_wins(self):
        interp = Interpretation(term_values={"a": 1, "d1": 2, "d2": 3})
        m = tvar("RF")
        a = tvar("a")
        node = read(write(write(m, a, tvar("d1")), a, tvar("d2")), a)
        assert evaluate(node, interp) == 3

    def test_memory_extensional_equality(self):
        interp = Interpretation(term_values={"a": 1, "d": 3})
        m = tvar("RF")
        a, d = tvar("a"), tvar("d")
        # Writing the same value twice leaves the memory equal to writing once.
        once = write(m, a, d)
        twice = write(write(m, a, d), a, d)
        assert evaluate(eq(once, twice), interp) is True

    def test_write_of_default_restores_initial_state(self):
        interp = Interpretation(term_values={"a": 1})
        m = tvar("RF")
        a = tvar("a")
        initial_data = evaluate(read(m, a), interp)
        interp.set_term("d", initial_data)
        assert evaluate(eq(write(m, a, tvar("d")), m), interp) is True

    def test_distinct_memories_differ_generically(self, interp):
        assert isinstance(evaluate(write(tvar("M1"), tvar("a"), tvar("d")), interp), MemVal)

    def test_sort_inference_marks_chain(self):
        m = tvar("RF")
        node = read(write(m, tvar("a"), tvar("d")), tvar("b"))
        memory = infer_memory_sorts(node)
        assert m in memory
        assert node.mem in memory

    def test_ite_of_memories(self):
        interp = Interpretation(
            term_values={"a": 1, "d": 3, "b": 1}, bool_values={"p": True}
        )
        m = tvar("RF")
        selected = ite_term(bvar("p"), write(m, tvar("a"), tvar("d")), m)
        assert evaluate(read(selected, tvar("b")), interp) == 3

    def test_read_of_plain_value_rejected(self):
        interp = Interpretation()
        x = tvar("plain")
        # Force x to be treated as a value first via an equation, then as
        # memory: evaluation sees it as memory-sorted, which is consistent;
        # instead check a UF result used as memory is rejected.
        node = read(uf("f", [x]), tvar("a"))
        with pytest.raises(SortError):
            evaluate(node, interp)


class TestValidityByEnumeration:
    def test_ite_case_split_identity(self):
        p = bvar("p")
        x, y = tvar("x"), tvar("y")
        node = ite_term(p, x, y)
        for seed in range(16):
            interp = Interpretation(domain_size=3, seed=seed)
            expected = (
                evaluate(x, interp) if evaluate(p, interp) else evaluate(y, interp)
            )
            assert evaluate(node, interp) == expected

    def test_congruence_over_many_interps(self):
        x, y = tvar("x"), tvar("y")
        premise = eq(x, y)
        conclusion = eq(uf("f", [x]), uf("f", [y]))
        for seed in range(32):
            interp = Interpretation(domain_size=3, seed=seed)
            if evaluate(premise, interp):
                assert evaluate(conclusion, interp)
