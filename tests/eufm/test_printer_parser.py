"""Round-trip and format tests for the S-expression printer and parser."""

import pytest

from repro.eufm import (
    FALSE,
    TRUE,
    ParseError,
    and_,
    bvar,
    eq,
    ite_formula,
    ite_term,
    not_,
    or_,
    parse,
    pretty,
    read,
    to_sexpr,
    tvar,
    uf,
    up,
    write,
)


def _examples():
    x, y, m, a, d = tvar("x"), tvar("y"), tvar("m"), tvar("a"), tvar("d")
    p, q = bvar("p"), bvar("q")
    return [
        x,
        p,
        TRUE,
        FALSE,
        uf("f", [x, y]),
        uf("nullary", []),
        up("pred", [x]),
        ite_term(p, x, y),
        ite_formula(p, q, eq(x, y)),
        eq(uf("f", [x]), y),
        not_(p),
        and_(p, q, eq(x, y)),
        or_(p, not_(q)),
        read(write(m, a, d), tvar("b")),
        eq(write(m, a, d), m),
    ]


class TestPrinter:
    def test_simple_forms(self):
        assert to_sexpr(tvar("x")) == "x"
        assert to_sexpr(bvar("p")) == "$p"
        assert to_sexpr(TRUE) == "true"
        assert to_sexpr(eq(tvar("x"), tvar("y"))) in ("(= x y)", "(= y x)")

    def test_uf_form(self):
        assert to_sexpr(uf("f", [tvar("x")])) == "(f x)"

    def test_up_form(self):
        assert to_sexpr(up("pr", [tvar("x")])) == "($pr x)"

    def test_memory_form(self):
        m, a, d = tvar("m"), tvar("a"), tvar("d")
        assert to_sexpr(write(m, a, d)) == "(write m a d)"

    def test_pretty_fits_on_one_line_when_short(self):
        node = eq(tvar("x"), tvar("y"))
        assert "\n" not in pretty(node)

    def test_pretty_wraps_long_expressions(self):
        node = and_(*[eq(tvar(f"a{i}"), tvar(f"b{i}")) for i in range(20)])
        assert "\n" in pretty(node, max_width=40)


class TestRoundTrip:
    @pytest.mark.parametrize("node", _examples(), ids=lambda n: to_sexpr(n)[:40])
    def test_parse_inverts_print(self, node):
        assert parse(to_sexpr(node)) is node

    def test_whitespace_insensitive(self):
        assert parse("(=   x\n  y)") is eq(tvar("x"), tvar("y"))

    def test_deep_expression_round_trip(self):
        node = tvar("base")
        for _ in range(2000):
            node = uf("f", [node])
        assert parse(to_sexpr(node)) is node


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(",
            ")",
            "(= x)",
            "(ite $p x $q)",
            "(not x)",
            "(and x $p)",
            "($ x)",
            "(= x y) extra",
            "()",
        ],
    )
    def test_malformed_inputs_rejected(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_ite_requires_formula_condition(self):
        with pytest.raises(ParseError):
            parse("(ite x y z)")
