"""Tests for guarded-write-chain utilities (Fig. 2 update triples)."""

import pytest

from repro.eufm import (
    TRUE,
    Interpretation,
    Update,
    and_,
    apply_updates,
    bvar,
    chain_read,
    collect_updates,
    eq,
    evaluate,
    ite_term,
    not_,
    push_read,
    read,
    tvar,
    write,
)


def _chain():
    base = tvar("RF")
    updates = [
        Update(bvar("c1"), tvar("a1"), tvar("d1")),
        Update(TRUE, tvar("a2"), tvar("d2")),
        Update(and_(bvar("c3"), bvar("c4")), tvar("a3"), tvar("d3")),
    ]
    return base, updates


class TestCollectApply:
    def test_round_trip(self):
        base, updates = _chain()
        mem = apply_updates(base, updates)
        got_base, got_updates = collect_updates(mem)
        assert got_base is base
        assert got_updates == updates

    def test_plain_write_has_true_context(self):
        base = tvar("RF")
        mem = write(base, tvar("a"), tvar("d"))
        got_base, got_updates = collect_updates(mem)
        assert got_base is base
        assert got_updates == [Update(TRUE, tvar("a"), tvar("d"))]

    def test_non_chain_rejected(self):
        base = tvar("RF")
        other = tvar("RF2")
        mem = ite_term(bvar("p"), write(base, tvar("a"), tvar("d")), other)
        with pytest.raises(ValueError):
            collect_updates(mem)

    def test_negated_guard_chain(self):
        base = tvar("RF")
        mem = ite_term(
            bvar("p"), base, write(base, tvar("a"), tvar("d"))
        )
        got_base, got_updates = collect_updates(mem)
        assert got_base is base
        assert got_updates == [Update(not_(bvar("p")), tvar("a"), tvar("d"))]

    def test_empty_chain(self):
        base = tvar("RF")
        got_base, got_updates = collect_updates(base)
        assert got_base is base
        assert got_updates == []


class TestChainRead:
    def _assert_equivalent(self, lhs, rhs, seeds=range(40)):
        for seed in seeds:
            interp = Interpretation(domain_size=3, seed=seed)
            assert evaluate(lhs, interp) == evaluate(rhs, interp), f"seed={seed}"

    def test_chain_read_matches_memory_semantics(self):
        base, updates = _chain()
        mem = apply_updates(base, updates)
        addr = tvar("probe")
        direct = read(mem, addr)
        chained = chain_read(base, updates, addr)
        self._assert_equivalent(direct, chained)

    def test_chain_read_has_no_memory_left_when_base_read(self):
        base, updates = _chain()
        chained = chain_read(base, updates, tvar("probe"))
        # only the base read remains
        from repro.eufm import memory_nodes

        mems = memory_nodes(chained)
        assert len(mems) == 1
        assert mems[0].kind == "read"

    def test_push_read_equivalence(self):
        base, updates = _chain()
        node = read(apply_updates(base, updates), tvar("probe"))
        pushed = push_read(node)
        assert pushed is not node
        self._assert_equivalent(node, pushed)

    def test_push_read_of_non_read_is_identity(self):
        x = tvar("x")
        assert push_read(x) is x

    def test_push_read_of_unstructured_memory_is_identity(self):
        mem = ite_term(bvar("p"), tvar("M1"), tvar("M2"))
        node = read(mem, tvar("a"))
        assert push_read(node) is node


class TestUpdate:
    def test_as_write_guards_correctly(self):
        update = Update(bvar("c"), tvar("a"), tvar("d"))
        mem = update.as_write(tvar("RF"))
        probe = tvar("probe")
        guarded = read(mem, probe)
        written = read(write(tvar("RF"), tvar("a"), tvar("d")), probe)
        untouched = read(tvar("RF"), probe)
        for seed in range(20):
            interp = Interpretation(domain_size=3, seed=seed)
            want = (
                evaluate(written, interp)
                if evaluate(bvar("c"), interp)
                else evaluate(untouched, interp)
            )
            assert evaluate(guarded, interp) == want

    def test_with_context(self):
        update = Update(bvar("c"), tvar("a"), tvar("d"))
        stronger = update.with_context(and_(bvar("c"), bvar("e")))
        assert stronger.addr is update.addr
        assert stronger.data is update.data
        assert stronger.context is and_(bvar("c"), bvar("e"))
