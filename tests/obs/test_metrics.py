"""Metrics registry, snapshot persistence, and the tolerance comparator."""

import threading

import pytest

from repro.obs import (
    DEFAULT_TOLERANCES,
    MetricsRegistry,
    MetricsSnapshot,
    Tolerance,
    compare_snapshots,
    merge_snapshots,
)


class TestRegistry:
    def test_inc_set_and_merge(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.set_gauge("g", 1.5)
        registry.merge({"a": 1, "b": 4})
        assert registry.values() == {"a": 4.0, "b": 4.0, "g": 1.5}
        registry.clear()
        assert registry.values() == {}

    def test_snapshot_freezes_values(self):
        registry = MetricsRegistry()
        registry.inc("a")
        snapshot = registry.snapshot(meta={"run": "x"})
        registry.inc("a")
        assert snapshot.metrics == {"a": 1.0}
        assert snapshot.meta == {"run": "x"}

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.values()["n"] == 4000.0


class TestSnapshotPersistence:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "nested" / "snap.json"
        snapshot = MetricsSnapshot(
            metrics={"sat.conflicts": 7.0}, meta={"config": "N=4, k=2"}
        )
        snapshot.save(path)
        loaded = MetricsSnapshot.load(path)
        assert loaded.metrics == snapshot.metrics
        assert loaded.meta == snapshot.meta


class TestTolerances:
    def test_limit_combines_relative_and_absolute(self):
        tol = Tolerance(rel=0.5, abs=2.0)
        assert tol.limit(10.0) == pytest.approx(17.0)

    def test_default_rules_are_generous_for_timings_only(self):
        timing = [t for p, t in DEFAULT_TOLERANCES if p == "timings.*"][0]
        catch_all = [t for p, t in DEFAULT_TOLERANCES if p == "*"][0]
        assert timing.rel > 0 and timing.abs > 0
        assert catch_all.rel == 0 and catch_all.abs == 0

    def test_default_rules_gate_cpu_but_only_advise_on_wall(self):
        by_pattern = dict(DEFAULT_TOLERANCES)
        assert not by_pattern["cpu.*"].advisory
        assert not by_pattern["*cpu_seconds*"].advisory
        assert by_pattern["timings.*"].advisory
        assert by_pattern["*seconds*"].advisory
        # cpu.* must match before the advisory wall-clock catch-alls.
        patterns = [p for p, _ in DEFAULT_TOLERANCES]
        assert patterns.index("cpu.*") < patterns.index("*seconds*")

    def test_describe_mentions_advisory(self):
        assert "advisory" in Tolerance(rel=1.0, advisory=True).describe()
        assert "advisory" not in Tolerance(rel=1.0).describe()


class TestCompare:
    def snap(self, **metrics):
        return MetricsSnapshot(metrics={k: float(v) for k, v in metrics.items()})

    def test_identical_snapshots_pass(self):
        base = self.snap(**{"sat.conflicts": 7, "timings.total": 1.0})
        report = compare_snapshots(base, base)
        assert report.ok
        assert report.regressions == []

    def test_count_increase_is_a_regression(self):
        report = compare_snapshots(
            self.snap(**{"sat.conflicts": 7}), self.snap(**{"sat.conflicts": 8})
        )
        assert not report.ok
        assert [d.name for d in report.regressions] == ["sat.conflicts"]

    def test_decrease_is_never_a_regression(self):
        report = compare_snapshots(
            self.snap(**{"sat.conflicts": 7, "timings.total": 5.0}),
            self.snap(**{"sat.conflicts": 2, "timings.total": 0.1}),
        )
        assert report.ok

    def test_timing_noise_is_tolerated_by_default(self):
        report = compare_snapshots(
            self.snap(**{"timings.total": 0.010}),
            self.snap(**{"timings.total": 0.100}),
        )
        assert report.ok

    def test_first_matching_rule_wins(self):
        rules = [
            ("sat.*", Tolerance(rel=1.0)),
            ("*", Tolerance()),
        ]
        report = compare_snapshots(
            self.snap(**{"sat.conflicts": 10}),
            self.snap(**{"sat.conflicts": 19}),
            rules=rules,
        )
        assert report.ok

    def test_missing_metric_is_a_regression(self):
        report = compare_snapshots(
            self.snap(**{"sat.conflicts": 7}), self.snap()
        )
        assert not report.ok
        assert report.regressions[0].note == "metric disappeared"

    def test_new_metric_is_informational(self):
        report = compare_snapshots(
            self.snap(), self.snap(**{"sat.conflicts": 7})
        )
        assert report.ok
        assert report.deltas[0].note == "new metric"

    def test_render_and_to_dict(self):
        report = compare_snapshots(
            self.snap(**{"sat.conflicts": 7}), self.snap(**{"sat.conflicts": 9})
        )
        text = report.render()
        assert "1 regression(s)" in text
        assert "sat.conflicts" in text
        data = report.to_dict()
        assert data["ok"] is False
        assert data["regressions"] == ["sat.conflicts"]

    def test_advisory_exceedance_is_reported_but_never_fails(self):
        rules = [("timings.*", Tolerance(advisory=True)), ("*", Tolerance())]
        report = compare_snapshots(
            self.snap(**{"timings.total": 0.1}),
            self.snap(**{"timings.total": 100.0}),
            rules=rules,
        )
        assert report.ok
        assert report.regressions == []
        delta = [d for d in report.deltas if d.name == "timings.total"][0]
        assert "advisory" in delta.note

    def test_wall_clock_spike_passes_but_cpu_spike_fails_by_default(self):
        # The flaky-gate fix: a 100x wall-clock spike (scheduler noise on a
        # loaded runner) passes, while the same spike in CPU time fails.
        wall = compare_snapshots(
            self.snap(**{"timings.sat": 0.05}),
            self.snap(**{"timings.sat": 5.0}),
        )
        assert wall.ok
        cpu = compare_snapshots(
            self.snap(**{"cpu.sat": 0.05}),
            self.snap(**{"cpu.sat": 5.0}),
        )
        assert not cpu.ok
        assert [d.name for d in cpu.regressions] == ["cpu.sat"]


class TestMergeSnapshots:
    def test_merge_sums_metrics(self):
        merged = merge_snapshots([
            MetricsSnapshot(metrics={"a": 1.0, "b": 2.0}),
            MetricsSnapshot(metrics={"a": 3.0, "c": 0.5}),
        ])
        assert merged.metrics == {"a": 4.0, "b": 2.0, "c": 0.5}
        assert merged.meta["merged_from"] == 2

    def test_merge_carries_supplied_meta(self):
        merged = merge_snapshots(
            [MetricsSnapshot(metrics={"a": 1.0})], meta={"run": "x"}
        )
        assert merged.meta["run"] == "x"
        assert merged.meta["merged_from"] == 1

    def test_merge_of_nothing_is_empty(self):
        merged = merge_snapshots([])
        assert merged.metrics == {}
