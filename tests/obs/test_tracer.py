"""Span tracer unit tests: nesting, counters, threads, and the null path."""

import threading

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.root
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_durations_are_recorded_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10_000))
        root = tracer.root
        assert root.wall_seconds > 0.0
        assert root.cpu_seconds >= 0.0
        inner = root.children[0]
        assert 0.0 <= inner.wall_seconds
        assert root.start_offset <= inner.start_offset

    def test_counters_accumulate_on_current_span(self):
        tracer = Tracer()
        with tracer.span("phase") as span:
            tracer.add("work.items", 3)
            tracer.add("work.items", 2)
            tracer.set("work.gauge", 7.5)
            span.add("direct")
        assert tracer.root.counters == {
            "work.items": 5.0,
            "work.gauge": 7.5,
            "direct": 1.0,
        }

    def test_add_outside_any_span_is_dropped(self):
        tracer = Tracer()
        tracer.add("orphan", 1)
        assert tracer.roots == []
        assert tracer.current() is None

    def test_walk_find_total_and_all_counters(self):
        root = Span("a")
        child = Span("b")
        grand = Span("b")
        root.children.append(child)
        child.children.append(grand)
        child.add("n", 2)
        grand.add("n", 3)
        assert [s.name for s in root.walk()] == ["a", "b", "b"]
        assert root.find("b") is child
        assert root.find("missing") is None
        assert root.total("n") == 5.0
        assert root.all_counters() == {"n": 5.0}

    def test_to_dict_round_trips(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("k", 4)
        rebuilt = Span.from_dict(tracer.root.to_dict())
        assert rebuilt.name == "outer"
        assert rebuilt.children[0].name == "inner"
        assert rebuilt.children[0].counters == {"k": 4.0}


class TestThreadSafety:
    def test_worker_thread_spans_do_not_corrupt_nesting(self):
        tracer = Tracer()
        errors = []

        def worker(tag):
            try:
                for _ in range(50):
                    with tracer.span(f"w{tag}"):
                        tracer.add("ticks", 1)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with tracer.span("main"):
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        # The open-span stack is thread-local: worker spans become their
        # own roots instead of attaching under another thread's span.
        assert tracer.roots[0].name == "main"
        worker_roots = [s for s in tracer.roots if s.name.startswith("w")]
        assert len(worker_roots) == 200
        assert sum(s.counters.get("ticks", 0) for s in worker_roots) == 200


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            span.add("x", 1)
            span.set("y", 2)
            tracer.add("z", 3)
        assert tracer.roots == []
        assert tracer.root is None
        assert tracer.current() is None
        assert span.counters == {}

    def test_null_span_is_a_shared_singleton(self):
        tracer = NullTracer()
        with tracer.span("a") as one:
            pass
        with tracer.span("b") as two:
            pass
        assert one is two
