"""Exporter tests: span-tree rendering, JSON/Chrome round-trips, CSV."""

from repro.obs import (
    MetricsSnapshot,
    Span,
    Tracer,
    metrics_to_csv,
    render_span_tree,
    trace_from_chrome,
    trace_from_json,
    trace_to_chrome,
    trace_to_json,
)
from repro.core.reporting import render_span_tree as core_render_span_tree


def sample_tree():
    tracer = Tracer()
    with tracer.span("verify"):
        with tracer.span("simulate"):
            tracer.add("tlsim.cycles", 13)
        with tracer.span("translate"):
            with tracer.span("tseitin"):
                tracer.add("tseitin.cnf_vars", 17)
        with tracer.span("sat"):
            tracer.add("sat.conflicts", 7)
    return tracer.root


class TestRenderSpanTree:
    def test_renders_names_indentation_and_counters(self):
        text = render_span_tree(sample_tree())
        lines = text.splitlines()
        assert lines[0].startswith("verify")
        assert lines[1].startswith("  simulate")
        assert lines[3].startswith("    tseitin")
        assert "tlsim.cycles=13" in text
        assert "wall" in lines[0] and "cpu" in lines[0]

    def test_counters_can_be_suppressed(self):
        text = render_span_tree(sample_tree(), counters=False)
        assert "tlsim.cycles" not in text

    def test_core_reporting_delegate(self):
        root = sample_tree()
        assert core_render_span_tree(root) == render_span_tree(root)
        titled = core_render_span_tree(root, title="Trace")
        assert titled.startswith("Trace\nverify")


class TestJsonRoundTrip:
    def test_lossless(self):
        root = sample_tree()
        rebuilt = trace_from_json(trace_to_json(root))
        assert rebuilt.to_dict() == root.to_dict()


class TestChromeTrace:
    def test_event_shape(self):
        root = sample_tree()
        payload = trace_to_chrome(root)
        events = payload["traceEvents"]
        assert len(events) == 5
        assert all(ev["ph"] == "X" for ev in events)
        assert events[0]["name"] == "verify"
        assert events[0]["ts"] == 0.0
        # Microsecond durations: the root lasts at least as long as a child.
        assert events[0]["dur"] >= events[1]["dur"]
        sat = [ev for ev in events if ev["name"] == "sat"][0]
        assert sat["args"]["counters"] == {"sat.conflicts": 7.0}

    def test_round_trip_restores_names_nesting_and_counters(self):
        root = sample_tree()
        roots = trace_from_chrome(trace_to_chrome(root))
        assert len(roots) == 1
        rebuilt = roots[0]
        assert [s.name for s in rebuilt.walk()] == [
            s.name for s in root.walk()
        ]
        assert rebuilt.find("sat").counters == {"sat.conflicts": 7.0}
        assert len(rebuilt.children) == 3

    def test_round_trip_handles_zero_duration_siblings(self):
        # Coincident zero-length intervals would be ambiguous under pure
        # containment; the embedded indices must disambiguate them.
        root = Span("root")
        root.children = [Span("a"), Span("b")]
        roots = trace_from_chrome(trace_to_chrome(root))
        assert [c.name for c in roots[0].children] == ["a", "b"]
        assert roots[0].children[0].children == []

    def test_containment_fallback_for_foreign_traces(self):
        payload = {
            "traceEvents": [
                {"name": "outer", "ph": "X", "ts": 0, "dur": 100,
                 "pid": 1, "tid": 1},
                {"name": "inner", "ph": "X", "ts": 10, "dur": 50,
                 "pid": 1, "tid": 1},
                {"name": "other-thread", "ph": "X", "ts": 20, "dur": 10,
                 "pid": 1, "tid": 2},
            ]
        }
        roots = trace_from_chrome(payload)
        names = {root.name for root in roots}
        assert names == {"outer", "other-thread"}
        outer = [r for r in roots if r.name == "outer"][0]
        assert [c.name for c in outer.children] == ["inner"]


class TestCsv:
    def test_sorted_rows_with_header(self):
        snapshot = MetricsSnapshot(metrics={"b": 2.0, "a": 1.5})
        assert metrics_to_csv(snapshot) == "metric,value\na,1.5\nb,2\n"
