"""End-to-end trace integration: verify(trace=True) must produce a span
tree covering every pipeline layer with nonzero work counters."""

import pytest

from repro import ProcessorConfig, verify
from repro.errors import BudgetExhausted
from repro.obs import NULL_TRACER, current_tracer, snapshot_from_result

CONFIG = ProcessorConfig(n_rob=4, issue_width=2)


@pytest.fixture(scope="module")
def traced_result():
    return verify(CONFIG, trace=True)


class TestSpanTreeCoverage:
    def test_trace_attached_only_when_requested(self, traced_result):
        assert traced_result.trace is not None
        untraced = verify(ProcessorConfig(n_rob=2, issue_width=1))
        assert untraced.trace is None

    def test_tree_covers_the_pipeline_phases(self, traced_result):
        root = traced_result.trace
        assert root.name == "verify"
        names = [child.name for child in root.children]
        assert names == ["simulate", "rewrite", "translate", "sat"]
        # The encoding stages nest under "translate".
        translate = root.find("translate")
        stages = [child.name for child in translate.children]
        assert stages == [
            "memory", "polarity", "uf_elim", "eij", "transitivity", "tseitin",
        ]

    def test_every_layer_reports_nonzero_counters(self, traced_result):
        counters = traced_result.trace.all_counters()
        for counter in (
            "tlsim.cycles",              # symbolic simulation
            "rewrite.entries_proved",    # rewriting engine
            "rewrite.rule.remove",
            "encode.fresh_term_vars",    # encoding pipeline
            "encode.p_vars",
            "tseitin.cnf_vars",          # CNF translation
            "sat.decisions",             # SAT solver
            "sat.propagations",
        ):
            assert counters.get(counter, 0) > 0, counter
        # Nodes built is an intern-table delta: positive on a fresh
        # process, but earlier tests may have pre-interned this
        # configuration's expressions (hash-consing is global).
        assert counters.get("tlsim.nodes_built", -1) >= 0

    def test_analyze_adds_a_phase_span(self):
        result = verify(
            ProcessorConfig(n_rob=2, issue_width=1), analyze=True, trace=True
        )
        assert result.trace.find("analyze") is not None
        assert "analyze" in result.timings


class TestDerivedTimings:
    def test_timings_are_a_view_of_the_span_tree(self, traced_result):
        root = traced_result.trace
        timings = traced_result.timings
        assert timings["total"] == root.wall_seconds
        for child in root.children:
            assert timings[child.name] == child.wall_seconds

    def test_phases_sum_to_at_most_total(self, traced_result):
        timings = traced_result.timings
        phases = sum(v for k, v in timings.items() if k != "total")
        assert phases <= timings["total"] + 1e-6

    def test_expected_phase_keys_present(self, traced_result):
        for phase in ("simulate", "rewrite", "translate", "sat", "total"):
            assert traced_result.timings[phase] > 0.0, phase

    def test_untraced_runs_still_get_timings(self):
        result = verify(ProcessorConfig(n_rob=2, issue_width=1))
        assert result.timings["total"] > 0.0
        assert "simulate" in result.timings


class TestBudgetPathTimings:
    def test_budget_error_carries_span_derived_phases(self):
        with pytest.raises(BudgetExhausted) as info:
            verify(
                ProcessorConfig(n_rob=3, issue_width=3),
                method="positive_equality",
                max_conflicts=1,
            )
        timings = info.value.timings
        for phase in ("simulate", "translate", "sat", "total"):
            assert phase in timings, phase
        assert timings["total"] >= timings["simulate"]


class TestAmbientIsolation:
    def test_verify_restores_the_ambient_tracer(self):
        assert current_tracer() is NULL_TRACER
        verify(ProcessorConfig(n_rob=2, issue_width=1), trace=True)
        assert current_tracer() is NULL_TRACER


class TestSnapshotFromTracedResult:
    def test_snapshot_includes_all_layers(self, traced_result):
        snapshot = snapshot_from_result(traced_result)
        metrics = snapshot.metrics
        assert metrics["timings.total"] > 0
        assert metrics["sat.decisions"] > 0
        assert metrics["rewrite.entries_proved"] > 0
        assert metrics["encode.cnf_vars"] > 0
        assert metrics["trace.tlsim.cycles"] > 0
        assert snapshot.meta["method"] == "rewriting"
        assert snapshot.meta["correct"] is True
