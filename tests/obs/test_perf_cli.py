"""CLI tests for ``python -m repro perf`` and ``python -m repro trace``."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.obs.cli import _parse_tolerance, perf_main, trace_main
from repro.obs.metrics import MetricsSnapshot, Tolerance


RUN = ["--rob", "2", "--width", "1"]


class TestParseTolerance:
    def test_rel_only(self):
        pattern, tol = _parse_tolerance("timings.*=rel:0.5")
        assert pattern == "timings.*"
        assert tol == Tolerance(rel=0.5, abs=0.0)

    def test_rel_plus_abs(self):
        _, tol = _parse_tolerance("sat.*=rel:1+abs:10")
        assert tol == Tolerance(rel=1.0, abs=10.0)

    def test_advisory_flag(self):
        _, tol = _parse_tolerance("timings.*=rel:2+abs:1+advisory")
        assert tol == Tolerance(rel=2.0, abs=1.0, advisory=True)

    def test_advisory_alone(self):
        _, tol = _parse_tolerance("*seconds*=advisory")
        assert tol == Tolerance(advisory=True)

    @pytest.mark.parametrize(
        "bad", ["no-equals", "x=rel", "x=nope:1", "x=rel:1:abs"]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            _parse_tolerance(bad)


class TestPerfRecordCompare:
    def test_record_then_compare_is_clean(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert perf_main(["record", *RUN, "--out", str(base)]) == 0
        snapshot = MetricsSnapshot.load(base)
        assert snapshot.metrics["timings.total"] > 0
        assert snapshot.metrics["sat.decisions"] >= 0

        current = tmp_path / "current.json"
        assert perf_main(["record", *RUN, "--out", str(current)]) == 0
        code = perf_main(["compare", str(base), str(current)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_perturbed_count_fails_the_gate(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        perf_main(["record", *RUN, "--out", str(base)])
        snapshot = MetricsSnapshot.load(base)
        worse = MetricsSnapshot(
            metrics=dict(snapshot.metrics), meta=dict(snapshot.meta)
        )
        worse.metrics["sat.decisions"] = snapshot.metrics["sat.decisions"] + 50
        current = tmp_path / "current.json"
        worse.save(current)
        assert perf_main(["compare", str(base), str(current)]) == 1
        assert "sat.decisions" in capsys.readouterr().out

    def test_tolerance_override_can_absorb_the_perturbation(self, tmp_path):
        base = tmp_path / "base.json"
        perf_main(["record", *RUN, "--out", str(base)])
        snapshot = MetricsSnapshot.load(base)
        snapshot.metrics["sat.decisions"] += 50
        current = tmp_path / "current.json"
        snapshot.save(current)
        code = perf_main(
            ["compare", str(base), str(current),
             "--tol", "sat.decisions=abs:100"]
        )
        assert code == 0

    def test_compare_json_output(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        perf_main(["record", *RUN, "--out", str(base)])
        capsys.readouterr()  # drain the record command's output
        code = perf_main(["compare", str(base), str(base), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_missing_snapshot_is_a_setup_error(self, tmp_path, capsys):
        code = perf_main(
            ["compare", str(tmp_path / "nope.json"), str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "perf compare error" in capsys.readouterr().err

    def test_record_writes_trace_and_csv_sidecars(self, tmp_path):
        base = tmp_path / "base.json"
        trace = tmp_path / "trace.json"
        csv = tmp_path / "metrics.csv"
        code = perf_main(
            ["record", *RUN, "--out", str(base),
             "--trace-out", str(trace), "--csv-out", str(csv)]
        )
        assert code == 0
        chrome = json.loads(trace.read_text())
        assert chrome["traceEvents"][0]["name"] == "verify"
        assert csv.read_text().startswith("metric,value\n")


class TestTraceCommand:
    def test_tree_output(self, capsys):
        assert trace_main([*RUN]) == 0
        out = capsys.readouterr().out
        assert out.startswith("verify")
        assert "simulate" in out and "sat" in out

    def test_chrome_output_to_file(self, tmp_path):
        out = tmp_path / "t.json"
        assert trace_main([*RUN, "--format", "chrome", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"


class TestMainDispatch:
    def test_main_routes_perf_and_trace(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert repro_main(["perf", "record", *RUN, "--out", str(base)]) == 0
        assert repro_main(["trace", *RUN]) == 0
        assert base.exists()
        assert "verify" in capsys.readouterr().out
