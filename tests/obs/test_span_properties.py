"""Property tests over randomly shaped span trees.

Two invariants: a span's wall time dominates the sum of its children's
(children are strictly nested under a monotonic clock), and the Chrome
trace-event export round-trips the exact names and nesting.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import Tracer, trace_from_chrome, trace_to_chrome

#: (name, [children]) recursive tree shapes.
_names = st.sampled_from(["verify", "simulate", "translate", "sat", "x"])
_trees = st.recursive(
    st.tuples(_names, st.just([])),
    lambda children: st.tuples(_names, st.lists(children, max_size=3)),
    max_leaves=10,
)

#: float rounding slack when subtracting two perf_counter readings.
_EPS = 1e-6


def _execute(tracer, node):
    name, children = node
    with tracer.span(name) as span:
        span.add("opened", 1)
        for child in children:
            _execute(tracer, child)


def _shape(span):
    return (span.name, [_shape(child) for child in span.children])


@settings(max_examples=100, deadline=None)
@given(_trees)
def test_span_wall_dominates_children(tree):
    tracer = Tracer()
    _execute(tracer, tree)
    for span in tracer.root.walk():
        children_wall = sum(child.wall_seconds for child in span.children)
        assert span.wall_seconds + _EPS >= children_wall


@settings(max_examples=100, deadline=None)
@given(_trees)
def test_chrome_export_round_trips_names_and_nesting(tree):
    tracer = Tracer()
    _execute(tracer, tree)
    roots = trace_from_chrome(trace_to_chrome(tracer.root))
    assert len(roots) == 1
    assert _shape(roots[0]) == _shape(tracer.root)
    # Every span carries its counter through the round-trip.
    for span in roots[0].walk():
        assert span.counters == {"opened": 1.0}
