"""Per-job perf metrics must be journaled and survive crash-and-resume."""

from repro.campaign import CampaignRunner, Job, JobResult
from repro.core.results import VerificationResult
from repro.processor.params import ProcessorConfig


class TestJobResultMetrics:
    def test_from_verification_captures_metrics(self):
        config = ProcessorConfig(n_rob=2, issue_width=1)
        result = VerificationResult(
            config=config, method="rewriting", bug=None, correct=True,
            timings={"total": 1.25, "sat": 0.5},
        )
        job_result = JobResult.from_verification(
            Job.build(2, 1), "rewriting", 1, result
        )
        assert job_result.metrics["timings.total"] == 1.25
        assert job_result.metrics["timings.sat"] == 0.5

    def test_metrics_round_trip_through_dict(self):
        original = JobResult(
            job_id="j", status="PROVED", method="rewriting", attempts=1,
            metrics={"timings.total": 2.0, "sat.conflicts": 9.0},
        )
        rebuilt = JobResult.from_dict(original.to_dict())
        assert rebuilt.metrics == original.metrics

    def test_legacy_records_without_metrics_still_load(self):
        data = {"job_id": "j", "status": "PROVED"}
        assert JobResult.from_dict(data).metrics == {}


class TestCampaignJournalsMetrics:
    def test_real_run_populates_metrics(self, tmp_path):
        runner = CampaignRunner(str(tmp_path / "j.jsonl"))
        job = Job.build(2, 1)
        report = runner.run([job])
        metrics = report.results[job.job_id].metrics
        assert metrics["timings.total"] > 0
        assert metrics["sat.decisions"] >= 0
        assert "rewrite.entries_proved" in metrics

    def test_metrics_survive_crash_and_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jobs = [Job.build(2, 1), Job.build(2, 2)]
        first = CampaignRunner(path).run(jobs)
        recorded = {
            job_id: result.metrics
            for job_id, result in first.results.items()
        }
        assert all(recorded.values())

        # Simulate the crash-and-restart: a fresh runner over the same
        # journal must replay the finished jobs without re-running them.
        resumed = CampaignRunner(path).run(jobs)
        for job_id, result in resumed.results.items():
            assert result.from_journal
            assert result.metrics == recorded[job_id]
