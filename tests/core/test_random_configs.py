"""Property test: every well-formed configuration verifies as correct."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ProcessorConfig, verify


@st.composite
def configs(draw):
    n = draw(st.integers(1, 8))
    k = draw(st.integers(1, min(n, 4)))
    l = draw(st.integers(1, min(n, 4)))
    return ProcessorConfig(n_rob=n, issue_width=k, retire_width=l)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs())
def test_rewriting_verifies_every_wellformed_config(config):
    result = verify(config)
    assert result.correct, (
        f"{config.describe()} failed: entry={result.suspected_entry}, "
        f"{result.failure_detail}"
    )
    assert result.encoding_stats.eij_primary == 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs(), st.booleans())
def test_criterion_choice_never_changes_the_verdict(config, use_case_split):
    criterion = "case_split" if use_case_split else "disjunction"
    assert verify(config, criterion=criterion).correct
