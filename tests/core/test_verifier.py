"""End-to-end tests of the public verification API."""

import pytest

from repro import Bug, BugKind, ProcessorConfig, forwarding_bug, verify
from repro.core import render_matrix, render_rows


class TestVerifyCorrect:
    @pytest.mark.parametrize("n,k", [(1, 1), (2, 2), (4, 2), (8, 4)])
    def test_rewriting_method(self, n, k):
        result = verify(ProcessorConfig(n_rob=n, issue_width=k))
        assert result.correct is True
        assert result.method == "rewriting"
        assert result.suspected_entry is None
        assert result.timings["total"] > 0

    @pytest.mark.parametrize("n,k", [(1, 1), (2, 1), (2, 2)])
    def test_positive_equality_method(self, n, k):
        result = verify(
            ProcessorConfig(n_rob=n, issue_width=k), method="positive_equality"
        )
        assert result.correct is True

    def test_methods_agree_on_small_configs(self):
        config = ProcessorConfig(n_rob=2, issue_width=2)
        by_rewriting = verify(config, method="rewriting")
        by_pe = verify(config, method="positive_equality")
        assert by_rewriting.correct == by_pe.correct is True

    def test_case_split_criterion(self):
        result = verify(
            ProcessorConfig(n_rob=3, issue_width=2), criterion="case_split"
        )
        assert result.correct is True

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            verify(ProcessorConfig(n_rob=1, issue_width=1), method="magic")

    def test_summary_readable(self):
        result = verify(ProcessorConfig(n_rob=2, issue_width=1))
        text = result.summary()
        assert "correct" in text
        assert "CNF" in text


class TestVerifyBuggy:
    def test_rewriting_names_the_slice(self):
        result = verify(
            ProcessorConfig(n_rob=8, issue_width=2), bug=forwarding_bug(6)
        )
        assert result.correct is False
        assert result.suspected_entry == 6

    def test_pe_finds_counterexample(self):
        result = verify(
            ProcessorConfig(n_rob=2, issue_width=1),
            method="positive_equality",
            bug=forwarding_bug(2),
        )
        assert result.correct is False
        assert result.counterexample

    def test_methods_agree_on_buggy_design(self):
        config = ProcessorConfig(n_rob=2, issue_width=1)
        bug = Bug(BugKind.RETIRE_WITHOUT_RESULT, entry=1)
        assert verify(config, bug=bug).correct is False
        assert verify(config, method="positive_equality", bug=bug).correct is False

    @pytest.mark.parametrize(
        "kind,entry",
        [
            (BugKind.FORWARD_WRONG_SOURCE, 3),
            (BugKind.FORWARD_STALE_RESULT, 4),
            (BugKind.EXECUTE_IGNORES_HAZARD, 2),
            (BugKind.RETIRE_WITHOUT_RESULT, 2),
            (BugKind.RETIRE_OUT_OF_ORDER, 2),
            (BugKind.RETIRE_IGNORES_VALID, 1),
            (BugKind.PC_SINGLE_INCREMENT, 1),
        ],
    )
    def test_every_bug_kind_detected_by_rewriting_flow(self, kind, entry):
        result = verify(
            ProcessorConfig(n_rob=4, issue_width=2), bug=Bug(kind, entry=entry)
        )
        assert result.correct is False

    def test_sat_budget_raises_timeout(self):
        with pytest.raises(TimeoutError):
            verify(
                ProcessorConfig(n_rob=3, issue_width=3),
                method="positive_equality",
                max_conflicts=5,
            )


class TestReporting:
    def test_render_matrix_with_dashes(self):
        text = render_matrix(
            "Table X",
            sizes=[2, 4],
            widths=[1, 2, 4],
            cell=lambda size, width: size * width,
        )
        assert "Table X" in text
        lines = text.splitlines()
        assert lines[-1].split() == ["4", "4", "8", "16"]
        assert "-" in lines[-2]  # (2, 4) impossible

    def test_render_rows(self):
        text = render_rows("T", ["a", "b"], [[1, 2], [3, 4]])
        assert "T" in text
        assert text.splitlines()[-1].split() == ["3", "4"]
