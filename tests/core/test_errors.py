"""Tests for the structured exception taxonomy and the budget path."""

import pytest

from repro import (
    BudgetExhausted,
    CampaignError,
    EncodingError,
    JournalError,
    ProcessorConfig,
    ReproError,
    RewriteFailed,
    SolverError,
    verify,
)
from repro.decision.splitter import BudgetExceeded
from repro.sat.cnf import Cnf
from repro.sat.solver import Solver


class TestTaxonomy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (BudgetExhausted, RewriteFailed, EncodingError,
                         SolverError, CampaignError, JournalError):
            assert issubclass(exc_type, ReproError)

    def test_budget_exhausted_is_a_timeout_error(self):
        # Backward compatibility: pre-taxonomy callers caught TimeoutError.
        assert issubclass(BudgetExhausted, TimeoutError)
        with pytest.raises(TimeoutError):
            raise BudgetExhausted("x")

    def test_journal_error_is_a_campaign_error(self):
        assert issubclass(JournalError, CampaignError)

    def test_decision_budget_joins_the_taxonomy(self):
        assert issubclass(BudgetExceeded, BudgetExhausted)

    def test_budget_exhausted_carries_structure(self):
        exc = BudgetExhausted("ran out", conflicts=17, seconds=1.5,
                              budget_kind="conflicts",
                              timings={"sat": 1.5})
        assert exc.conflicts == 17
        assert exc.seconds == 1.5
        assert exc.budget_kind == "conflicts"
        assert exc.timings == {"sat": 1.5}

    def test_rewrite_failed_carries_entry_and_stage(self):
        exc = RewriteFailed("bad shape", entry=7, stage="merge")
        assert exc.entry == 7
        assert exc.stage == "merge"


class TestVerifyBudgetPath:
    def test_tiny_conflict_budget_surfaces_budget_exhausted(self):
        with pytest.raises(BudgetExhausted) as info:
            verify(
                ProcessorConfig(n_rob=3, issue_width=3),
                method="positive_equality",
                max_conflicts=1,
            )
        exc = info.value
        assert exc.conflicts is not None and exc.conflicts >= 1
        assert exc.budget_kind == "conflicts"
        # The phases completed before the abort are still reported.
        for phase in ("simulate", "translate", "sat", "total"):
            assert phase in exc.timings, phase
        assert exc.timings["total"] > 0

    def test_seconds_budget_reports_its_kind(self):
        with pytest.raises(BudgetExhausted) as info:
            verify(
                ProcessorConfig(n_rob=3, issue_width=3),
                method="positive_equality",
                max_seconds=0.01,
            )
        assert info.value.budget_kind == "seconds"


class TestSolverErrors:
    def test_out_of_range_literal_raises_solver_error(self):
        cnf = Cnf(num_vars=2, clauses=[(1, 9)])
        with pytest.raises(SolverError):
            Solver(cnf)

    def test_zero_literal_raises_solver_error(self):
        cnf = Cnf(num_vars=2, clauses=[(1, 0)])
        with pytest.raises(SolverError):
            Solver(cnf)
