"""Stability contract of the canonical content keys (repro.core.keys)."""

import json
import os
import subprocess
import sys

import pytest

from repro import ProcessorConfig
from repro.core.keys import canonical_key, config_dict

REGISTRY = "5r-abcdefabcdef"  # a fixed registry pin for key stability


class TestConfigDict:
    def test_dataclass_and_mapping_agree(self):
        config = ProcessorConfig(n_rob=8, issue_width=2, retire_width=1)
        assert config_dict(config) == config_dict(
            {"n_rob": 8, "issue_width": 2, "retire_width": 1}
        )

    def test_retire_width_defaulting_cannot_split_the_keyspace(self):
        # retire_width=None means "same as issue width"; both spellings
        # must normalize to the identical canonical dict.
        explicit = config_dict({"n_rob": 4, "issue_width": 2,
                                "retire_width": 2})
        defaulted = config_dict({"n_rob": 4, "issue_width": 2})
        assert explicit == defaulted

    def test_string_numbers_normalize(self):
        assert config_dict({"n_rob": "4", "issue_width": "2"}) == \
            config_dict({"n_rob": 4, "issue_width": 2})

    def test_family_defaulting_cannot_split_the_keyspace(self):
        # An absent family means the default register-register family;
        # both spellings must normalize to the identical canonical dict.
        explicit = config_dict({"n_rob": 4, "issue_width": 2,
                                "family": "reg-reg"})
        defaulted = config_dict({"n_rob": 4, "issue_width": 2})
        assert explicit == defaulted
        assert explicit["family"] == "reg-reg"

    def test_family_mapping_and_dataclass_agree(self):
        config = ProcessorConfig(n_rob=4, issue_width=2, family="mem")
        assert config_dict(config) == config_dict(
            {"n_rob": 4, "issue_width": 2, "family": "mem"}
        )


class TestCanonicalKey:
    def test_field_order_never_matters(self):
        options_a = {"method": "rewriting", "criterion": "disjunction",
                     "certify": True}
        options_b = {"certify": True, "criterion": "disjunction",
                     "method": "rewriting"}
        config_a = {"n_rob": 8, "issue_width": 4, "retire_width": 4}
        config_b = {"retire_width": 4, "issue_width": 4, "n_rob": 8}
        assert canonical_key(config_a, options_a, REGISTRY) == \
            canonical_key(config_b, options_b, REGISTRY)

    def test_dataclass_and_mapping_forms_agree(self):
        config = ProcessorConfig(n_rob=8, issue_width=4)
        assert canonical_key(config, {"method": "rewriting"}, REGISTRY) == \
            canonical_key({"n_rob": 8, "issue_width": 4},
                          {"method": "rewriting"}, REGISTRY)

    def test_none_valued_options_are_dropped(self):
        config = ProcessorConfig(n_rob=4, issue_width=2)
        with_none = {"method": "rewriting", "bug_kind": None,
                     "certify": None}
        without = {"method": "rewriting"}
        assert canonical_key(config, with_none, REGISTRY) == \
            canonical_key(config, without, REGISTRY)

    def test_config_changes_the_key(self):
        options = {"method": "rewriting"}
        assert canonical_key(ProcessorConfig(4, 2), options, REGISTRY) != \
            canonical_key(ProcessorConfig(8, 2), options, REGISTRY)

    def test_options_change_the_key(self):
        config = ProcessorConfig(4, 2)
        assert canonical_key(config, {"method": "rewriting"}, REGISTRY) != \
            canonical_key(config, {"method": "positive_equality"}, REGISTRY)
        assert canonical_key(config, {"certify": True}, REGISTRY) != \
            canonical_key(config, {}, REGISTRY)

    def test_family_changes_the_key(self):
        # Two different workload families with otherwise-identical
        # configs must never share a cache entry.
        options = {"method": "rewriting"}
        keys = {
            canonical_key(
                ProcessorConfig(4, 2, family=family), options, REGISTRY
            )
            for family in ("reg-reg", "branch", "mem", "mixed")
        }
        assert len(keys) == 4

    def test_registry_version_changes_the_key(self):
        config = ProcessorConfig(4, 2)
        assert canonical_key(config, {}, "5r-000000000000") != \
            canonical_key(config, {}, "5r-111111111111")

    def test_key_is_sha256_hex(self):
        key = canonical_key(ProcessorConfig(4, 2), {}, REGISTRY)
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_defaults_to_live_registry_version(self):
        from repro.rewriting.version import registry_version

        config = ProcessorConfig(4, 2)
        assert canonical_key(config, {"method": "rewriting"}) == \
            canonical_key(config, {"method": "rewriting"},
                          registry_version())


class TestCrossProcessStability:
    """Equal inputs must hash equal across *process restarts* — no
    ``hash()`` randomization or dict-order dependence may leak in."""

    def test_key_survives_a_process_restart(self):
        config = {"n_rob": 12, "issue_width": 4, "retire_width": 2,
                  "family": "mixed"}
        options = {"method": "positive_equality", "criterion": "disjunction",
                   "bug_kind": "stale-load-forward", "bug_entry": 3,
                   "certify": True}
        here = canonical_key(config, options, REGISTRY)

        script = (
            "import json, sys\n"
            "from repro.core.keys import canonical_key\n"
            "spec = json.load(sys.stdin)\n"
            "print(canonical_key(spec['config'], spec['options'],"
            " spec['registry']))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        # Force a different hash seed so any hash()-order dependence in
        # the serialization would show up as a different key.
        env["PYTHONHASHSEED"] = "12345"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(
                {"config": config, "options": options, "registry": REGISTRY}
            ),
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == here

    def test_live_registry_version_survives_a_process_restart(self):
        from repro.rewriting.version import registry_version

        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        env["PYTHONHASHSEED"] = "54321"
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.rewriting.version import registry_version;"
             "print(registry_version())"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == registry_version()


class TestBadInput:
    def test_mapping_without_required_fields_raises(self):
        with pytest.raises(KeyError):
            config_dict({"n_rob": 4})
