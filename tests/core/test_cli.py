"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.rob == 16
        assert args.width == 4
        assert args.method == "rewriting"
        assert args.bug is None

    def test_bug_options(self):
        args = build_parser().parse_args(
            ["--bug", "forward-wrong-source", "--entry", "7", "--operand", "2"]
        )
        assert args.bug == "forward-wrong-source"
        assert args.entry == 7
        assert args.operand == 2

    def test_unknown_bug_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--bug", "not-a-bug"])


class TestMain:
    def test_correct_design_exits_zero(self, capsys):
        code = main(["--rob", "4", "--width", "2"])
        assert code == 0
        assert "correct" in capsys.readouterr().out

    def test_buggy_design_exits_one(self, capsys):
        code = main(
            ["--rob", "4", "--width", "2", "--bug", "forward-wrong-source",
             "--entry", "3"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "slice 3" in out

    def test_positive_equality_method(self, capsys):
        code = main(["--rob", "2", "--width", "1", "--method",
                     "positive_equality"])
        assert code == 0

    def test_sat_budget_exit_code(self, capsys):
        code = main(
            ["--rob", "3", "--width", "3", "--method", "positive_equality",
             "--sat-budget", "0.05"]
        )
        assert code == 2

    def test_max_seconds_flag(self, capsys):
        code = main(
            ["--rob", "3", "--width", "3", "--method", "positive_equality",
             "--max-seconds", "0.05"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert "Traceback" not in err

    def test_max_conflicts_flag(self, capsys):
        code = main(
            ["--rob", "3", "--width", "3", "--method", "positive_equality",
             "--max-conflicts", "1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert "conflicts" in err
        assert "campaign" in err  # points at the escalating runner

    def test_retire_width_flag(self, capsys):
        code = main(["--rob", "6", "--width", "3", "--retire-width", "2"])
        assert code == 0
        assert "retire width 2" in capsys.readouterr().out
