"""Cross-validation properties: the two verification methods must agree.

These are the repository's strongest end-to-end soundness checks: for
randomly drawn small configurations and randomly placed defects, the
rewriting-rules flow and the Positive-Equality-only flow must return the
same verdict — and correct designs must verify under every criterion and
memory model combination.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Bug, BugKind, ProcessorConfig, verify
from repro.encode import check_validity
from repro.processor import build_correctness_formula, run_diagram
from repro.rewriting import rewrite_diagram

# Small enough for the PE-only flow, varied enough to be interesting.
SMALL_CONFIGS = [
    ProcessorConfig(n_rob=1, issue_width=1),
    ProcessorConfig(n_rob=2, issue_width=1),
    ProcessorConfig(n_rob=2, issue_width=2),
    ProcessorConfig(n_rob=3, issue_width=1),
    ProcessorConfig(n_rob=3, issue_width=2, retire_width=1),
]

DETECTABLE_BUGS = [
    BugKind.FORWARD_WRONG_SOURCE,
    BugKind.FORWARD_STALE_RESULT,
    BugKind.EXECUTE_IGNORES_HAZARD,
    BugKind.RETIRE_WITHOUT_RESULT,
    BugKind.RETIRE_IGNORES_VALID,
]


class TestMethodAgreementOnCorrectDesigns:
    @pytest.mark.parametrize("config", SMALL_CONFIGS, ids=str)
    def test_both_methods_say_correct(self, config):
        assert verify(config, method="rewriting").correct
        assert verify(config, method="positive_equality").correct

    @pytest.mark.parametrize("config", SMALL_CONFIGS, ids=str)
    def test_case_split_criterion_agrees(self, config):
        assert verify(config, criterion="case_split").correct
        assert verify(
            config, method="positive_equality", criterion="case_split"
        ).correct


class TestMethodAgreementOnBuggyDesigns:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        kind=st.sampled_from(DETECTABLE_BUGS),
        entry=st.integers(1, 3),
        operand=st.sampled_from([1, 2]),
        config_index=st.integers(0, len(SMALL_CONFIGS) - 1),
    )
    def test_random_bug_agreement(self, kind, entry, operand, config_index):
        config = SMALL_CONFIGS[config_index]
        entry = min(entry, config.n_rob)
        if kind in (BugKind.RETIRE_WITHOUT_RESULT, BugKind.RETIRE_IGNORES_VALID):
            entry = min(entry, config.retire_width)
        bug = Bug(kind, entry=entry, operand=operand)
        by_rules = verify(config, bug=bug)
        by_pe = verify(config, method="positive_equality", bug=bug)
        assert by_rules.correct == by_pe.correct, (
            f"methods disagree on {bug.describe()} for {config.describe()}: "
            f"rewriting={by_rules.correct}, pe={by_pe.correct}"
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        entry=st.integers(1, 3),
        operand=st.sampled_from([1, 2]),
    )
    def test_forwarding_bug_entry_identified_exactly(self, entry, operand):
        config = ProcessorConfig(n_rob=4, issue_width=2)
        bug = Bug(BugKind.FORWARD_WRONG_SOURCE, entry=entry + 1, operand=operand)
        result = verify(config, bug=bug)
        assert result.correct is False
        assert result.suspected_entry == entry + 1


class TestReducedFormulaSoundness:
    """The reduced formula's verdict must match the full formula's."""

    @pytest.mark.parametrize("config", SMALL_CONFIGS, ids=str)
    def test_correct_design_reduced_matches_full(self, config):
        artifacts = run_diagram(config)
        full = build_correctness_formula(artifacts)
        rewrite = rewrite_diagram(artifacts)
        assert rewrite.succeeded
        full_verdict = check_validity(full).valid
        reduced_verdict = check_validity(
            rewrite.reduced_formula, memory_mode="conservative"
        ).valid
        assert full_verdict is reduced_verdict is True

    def test_pc_bug_reduced_matches_full(self):
        config = ProcessorConfig(n_rob=2, issue_width=2)
        artifacts = run_diagram(config, bug=Bug(BugKind.PC_SINGLE_INCREMENT))
        full = build_correctness_formula(artifacts)
        rewrite = rewrite_diagram(artifacts)
        assert rewrite.succeeded  # PC is outside the ROB data path
        full_verdict = check_validity(full).valid
        reduced_verdict = check_validity(
            rewrite.reduced_formula, memory_mode="conservative"
        ).valid
        assert full_verdict is reduced_verdict is False
