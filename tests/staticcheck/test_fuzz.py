"""Property: the engine never crashes on arbitrary parseable modules.

Two generators feed ``run_project``:

* structured source assembled from a grammar of the constructs the
  checkers inspect (loops, try/except, raises, ContextVar sets, pool
  calls, nested defs) — biased toward the code shapes that exercise
  checker logic;
* arbitrary text, which must either parse (and then check cleanly or
  with findings, never an exception) or surface as an ``RS000`` finding.
"""

import ast
import os
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.diagnostics import SEVERITIES
from repro.staticcheck.baseline import fingerprints
from repro.staticcheck.engine import run_project

_IDENT = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in {
        "def", "if", "for", "in", "is", "not", "and", "or", "del",
        "try", "else", "elif", "while", "with", "pass", "class",
        "raise", "from", "import", "as", "return", "lambda", "global",
        "assert", "break", "continue", "finally", "except", "none",
    }
)

_EXPR = st.sampled_from([
    "x", "f(x)", "obj.attr", "obj.check('sat')", "deadline.tick('sat')",
    "pool.apply_async(job, args)", "pool.map(lambda v: v, items)",
    "_ACTIVE.set(value)", "_ACTIVE.reset(token)", "span.__enter__()",
    "journal.append(rec)", "Journal(path)", "itertools.count(1)",
    "iter(read, sentinel)", "range(10)",
])

_SMALL_STMT = st.one_of(
    st.just("pass"),
    st.just("raise RuntimeError('boom')"),
    st.just("raise ValueError('fine')"),
    st.just("raise"),
    _EXPR.map(lambda e: f"{e}"),
    st.tuples(_IDENT, _EXPR).map(lambda t: f"{t[0]} = {t[1]}"),
)


def _indent(block, level):
    pad = "    " * level
    return [pad + line for line in block]


@st.composite
def _statements(draw, depth=0):
    lines = []
    for _ in range(draw(st.integers(1, 3))):
        choice = draw(st.integers(0, 5 if depth < 2 else 1))
        if choice == 0 or choice == 1:
            lines.append(draw(_SMALL_STMT))
        elif choice == 2:
            iterator = draw(st.sampled_from(
                ["range(3)", "items", "itertools.count()",
                 "iter(read, None)"]))
            lines.append(f"for i in {iterator}:")
            lines.extend(_indent(draw(_statements(depth=depth + 1)), 1))
        elif choice == 3:
            lines.append("while cond:")
            lines.extend(_indent(draw(_statements(depth=depth + 1)), 1))
        elif choice == 4:
            handler = draw(st.sampled_from(
                ["except:", "except BaseException:", "except Exception:",
                 "except ValueError as exc:"]))
            lines.append("try:")
            lines.extend(_indent(draw(_statements(depth=depth + 1)), 1))
            lines.append(handler)
            lines.extend(_indent(draw(_statements(depth=depth + 1)), 1))
        else:
            lines.append(f"def {draw(_IDENT)}():")
            lines.extend(_indent(draw(_statements(depth=depth + 1)), 1))
    return lines


@st.composite
def _modules(draw):
    lines = ["from contextvars import ContextVar",
             "_ACTIVE = ContextVar('active')"]
    for _ in range(draw(st.integers(1, 3))):
        lines.append(f"def {draw(_IDENT)}():")
        lines.extend(_indent(draw(_statements()), 1))
    return "\n".join(lines) + "\n"


def _check_invariants(findings):
    for diag in findings:
        assert diag.severity in SEVERITIES
        assert diag.stage == "staticcheck"
        assert diag.check.startswith("RS0")
        diag.to_dict()  # JSON-serializable payloads only
    fingerprints(findings)  # fingerprinting never crashes either


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=_modules())
def test_engine_never_crashes_on_generated_modules(source):
    assert ast.parse(source) is not None  # the generator emits valid code
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fuzz.py")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        findings = run_project([path], project_checks=False)
    _check_invariants(findings)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(text=st.text(max_size=300))
def test_engine_never_crashes_on_arbitrary_text(text):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "arbitrary.py")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        findings = run_project([path], project_checks=False)
    _check_invariants(findings)
