"""One known-bad and one known-good fixture per file checker (RS001-RS005).

Fixture modules are written to a temporary directory, which puts them
outside any recognizable ``repro`` package root — the engine then treats
them as matching every checker scope, so each checker can be exercised
in isolation via ``select``.
"""

import textwrap

from repro.staticcheck.engine import load_source, run_project


def _run(tmp_path, source, select):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    return run_project([str(path)], select=select, project_checks=False)


def _checks(findings):
    return sorted(diag.check for diag in findings)


class TestRS001Taxonomy:
    def test_bad_bare_except_blind_except_and_builtin_raise(self, tmp_path):
        findings = _run(tmp_path, """\
            def solve():
                try:
                    work()
                except:
                    pass
                try:
                    work()
                except BaseException:
                    pass
                raise RuntimeError("solver wedged")
            """, select=["RS001"])
        assert _checks(findings) == [
            "RS001.bare-except",
            "RS001.blind-except",
            "RS001.builtin-raise",
        ]
        raise_diag = [d for d in findings
                      if d.check == "RS001.builtin-raise"][0]
        assert raise_diag.data["exception"] == "RuntimeError"
        assert "ReproError" in raise_diag.message

    def test_bad_builtins_module_spelling(self, tmp_path):
        findings = _run(tmp_path, """\
            import builtins

            def solve():
                raise builtins.TimeoutError("budget")
            """, select=["RS001"])
        assert _checks(findings) == ["RS001.builtin-raise"]

    def test_good_structured_raises_and_narrow_except(self, tmp_path):
        findings = _run(tmp_path, """\
            from repro.errors import BudgetExhausted, SolverError

            def solve(budget):
                if budget <= 0:
                    raise ValueError("budget must be positive")
                try:
                    work()
                except KeyError:
                    raise SolverError("lost a watch list")
                except Exception:
                    raise
                raise BudgetExhausted("out of conflicts")
            """, select=["RS001"])
        assert findings == []


class TestRS002DeadlinePolls:
    def test_bad_unpolled_while_loop(self, tmp_path):
        findings = _run(tmp_path, """\
            def fixpoint(nodes):
                changed = True
                while changed:
                    changed = step(nodes)
            """, select=["RS002"])
        assert _checks(findings) == ["RS002.unpolled-loop"]
        assert findings[0].data["qualname"] == "fixpoint"

    def test_bad_unbounded_for_over_itertools_count(self, tmp_path):
        findings = _run(tmp_path, """\
            import itertools

            def restart_schedule():
                for attempt in itertools.count(1):
                    if try_once(attempt):
                        break
            """, select=["RS002"])
        assert _checks(findings) == ["RS002.unpolled-loop"]
        assert findings[0].data["loop_kind"] == "unbounded for"

    def test_good_direct_poll(self, tmp_path):
        findings = _run(tmp_path, """\
            from repro.guard import current_deadline

            def fixpoint(nodes):
                deadline = current_deadline()
                changed = True
                while changed:
                    deadline.tick("encode")
                    changed = step(nodes)
            """, select=["RS002"])
        assert findings == []

    def test_good_indirect_poll_through_module_local_helper(self, tmp_path):
        # The dataflow half: `walk` polls, so a loop that calls `walk`
        # is covered (module-local call-graph fixpoint).
        findings = _run(tmp_path, """\
            from repro.guard import current_deadline

            def walk(node):
                current_deadline().tick("encode")
                return node.children

            def explore(root):
                stack = [root]
                while stack:
                    stack.extend(walk(stack.pop()))
            """, select=["RS002"])
        assert findings == []

    def test_good_bounded_for_is_exempt(self, tmp_path):
        findings = _run(tmp_path, """\
            def total(counts):
                acc = 0
                for value in counts:
                    acc += value
                return acc
            """, select=["RS002"])
        assert findings == []


class TestRS003SingleWriterJournal:
    def test_bad_mutation_and_open_outside_writer_modules(self, tmp_path):
        findings = _run(tmp_path, """\
            from repro.campaign.journal import Journal

            def worker_body(journal, record):
                journal.append(record)

            def sneaky(path):
                mine = Journal(path)
                return mine
            """, select=["RS003"])
        assert _checks(findings) == [
            "RS003.journal-mutation",
            "RS003.journal-open",
        ]
        mutation = [d for d in findings
                    if d.check == "RS003.journal-mutation"][0]
        assert mutation.data["method"] == "append"

    def test_good_read_only_access(self, tmp_path):
        findings = _run(tmp_path, """\
            from repro.campaign.journal import Journal

            def summarize(path):
                replay = Journal.load(path)
                return list(replay.events("finish"))

            def unrelated(items):
                # append on a non-journal receiver is not a finding.
                items.append(1)
            """, select=["RS003"])
        assert findings == []

    def test_writer_module_is_allowed_but_its_workers_are_not(self, tmp_path):
        # A file laid out like the real runner module: module-level writes
        # are fine, `_worker*` scopes are still forbidden.
        root = tmp_path / "repro" / "campaign"
        root.mkdir(parents=True)
        path = root / "runner.py"
        path.write_text(textwrap.dedent("""\
            def run(journal, record):
                journal.append(record)

            def _worker_entry(journal, record):
                journal.append(record)
            """))
        findings = run_project([str(path)], select=["RS003"],
                               project_checks=False)
        assert _checks(findings) == ["RS003.journal-mutation"]
        assert findings[0].data["qualname"] == "_worker_entry"


class TestRS004PicklablePayloads:
    def test_bad_lambda_and_local_def_payloads(self, tmp_path):
        findings = _run(tmp_path, """\
            def fan_out(pool, jobs):
                def on_done(result):
                    return result

                pool.apply_async(lambda job: job.run(), jobs)
                pool.apply_async(on_done, jobs)
            """, select=["RS004"])
        assert _checks(findings) == [
            "RS004.lambda-payload",
            "RS004.local-def-payload",
        ]
        local = [d for d in findings
                 if d.check == "RS004.local-def-payload"][0]
        assert local.data["name"] == "on_done"

    def test_bad_process_target_lambda(self, tmp_path):
        findings = _run(tmp_path, """\
            import multiprocessing

            def launch():
                proc = multiprocessing.Process(target=lambda: None)
                proc.start()
            """, select=["RS004"])
        assert _checks(findings) == ["RS004.lambda-payload"]

    def test_good_module_level_payloads(self, tmp_path):
        findings = _run(tmp_path, """\
            def job_entry(job):
                return job.run()

            def fan_out(pool, jobs):
                pool.apply_async(job_entry, jobs)
                pool.starmap(job_entry, [(j,) for j in jobs])

            def not_a_fanout(items):
                # plain map() on a non-pool receiver takes any callable.
                return list(map(lambda x: x + 1, items))
            """, select=["RS004"])
        assert findings == []


class TestRS005ContextVarHygiene:
    def test_bad_discarded_token_and_unpaired_set(self, tmp_path):
        findings = _run(tmp_path, """\
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active")

            def install(value):
                _ACTIVE.set(value)

            def leaky(value):
                token = _ACTIVE.set(value)
                return token
            """, select=["RS005"])
        assert _checks(findings) == [
            "RS005.discarded-token",
            "RS005.set-without-reset",
        ]

    def test_bad_manual_enter(self, tmp_path):
        findings = _run(tmp_path, """\
            def run(span):
                span.__enter__()
                try:
                    work()
                finally:
                    span.__exit__(None, None, None)
            """, select=["RS005"])
        assert _checks(findings) == [
            "RS005.manual-enter", "RS005.manual-enter",
        ]

    def test_good_enter_exit_pairing_across_one_class(self, tmp_path):
        # The sanctioned pattern: set() in __enter__, reset() in __exit__
        # of the same class (mirrors repro.guard.deadline.use_deadline).
        findings = _run(tmp_path, """\
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active")

            class use_value:
                def __init__(self, value):
                    self._value = value

                def __enter__(self):
                    self._token = _ACTIVE.set(self._value)
                    return self._value

                def __exit__(self, *exc_info):
                    _ACTIVE.reset(self._token)
                    return False
            """, select=["RS005"])
        assert findings == []

    def test_good_same_function_pairing(self, tmp_path):
        findings = _run(tmp_path, """\
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active")

            def scoped(value):
                token = _ACTIVE.set(value)
                try:
                    return work()
                finally:
                    _ACTIVE.reset(token)
            """, select=["RS005"])
        assert findings == []


class TestScoping:
    def test_repro_package_files_respect_checker_scope(self, tmp_path):
        # RS001's scope excludes `campaign`; the same bad source under
        # repro/campaign/ must not be flagged by RS001.
        root = tmp_path / "repro" / "campaign"
        root.mkdir(parents=True)
        path = root / "helper.py"
        path.write_text("def f():\n    raise RuntimeError('x')\n")
        assert run_project([str(path)], select=["RS001"],
                           project_checks=False) == []
        module, failure = load_source(str(path))
        assert failure is None
        assert module.package == ("repro", "campaign")
        assert module.subpackage == "campaign"

    def test_same_source_in_scope_is_flagged(self, tmp_path):
        root = tmp_path / "repro" / "sat"
        root.mkdir(parents=True)
        path = root / "helper.py"
        path.write_text("def f():\n    raise RuntimeError('x')\n")
        findings = run_project([str(path)], select=["RS001"],
                               project_checks=False)
        assert _checks(findings) == ["RS001.builtin-raise"]
