"""RS006 — rule-registry confluence and termination analysis.

The known-good fixture is the real registry: every critical pair must
join (syntactically or semantically) and no rule may diverge.  The
known-bad fixture registers a deliberately unsound forwarding rule —
``read(write(m, a, d), b) -> d`` without the ``a = b`` case split — whose
overlap with itself produces reducts that differ under a concrete
interpretation.
"""

from repro.analysis.rule_safety import REGISTRY, RuleInstance, RuleSpec
from repro.eufm import builder
from repro.staticcheck.rs006_rules import (
    analyze_registry,
    critical_pairs,
    rule_measure,
    unify,
)


def _by_check(diagnostics):
    grouped = {}
    for diag in diagnostics:
        grouped.setdefault(diag.check, []).append(diag)
    return grouped


def _unsound_forwarding() -> RuleInstance:
    mem = builder.tvar("bad!m")
    addr_w = builder.tvar("bad!a")
    addr_r = builder.tvar("bad!b")
    data = builder.tvar("bad!d")
    lhs = builder.read(builder.write(mem, addr_w, data), addr_r)
    return RuleInstance(
        lhs=lhs,
        rhs=data,  # wrong unless addr_w == addr_r
        pattern_vars=("bad!m", "bad!a", "bad!b", "bad!d"),
    )


class TestRealRegistry:
    def test_registry_has_no_divergent_critical_pairs(self):
        grouped = _by_check(analyze_registry())
        assert "RS006.critical-pair-divergent" not in grouped
        assert "RS006.builder-failed" not in grouped
        summary = grouped["RS006.registry-summary"][0]
        assert summary.data["pairs"] >= 1
        assert summary.data["pairs"] == (
            summary.data["syntactic"] + summary.data["semantic"]
        )
        assert len(summary.data["rules"]) == len(REGISTRY)

    def test_registry_termination_obligations_all_discharged(self):
        grouped = _by_check(analyze_registry())
        assert "RS006.measure-not-decreasing" not in grouped
        accounted = (
            len(grouped.get("RS006.measure-decreases", []))
            + len(grouped.get("RS006.permutative-rule", []))
            + len(grouped.get("RS006.identity-rule", []))
        )
        assert accounted == len(REGISTRY)


def _correct_forwarding() -> RuleInstance:
    mem = builder.tvar("good!m")
    addr_w = builder.tvar("good!a")
    addr_r = builder.tvar("good!b")
    data = builder.tvar("good!d")
    lhs = builder.read(builder.write(mem, addr_w, data), addr_r)
    rhs = builder.ite_term(
        builder.eq(addr_w, addr_r), data, builder.read(mem, addr_r)
    )
    return RuleInstance(
        lhs=lhs,
        rhs=rhs,
        pattern_vars=("good!m", "good!a", "good!b", "good!d"),
    )


class TestUnsoundRule:
    def test_unsound_forwarding_rule_diverges(self):
        # The unsound rule overlaps the correct forwarding rule at the
        # root: one reduct is `d`, the other the proper address case
        # split — they differ whenever the addresses differ.
        specs = [
            RuleSpec(
                name="bad-forwarding",
                description="read-over-write without the address case split",
                build=_unsound_forwarding,
            ),
            RuleSpec(
                name="correct-forwarding",
                description="the paper's forwarding rule",
                build=_correct_forwarding,
            ),
        ]
        grouped = _by_check(analyze_registry(specs))
        divergent = grouped.get("RS006.critical-pair-divergent", [])
        assert divergent, "the unsound rule must produce a divergent pair"
        assert divergent[0].severity == "error"
        # The finding carries a concrete witness interpretation.
        assert divergent[0].data["witness"]

    def test_builder_failure_is_an_error_finding(self):
        def boom() -> RuleInstance:
            raise ValueError("no instance today")

        specs = [RuleSpec(name="broken", description="", build=boom)]
        grouped = _by_check(analyze_registry(specs))
        assert "RS006.builder-failed" in grouped


class TestPrimitives:
    def test_unify_binds_pattern_vars_and_rejects_mismatches(self):
        m = builder.tvar("p!m")
        a = builder.tvar("p!a")
        d = builder.tvar("p!d")
        pattern = builder.write(m, a, d)
        concrete = builder.write(
            builder.tvar("state"), builder.uf("pc", ()), builder.tvar("v")
        )
        names = frozenset({"p!m", "p!a", "p!d"})
        subst = unify(pattern, concrete, names)
        assert subst is not None
        assert subst[m] is concrete.mem
        assert unify(pattern, builder.tvar("state"), names) is None

    def test_rule_measure_counts_redexes_then_size(self):
        mem = builder.tvar("m")
        addr = builder.tvar("a")
        other = builder.tvar("b")  # same-address reads fold in the builder
        data = builder.tvar("d")
        redex = builder.read(builder.write(mem, addr, data), other)
        plain = builder.read(mem, addr)
        r_redex, size_redex = rule_measure(redex)
        r_plain, size_plain = rule_measure(plain)
        assert r_redex == 1 and r_plain == 0
        assert size_redex > size_plain
        assert rule_measure(data) < rule_measure(plain)

    def test_critical_pairs_finds_the_self_overlap(self):
        instance = _unsound_forwarding()
        pairs = critical_pairs(instance, instance, self_pair=True)
        # The unsound rule's LHS contains no non-root, non-pattern-var
        # subterm matching its own LHS except through the write; the
        # overlap set may be empty for the self pair, but pairing it with
        # a chain-shaped rule must produce at least one overlap.
        chained = RuleInstance(
            lhs=builder.read(
                builder.write(
                    builder.write(builder.tvar("c!m"), builder.tvar("c!x"),
                                  builder.tvar("c!e")),
                    builder.tvar("c!a"), builder.tvar("c!d")),
                builder.tvar("c!b"),
            ),
            rhs=builder.tvar("c!d"),
            pattern_vars=("c!m", "c!x", "c!e", "c!a", "c!b", "c!d"),
        )
        overlaps = critical_pairs(chained, instance, self_pair=False)
        assert pairs == [] or all("overlap" in p for p in pairs)
        assert overlaps
        for pair in overlaps:
            assert {"position", "overlap", "reduct_outer",
                    "reduct_inner"} <= set(pair)
