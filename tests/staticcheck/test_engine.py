"""Engine mechanics: loading, noqa, select/ignore, baselines, SARIF."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.staticcheck.baseline import (
    Baseline,
    apply_baseline,
    fingerprint,
    fingerprints,
)
from repro.staticcheck.engine import (
    all_checkers,
    checker_codes,
    collect_files,
    resolve_codes,
    run_project,
)
from repro.staticcheck.sarif import to_sarif

BAD_RS001 = "def f():\n    raise RuntimeError('x')\n"


class TestRegistry:
    def test_all_six_checkers_registered(self):
        assert checker_codes() == [
            "RS001", "RS002", "RS003", "RS004", "RS005", "RS006",
        ]
        specs = {spec.code: spec for spec in all_checkers()}
        assert specs["RS006"].run_project is not None
        assert specs["RS006"].run_file is None
        for code in ("RS001", "RS002", "RS003", "RS004", "RS005"):
            assert specs[code].run_file is not None

    def test_resolve_codes_select_ignore_and_unknown(self):
        assert resolve_codes(["rs001", "RS002"]) == {"RS001", "RS002"}
        assert "RS003" not in resolve_codes(ignore=["RS003"])
        with pytest.raises(ReproError):
            resolve_codes(["RS999"])
        with pytest.raises(ReproError):
            resolve_codes(ignore=["RS999"])


class TestLoading:
    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = run_project([str(path)], project_checks=False)
        assert [d.check for d in findings] == ["RS000.parse-error"]
        assert findings[0].is_error

    def test_missing_path_raises_repro_error(self):
        with pytest.raises(ReproError):
            collect_files(["/no/such/path/anywhere"])

    def test_collect_files_skips_caches_and_hidden_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python")
        files = collect_files([str(tmp_path)])
        assert files == [str(tmp_path / "pkg" / "a.py")]


class TestNoqa:
    def test_noqa_with_code_suppresses_one_site(self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text(
            "def f():\n    raise RuntimeError('x')  # noqa: RS001\n"
        )
        assert run_project([str(path)], select=["RS001"],
                           project_checks=False) == []

    def test_bare_noqa_suppresses_everything_on_the_line(self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text("def f():\n    raise RuntimeError('x')  # noqa\n")
        assert run_project([str(path)], select=["RS001"],
                           project_checks=False) == []

    def test_noqa_for_a_different_code_does_not_suppress(self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text(
            "def f():\n    raise RuntimeError('x')  # noqa: RS002\n"
        )
        findings = run_project([str(path)], select=["RS001"],
                               project_checks=False)
        assert [d.check for d in findings] == ["RS001.builtin-raise"]


class TestBaseline:
    def _findings(self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text(BAD_RS001)
        return run_project([str(path)], select=["RS001"],
                           project_checks=False)

    def test_fingerprints_are_line_drift_stable(self, tmp_path):
        first = self._findings(tmp_path)
        path = tmp_path / "f.py"
        path.write_text("# a new comment shifting every line\n" + BAD_RS001)
        second = run_project([str(path)], select=["RS001"],
                             project_checks=False)
        assert fingerprints(first) == fingerprints(second)
        assert fingerprint(first[0]).startswith("RS001.builtin-raise@")
        assert fingerprint(first[0]).endswith(":f#0")

    def test_occurrence_indices_disambiguate_identical_findings(
            self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text(
            "def f(flag):\n"
            "    if flag:\n"
            "        raise RuntimeError('a')\n"
            "    raise RuntimeError('b')\n"
        )
        findings = run_project([str(path)], select=["RS001"],
                               project_checks=False)
        prints = fingerprints(findings)
        assert len(set(prints)) == 2
        assert {fp.rsplit("#", 1)[1] for fp in prints} == {"0", "1"}

    def test_roundtrip_save_load_and_apply(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings)
        baseline_path = tmp_path / "baseline.json"
        baseline.save(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))
        kept, suppressed, stale = apply_baseline(findings, loaded)
        assert kept == [] and len(suppressed) == 1 and stale == []

    def test_stale_entries_become_warnings(self, tmp_path):
        baseline = Baseline(entries={
            "RS001.builtin-raise@gone.py:f#0": "was fixed long ago",
        })
        kept, suppressed, stale = apply_baseline([], baseline)
        assert kept == [] and suppressed == []
        assert [d.check for d in stale] == ["RS000.stale-baseline-entry"]
        assert stale[0].severity == "warning"

    def test_update_keeps_existing_justifications(self, tmp_path):
        findings = self._findings(tmp_path)
        fp = fingerprints(findings)[0]
        previous = Baseline(entries={fp: "reviewed: contained by caller"})
        updated = Baseline.from_findings(findings, previous)
        assert updated.entries[fp] == "reviewed: contained by caller"

    def test_load_rejects_missing_and_malformed_files(self, tmp_path):
        with pytest.raises(ReproError):
            Baseline.load(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ReproError):
            Baseline.load(str(bad))


class TestSarif:
    def test_sarif_structure_carries_findings_and_rules(self, tmp_path):
        path = tmp_path / "f.py"
        path.write_text(BAD_RS001)
        findings = run_project([str(path)], select=["RS001"],
                               project_checks=False)
        sarif = to_sarif(findings)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {rule["id"] for rule in
                    run["tool"]["driver"]["rules"]}
        assert "RS001" in rule_ids
        result = run["results"][0]
        assert result["level"] == "error"
        assert result["ruleId"] == "RS001"
        assert result["properties"]["check"] == "RS001.builtin-raise"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2
        # Round-trips through JSON (no exotic objects).
        json.dumps(sarif)


class TestSelfHosting:
    def test_src_repro_is_clean_against_the_committed_baseline(self):
        # Mirrors the CI gate: the tree plus .staticcheck-baseline.json
        # must produce no unbaselined error-level findings.
        repo_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        findings = run_project([os.path.join(repo_root, "src", "repro")])
        baseline = Baseline.load(
            os.path.join(repo_root, ".staticcheck-baseline.json"))
        kept, _suppressed, _stale = apply_baseline(findings, baseline)
        errors = [d for d in kept if d.is_error]
        assert errors == [], "\n".join(d.render() for d in errors)
