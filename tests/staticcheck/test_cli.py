"""The ``python -m repro staticcheck`` command-line interface."""

import json
import textwrap

from repro.__main__ import main as repro_main
from repro.staticcheck.cli import main

BAD = "def f():\n    raise RuntimeError('x')\n"
GOOD = "def f():\n    return 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "good.py", GOOD)
        assert main([path, "--no-project"]) == 0

    def test_violations_exit_one(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        assert main([path, "--select", "RS001", "--no-project"]) == 1
        assert "invariant violation" in capsys.readouterr().err

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        path = _write(tmp_path, "good.py", GOOD)
        assert main([path, "--select", "RS999"]) == 2
        assert main(["/no/such/path"]) == 2
        assert main([path, "--baseline", str(tmp_path / "missing.json")]) == 2

    def test_dispatch_through_python_m_repro(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        code = repro_main(
            ["staticcheck", path, "--select", "RS001", "--no-project"]
        )
        assert code == 1


class TestJsonSchema:
    def test_json_report_matches_the_lint_schema(self, tmp_path, capsys):
        # Both CLIs wrap findings in AnalysisReport, so the top-level JSON
        # schema is identical: max_severity / summary / findings.
        path = _write(tmp_path, "bad.py", BAD)
        main([path, "--select", "RS001", "--no-project", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"max_severity", "summary", "findings"}
        assert report["max_severity"] == "error"
        assert report["summary"] == {"error": 1, "warning": 0, "info": 0}
        finding = report["findings"][0]
        assert set(finding) == {
            "severity", "stage", "check", "subject", "message", "data",
        }
        assert finding["stage"] == "staticcheck"
        assert finding["check"] == "RS001.builtin-raise"

    def test_lint_emits_the_same_shape(self, capsys):
        # Guard against schema drift between the two CLIs (satellite 6).
        from repro.analysis.cli import main as lint_main

        lint_main(["--grid", "2x1", "--method", "rewriting",
                   "--no-rules", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"max_severity", "summary", "findings"}

    def test_output_file_receives_the_report(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        out = tmp_path / "report.json"
        main([path, "--select", "RS001", "--no-project", "--json",
              "--output", str(out)])
        capsys.readouterr()
        assert json.loads(out.read_text())["max_severity"] == "error"


class TestSarifOutput:
    def test_sarif_flag_emits_sarif(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        main([path, "--select", "RS001", "--no-project", "--sarif"])
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"]


class TestBaselineFlow:
    def test_update_baseline_then_enforce(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        baseline = tmp_path / "baseline.json"
        assert main([path, "--select", "RS001", "--no-project",
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        # The same violations are now baselined: exit 0.
        assert main([path, "--select", "RS001", "--no-project",
                     "--baseline", str(baseline)]) == 0
        assert "suppressed by the baseline" in capsys.readouterr().out
        # A *new* violation still fails.
        path2 = _write(tmp_path, "bad.py",
                       BAD + "\ndef g():\n    raise MemoryError('y')\n")
        assert main([path2, "--select", "RS001", "--no-project",
                     "--baseline", str(baseline)]) == 1

    def test_fixed_violation_reports_a_stale_entry(self, tmp_path, capsys):
        path = _write(tmp_path, "bad.py", BAD)
        baseline = tmp_path / "baseline.json"
        main([path, "--select", "RS001", "--no-project",
              "--baseline", str(baseline), "--update-baseline"])
        _write(tmp_path, "bad.py", GOOD)  # fix the violation
        capsys.readouterr()
        assert main([path, "--select", "RS001", "--no-project",
                     "--baseline", str(baseline)]) == 0
        assert "stale" in capsys.readouterr().out.lower()

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        path = _write(tmp_path, "good.py", GOOD)
        assert main([path, "--update-baseline"]) == 2


class TestListCheckers:
    def test_lists_all_codes_with_descriptions(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for code in ("RS001", "RS002", "RS003", "RS004", "RS005", "RS006"):
            assert code in out
