"""Ablations of the design choices DESIGN.md calls out.

1. **Memory model on the rewritten formula** — the conservative
   (forwarding-free) abstraction versus the precise elimination.  The
   paper (Sect. 7.2) credits the conservative abstraction with removing
   every ``e_ij`` variable; the precise model must still verify, but pays
   for address comparisons.
2. **Correctness criterion** — the paper's disjunction versus the stronger
   fetch-count case split; both must hold for correct designs, with
   comparable formula sizes.
3. **CNF encoding** — polarity-aware (Plaisted–Greenbaum) versus full
   bidirectional Tseitin, on the hardest cell of the sweep.
"""

from repro.core import render_rows
from repro.encode import check_validity
from repro.processor import ProcessorConfig, run_diagram
from repro.rewriting import rewrite_diagram

from common import FULL, save_table

CONFIG = ProcessorConfig(n_rob=64 if FULL else 32, issue_width=4)


def _run():
    artifacts = run_diagram(CONFIG)
    rows = []
    outcomes = {}
    for criterion in ("disjunction", "case_split"):
        rewrite = rewrite_diagram(artifacts, criterion=criterion)
        assert rewrite.succeeded
        for memory_mode in ("conservative", "precise"):
            encodings = (
                ("polarity", "full")
                if (criterion, memory_mode) == ("disjunction", "precise")
                else ("polarity",)
            )
            for cnf_encoding in encodings:
                validity = check_validity(
                    rewrite.reduced_formula,
                    memory_mode=memory_mode,
                    cnf_encoding=cnf_encoding,
                )
                stats = validity.encoded.stats
                key = (criterion, memory_mode, cnf_encoding)
                outcomes[key] = validity.valid
                rows.append(
                    [
                        criterion,
                        memory_mode,
                        cnf_encoding,
                        "valid" if validity.valid else "INVALID",
                        stats.eij_primary,
                        stats.cnf_vars,
                        stats.cnf_clauses,
                        f"{validity.solve_seconds:.3f}",
                    ]
                )
    return rows, outcomes


def test_ablation_memory_model_and_criterion(benchmark):
    rows, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = render_rows(
        f"Ablation — rewritten formula of {CONFIG.describe()}",
        ["criterion", "memory model", "CNF enc.", "verdict", "e_ij",
         "CNF vars", "CNF clauses", "SAT [s]"],
        rows,
    )
    save_table("ablation", table)

    # Every combination proves the correct design.
    assert all(outcomes.values())
    # The conservative abstraction removes all e_ij variables; the precise
    # model reintroduces address comparisons.
    by_key = {(row[0], row[1], row[2]): row[4] for row in rows}
    clauses = {(row[0], row[1], row[2]): row[6] for row in rows}
    assert by_key[("disjunction", "conservative", "polarity")] == 0
    assert by_key[("disjunction", "precise", "polarity")] > 0
    # Plaisted-Greenbaum never produces more clauses than full Tseitin.
    assert (
        clauses[("disjunction", "precise", "polarity")]
        <= clauses[("disjunction", "precise", "full")]
    )
