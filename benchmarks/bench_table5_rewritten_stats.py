"""Table 5: statistics of the CNF formulas when both rewriting rules and
Positive Equality are used.

The paper's headline structural results, all checked here:

* the statistics do **not** depend on the reorder-buffer size (the
  instructions initially there were processed by the rewriting rules);
* there are **no** e_ij variables (the newly fetched instructions execute
  strictly in program order, so ``read``/``write`` are abstracted by
  general uninterpreted functions without the forwarding property);
* SAT times are trivial at every issue width.
"""

from repro.core import render_rows
from repro.encode import encode_validity
from repro.processor import ProcessorConfig, run_diagram
from repro.rewriting import rewrite_diagram
from repro.sat import solve_cnf

from common import (
    SIZES_REWRITE_STATS,
    WIDTHS_REWRITE_STATS,
    save_table,
)


def _collect(size, width):
    artifacts = run_diagram(ProcessorConfig(n_rob=size, issue_width=width))
    rewrite = rewrite_diagram(artifacts)
    assert rewrite.succeeded, rewrite.failure
    encoded = encode_validity(rewrite.reduced_formula, memory_mode="conservative")
    sat = solve_cnf(encoded.cnf)
    assert sat.is_unsat  # correct design
    stats = encoded.stats
    return {
        "eij": stats.eij_primary,
        "other": stats.other_primary,
        "total": stats.total_primary,
        "vars": stats.cnf_vars,
        "clauses": stats.cnf_clauses,
        "sat_s": sat.cpu_seconds,
    }


def _sweep():
    per_width = {}
    size_independence = {}
    for width in WIDTHS_REWRITE_STATS:
        sizes = [s for s in SIZES_REWRITE_STATS if width <= s]
        if not sizes:
            continue
        rows = [_collect(size, width) for size in sizes]
        per_width[width] = rows[0]
        size_independence[width] = [
            (row["eij"], row["other"], row["vars"], row["clauses"])
            for row in rows
        ]
    return per_width, size_independence


ROW_LABELS = [
    ("eij", "e_ij primary"),
    ("other", "other primary"),
    ("total", "total primary"),
    ("vars", "CNF variables"),
    ("clauses", "CNF clauses"),
    ("sat_s", "SAT CPU time [s]"),
]


def test_table5_rewritten_cnf_statistics(benchmark):
    per_width, size_independence = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    widths = sorted(per_width)
    rows = []
    for key, label in ROW_LABELS:
        row = [label]
        for width in widths:
            value = per_width[width][key]
            row.append(f"{value:.3f}" if key == "sat_s" else value)
        rows.append(row)
    table = render_rows(
        "Table 5 — CNF statistics with rewriting rules + Positive Equality "
        f"(identical for every ROB size in {SIZES_REWRITE_STATS}; "
        "columns: issue/retire width)",
        ["statistic"] + [str(w) for w in widths],
        rows,
    )
    save_table("table5_rewritten_stats", table)

    # The paper's structural claims:
    for width, tuples in size_independence.items():
        assert len(set(tuples)) == 1, (
            f"width {width}: statistics vary with the ROB size: {tuples}"
        )
    for width in widths:
        assert per_width[width]["eij"] == 0, "e_ij variables should vanish"
