"""Table 3: statistics of the CNF formulas when only Positive Equality is
used, for a fixed reorder-buffer size across issue/retire widths.

The paper reports, for 8-entry designs: e_ij primary inputs, other primary
inputs, CNF variables/clauses, and the SAT CPU time.  Here the fixed size
is the largest one the PE-only flow finishes comfortably at reproduction
scale; the row structure matches the paper's.
"""

from repro.core import render_rows
from repro.processor import ProcessorConfig, build_correctness_formula, run_diagram
from repro.encode import encode_validity
from repro.sat import solve_cnf

from common import FULL, PE_ONLY_BUDGET_SECONDS, save_table

FIXED_SIZE = 4 if FULL else 3
WIDTHS = [1, 2, 4] if FULL else [1, 2, 3]


def _sweep():
    columns = {}
    for width in WIDTHS:
        if width > FIXED_SIZE:
            continue
        artifacts = run_diagram(
            ProcessorConfig(n_rob=FIXED_SIZE, issue_width=width)
        )
        phi = build_correctness_formula(artifacts)
        encoded = encode_validity(phi, memory_mode="precise")
        sat = solve_cnf(encoded.cnf, max_seconds=PE_ONLY_BUDGET_SECONDS)
        cpu = (
            f"{sat.cpu_seconds:.2f}"
            if sat.status != "unknown"
            else f">{PE_ONLY_BUDGET_SECONDS:.0f}"
        )
        stats = encoded.stats
        columns[width] = [
            stats.eij_primary,
            stats.other_primary,
            stats.total_primary,
            stats.cnf_vars,
            stats.cnf_clauses,
            cpu,
        ]
    return columns


ROW_LABELS = [
    "e_ij primary",
    "other primary",
    "total primary",
    "CNF variables",
    "CNF clauses",
    "CPU time [s]",
]


def test_table3_pe_only_cnf_statistics(benchmark):
    columns = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    widths = sorted(columns)
    rows = [
        [label] + [columns[w][i] for w in widths]
        for i, label in enumerate(ROW_LABELS)
    ]
    table = render_rows(
        f"Table 3 — CNF statistics, Positive Equality only, "
        f"{FIXED_SIZE}-entry reorder buffer (columns: issue/retire width)",
        ["statistic"] + [str(w) for w in widths],
        rows,
    )
    save_table("table3_pe_stats", table)
    # Shape checks: e_ij variables are present (register-identifier
    # comparisons) and grow with the width.
    assert columns[widths[0]][0] > 0
    assert columns[widths[-1]][0] > columns[widths[0]][0]
    assert columns[widths[-1]][4] > columns[widths[0]][4]
