"""The buggy-design experiment of Sect. 7.2.

The paper plants a bug in the forwarding logic for one data operand of the
72nd instruction of a 128-entry reorder buffer (issue width 4).  The
rewriting rules identify the 72nd computation slice in seconds (9s there;
the correct design verified in 10s), while the Positive-Equality-only flow
runs out of memory.  This benchmark reproduces all three measurements at
reproduction scale.
"""

from repro import forwarding_bug, verify
from repro.core import render_rows
from repro.processor import ProcessorConfig

from common import BUG_ENTRY, BUG_SIZE, BUG_WIDTH, save_table

PE_BUDGET = 15.0


def _experiment():
    config = ProcessorConfig(n_rob=BUG_SIZE, issue_width=BUG_WIDTH)
    bug = forwarding_bug(BUG_ENTRY)

    buggy = verify(config, bug=bug)
    correct = verify(config)

    try:
        verify(config, method="positive_equality", bug=bug, max_seconds=PE_BUDGET)
        pe_only = "finished (unexpected at this size)"
    except TimeoutError:
        pe_only = f">{PE_BUDGET:.0f}s (budget, cf. paper's out-of-memory)"

    return buggy, correct, pe_only


def test_bug_detection_experiment(benchmark):
    buggy, correct, pe_only = benchmark.pedantic(_experiment, rounds=1, iterations=1)

    rows = [
        [
            "buggy (rewriting)",
            f"{buggy.timings['total']:.2f}s",
            f"flagged slice {buggy.suspected_entry}",
        ],
        [
            "correct (rewriting)",
            f"{correct.timings['total']:.2f}s",
            "verified correct",
        ],
        ["buggy (PE only)", pe_only, "cf. paper: out of memory"],
    ]
    table = render_rows(
        f"Bug experiment — {BUG_SIZE}-entry ROB, width {BUG_WIDTH}, "
        f"forwarding bug at operand 1 of entry {BUG_ENTRY} "
        "(paper: entry 72 of 128)",
        ["run", "time", "outcome"],
        rows,
    )
    save_table("bug_detection", table)

    assert buggy.correct is False
    assert buggy.suspected_entry == BUG_ENTRY
    assert correct.correct is True
