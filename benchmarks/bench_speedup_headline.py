"""The headline claim: rewriting rules give "up to 5 orders of magnitude
speedup, compared to using Positive Equality alone".

In the paper, the 8-entry/width-8 design took 38,708s PE-only versus 0.35s
with rewriting (~10^5x).  Here both methods run on the largest
configuration the PE-only flow finishes at reproduction scale, plus the
rewriting method alone on a configuration far beyond the PE-only wall.
"""

import time

from repro import verify
from repro.core import render_rows
from repro.processor import ProcessorConfig

from common import FULL, save_snapshot, save_table

# The largest configuration our PE-only flow finishes comfortably.
COMPARE = ProcessorConfig(n_rob=3, issue_width=2)
BEYOND = ProcessorConfig(n_rob=128 if FULL else 64, issue_width=8)
PE_BUDGET = 600.0 if FULL else 120.0


def _experiment():
    pe = verify(COMPARE, method="positive_equality", max_seconds=PE_BUDGET)
    rw = verify(COMPARE, method="rewriting")
    beyond = verify(BEYOND, method="rewriting")
    return pe, rw, beyond


def test_headline_speedup(benchmark):
    pe, rw, beyond = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    # Compare the formula-solving phases (translation + SAT), which is what
    # the rewriting rules accelerate; simulation is shared by both methods.
    pe_solve = pe.timings["translate"] + pe.timings["sat"]
    rw_solve = (
        pe.timings.get("rewrite", 0.0)
        + rw.timings["rewrite"]
        + rw.timings["translate"]
        + rw.timings["sat"]
    )
    speedup = pe_solve / max(rw_solve, 1e-6)
    rows = [
        [
            f"N={COMPARE.n_rob}, k={COMPARE.issue_width} (PE only)",
            f"{pe_solve:.2f}s",
            "correct",
        ],
        [
            f"N={COMPARE.n_rob}, k={COMPARE.issue_width} (rewriting)",
            f"{rw_solve:.3f}s",
            "correct",
        ],
        ["speedup", f"{speedup:.0f}x", "(paper: up to ~10^5x at its scale)"],
        [
            f"N={BEYOND.n_rob}, k={BEYOND.issue_width} (rewriting)",
            f"{beyond.timings['total']:.2f}s",
            "correct — far beyond the PE-only wall",
        ],
    ]
    table = render_rows(
        "Headline — rewriting rules vs Positive Equality alone",
        ["configuration", "solve time", "outcome"],
        rows,
    )
    save_table("speedup_headline", table)
    save_snapshot("speedup_pe_only", pe)
    save_snapshot("speedup_rewriting", rw)
    save_snapshot("speedup_beyond", beyond)
    assert pe.correct and rw.correct and beyond.correct
    assert speedup > 10, f"expected a large speedup, got {speedup:.1f}x"
