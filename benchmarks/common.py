"""Shared infrastructure for the paper-table benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
section (Sect. 7), prints it in the paper's layout, and writes it to
``benchmarks/results/`` so the numbers survive pytest's output capture.

Sizes are scaled down from the paper's (which ran for hours on a 2002
workstation in C); set ``REPRO_BENCH_FULL=1`` for larger sweeps.  The
shapes being reproduced — the Positive-Equality-only blow-up, the
size-independence under rewriting, the exact-slice bug reports — are
insensitive to the absolute sizes.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

# Table 1 / Table 4 sweeps (symbolic simulation and rewriting translation).
SIZES_LARGE = [8, 16, 32, 64, 128, 256] if FULL else [4, 8, 16, 32, 64]
WIDTHS_LARGE = [1, 2, 4, 8, 16] if FULL else [1, 2, 4, 8]

# Table 2 / Table 3 sweeps (Positive Equality only — blows up quickly).
SIZES_PE_ONLY = [1, 2, 3, 4] if FULL else [1, 2, 3]
WIDTHS_PE_ONLY = [1, 2, 4] if FULL else [1, 2]
PE_ONLY_BUDGET_SECONDS = 120.0 if FULL else 30.0

# Table 5 sweep: CNF statistics with rewriting, shown for several ROB
# sizes to demonstrate size independence.
SIZES_REWRITE_STATS = [8, 32, 128] if FULL else [8, 32, 64]
WIDTHS_REWRITE_STATS = [1, 2, 4, 8, 16] if FULL else [1, 2, 4, 8]

# Buggy-design experiment (the paper used N=128, k=4, bug at entry 72).
BUG_SIZE = 128 if FULL else 32
BUG_WIDTH = 4
BUG_ENTRY = 72 if FULL else 18  # same relative position (~0.56 N)


def save_table(name: str, text: str) -> None:
    """Print a table and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def save_snapshot(name: str, result, **meta) -> None:
    """Persist a verification result's perf metrics as ``BENCH_<name>.json``.

    The snapshot lands next to the tables in ``benchmarks/results`` and
    feeds the ``python -m repro perf compare`` regression gate.
    """
    from repro.obs.metrics import snapshot_from_result

    RESULTS_DIR.mkdir(exist_ok=True)
    snapshot = snapshot_from_result(result, meta={"bench": name, **meta})
    snapshot.save(RESULTS_DIR / f"BENCH_{name}.json")
