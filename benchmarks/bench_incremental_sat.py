"""Cold vs incremental SAT across the campaign grid.

Two phases, mirroring how the campaign executor actually hits the
solver:

1. **Grid sweep** — the rewriting-method CNFs of the ``N x k`` grid
   (N in 8/16/24, k in 1/2).  The rewritten correspondence formula is
   ROB-size independent, so the k=1 column encodes to byte-identical
   CNFs: a :class:`repro.sat.incremental.SessionPool` solves the digest
   once and resumes it for the other sizes, while the cold path pays the
   full root-propagation cascade every time.

2. **Budget-escalation retries** — one small Positive-Equality config
   solved under an escalating conflict budget (the campaign's retry
   schedule).  The cold path restarts the search from zero on every
   attempt; the incremental session keeps its learned clauses, so the
   attempts compose instead of repeating.

Both phases count ``sat.propagations`` (deterministic, machine
independent) and CPU seconds (advisory).  The snapshot is written to
``BENCH_incremental_sat.json`` at the repository root; ``--check`` exits
non-zero unless the incremental totals beat the cold ones on
propagations — the CI perf-smoke gate.

Run: ``PYTHONPATH=src python benchmarks/bench_incremental_sat.py
[--check] [--out PATH]``
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.encode.evc import encode_validity                    # noqa: E402
from repro.obs.metrics import MetricsSnapshot                   # noqa: E402
from repro.processor.correctness import (                       # noqa: E402
    build_correctness_formula,
    run_diagram,
)
from repro.processor.params import ProcessorConfig              # noqa: E402
from repro.rewriting.engine import rewrite_diagram              # noqa: E402
from repro.sat.incremental import SessionPool, cnf_digest       # noqa: E402
from repro.sat.solver import solve_cnf                          # noqa: E402

from common import save_table                                   # noqa: E402

GRID_SIZES = [8, 16, 24]
GRID_WIDTHS = [1, 2]

PE_SIZE = 3
PE_WIDTH = 1
#: The campaign's escalation schedule, scaled to the pe-small instance
#: (~1.7k conflicts to UNSAT): two undersized attempts, then unbounded.
ESCALATION_CONFLICTS = [256, 1024, None]


def _grid_cnfs():
    """The rewriting-method CNF of every grid point, in sweep order."""
    cnfs = []
    for width in GRID_WIDTHS:
        for size in GRID_SIZES:
            config = ProcessorConfig(n_rob=size, issue_width=width)
            rewrite = rewrite_diagram(run_diagram(config))
            assert rewrite.succeeded, f"rewrite failed for N={size} k={width}"
            encoded = encode_validity(
                rewrite.reduced_formula, memory_mode="conservative"
            )
            assert encoded.constant_validity is None
            cnfs.append((f"N={size} k={width}", encoded.cnf))
    return cnfs


def _pe_cnf():
    config = ProcessorConfig(n_rob=PE_SIZE, issue_width=PE_WIDTH)
    formula = build_correctness_formula(run_diagram(config))
    encoded = encode_validity(formula, memory_mode="precise")
    assert encoded.constant_validity is None
    return encoded.cnf


def _phase_grid():
    cnfs = _grid_cnfs()
    distinct_digests = len({cnf_digest(cnf) for _, cnf in cnfs})

    cold_props = cold_cpu = 0.0
    start = time.process_time()
    statuses = []
    for _, cnf in cnfs:
        result = solve_cnf(cnf)
        statuses.append(result.status)
        cold_props += result.propagations
    cold_cpu = time.process_time() - start

    pool = SessionPool()
    inc_props = 0.0
    start = time.process_time()
    for label, cnf in cnfs:
        result = pool.solve(cnf)
        assert result.status == statuses.pop(0), label
        inc_props += result.propagations
    inc_cpu = time.process_time() - start

    return {
        "jobs": len(cnfs),
        "distinct_digests": distinct_digests,
        "session_hits": pool.hits,
        "cold_props": cold_props,
        "inc_props": inc_props,
        "cold_cpu": cold_cpu,
        "inc_cpu": inc_cpu,
    }


def _phase_escalation():
    cnf = _pe_cnf()

    cold_props = 0.0
    cold_attempts = 0
    start = time.process_time()
    for budget in ESCALATION_CONFLICTS:
        cold_attempts += 1
        result = solve_cnf(cnf, max_conflicts=budget)
        cold_props += result.propagations
        if result.status != "unknown":
            break
    cold_cpu = time.process_time() - start
    cold_status = result.status

    pool = SessionPool()
    inc_props = 0.0
    inc_attempts = 0
    start = time.process_time()
    for budget in ESCALATION_CONFLICTS:
        inc_attempts += 1
        result = pool.solve(cnf, max_conflicts=budget)
        inc_props += result.propagations
        if result.status != "unknown":
            break
    inc_cpu = time.process_time() - start
    assert result.status == cold_status

    return {
        "status": cold_status,
        "cold_attempts": cold_attempts,
        "inc_attempts": inc_attempts,
        "cold_props": cold_props,
        "inc_props": inc_props,
        "cold_cpu": cold_cpu,
        "inc_cpu": inc_cpu,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless incremental beats cold on sat.propagations "
        "in both phases (the CI gate; CPU numbers stay advisory)",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_incremental_sat.json"),
        metavar="PATH",
        help="snapshot destination (default: repo root)",
    )
    args = parser.parse_args(argv)

    grid = _phase_grid()
    esc = _phase_escalation()

    cold_props = grid["cold_props"] + esc["cold_props"]
    inc_props = grid["inc_props"] + esc["inc_props"]
    cold_cpu = grid["cold_cpu"] + esc["cold_cpu"]
    inc_cpu = grid["inc_cpu"] + esc["inc_cpu"]

    snapshot = MetricsSnapshot(
        metrics={
            "grid.jobs": float(grid["jobs"]),
            "grid.distinct_digests": float(grid["distinct_digests"]),
            "grid.session_hits": float(grid["session_hits"]),
            "grid.cold.sat.propagations": grid["cold_props"],
            "grid.incremental.sat.propagations": grid["inc_props"],
            "grid.cold.cpu_seconds": grid["cold_cpu"],
            "grid.incremental.cpu_seconds": grid["inc_cpu"],
            "escalation.cold.attempts": float(esc["cold_attempts"]),
            "escalation.incremental.attempts": float(esc["inc_attempts"]),
            "escalation.cold.sat.propagations": esc["cold_props"],
            "escalation.incremental.sat.propagations": esc["inc_props"],
            "escalation.cold.cpu_seconds": esc["cold_cpu"],
            "escalation.incremental.cpu_seconds": esc["inc_cpu"],
            "total.cold.sat.propagations": cold_props,
            "total.incremental.sat.propagations": inc_props,
            "total.cold.cpu_seconds": cold_cpu,
            "total.incremental.cpu_seconds": inc_cpu,
        },
        meta={
            "bench": "incremental_sat",
            "grid": f"N={GRID_SIZES} k={GRID_WIDTHS} (rewriting)",
            "escalation": (
                f"pe N={PE_SIZE} k={PE_WIDTH}, "
                f"conflict budgets {ESCALATION_CONFLICTS}"
            ),
        },
    )
    snapshot.save(args.out)

    ratio = cold_props / inc_props if inc_props else float("inf")
    save_table(
        "incremental_sat",
        (
            "Cold vs incremental SAT (propagations; CPU advisory)\n"
            f"  grid ({grid['jobs']} jobs, "
            f"{grid['distinct_digests']} distinct CNFs, "
            f"{grid['session_hits']} session hits):\n"
            f"    cold:        {grid['cold_props']:>10.0f} props "
            f"{grid['cold_cpu']:.2f}s\n"
            f"    incremental: {grid['inc_props']:>10.0f} props "
            f"{grid['inc_cpu']:.2f}s\n"
            f"  escalation (pe N={PE_SIZE} k={PE_WIDTH}, "
            f"{esc['cold_attempts']} attempts, {esc['status']}):\n"
            f"    cold:        {esc['cold_props']:>10.0f} props "
            f"{esc['cold_cpu']:.2f}s\n"
            f"    incremental: {esc['inc_props']:>10.0f} props "
            f"{esc['inc_cpu']:.2f}s\n"
            f"  total: {cold_props:.0f} cold vs {inc_props:.0f} "
            f"incremental propagations ({ratio:.2f}x)"
        ),
    )

    if args.check:
        failures = []
        if not grid["inc_props"] < grid["cold_props"]:
            failures.append(
                f"grid: incremental propagations {grid['inc_props']:.0f} "
                f"not below cold {grid['cold_props']:.0f}"
            )
        if not esc["inc_props"] < esc["cold_props"]:
            failures.append(
                f"escalation: incremental propagations "
                f"{esc['inc_props']:.0f} not below cold "
                f"{esc['cold_props']:.0f}"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("check passed: incremental < cold on sat.propagations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
