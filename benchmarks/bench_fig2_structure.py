"""Figure 2: the structure of the Register-File update expressions for a
processor with 3 reorder-buffer entries and issue/retire width 2 —
(a) before and (b) after the rewriting rules remove the updates of the
instructions initially in the ROB.

The paper's only results-bearing figure; regenerated here as the update
triples ``<context, address, data>`` of both sides.
"""

from repro.core import render_rows
from repro.eufm import to_sexpr
from repro.processor import ProcessorConfig, run_diagram
from repro.rewriting import decompose_chain, rewrite_diagram

from common import save_table


def _clip(expr, limit=58):
    text = to_sexpr(expr)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _rows_for(mem):
    chain = decompose_chain(mem)
    rows = []
    for item in chain.items:
        rows.append([_clip(item.context, 44), _clip(item.addr, 16), _clip(item.data)])
    return rows, chain.base


def _generate():
    artifacts = run_diagram(ProcessorConfig(n_rob=3, issue_width=2))
    rewrite = rewrite_diagram(artifacts)
    assert rewrite.succeeded

    sections = []
    impl_rows, impl_base = _rows_for(artifacts.rf_impl)
    sections.append(
        render_rows(
            f"Fig. 2(a) implementation side — updates on {to_sexpr(impl_base)} "
            "(oldest first)",
            ["context", "address", "data"],
            impl_rows,
        )
    )
    spec_rows, spec_base = _rows_for(artifacts.spec_states[2].reg_file)
    sections.append(
        render_rows(
            f"Fig. 2(a) specification side — updates on {to_sexpr(spec_base)}",
            ["context", "address", "data"],
            spec_rows,
        )
    )

    # After the rewriting rules: only the newly fetched instructions remain,
    # over the fresh RegFile_equal_state variable.
    impl_rows_after, base_after = _rows_for(rewrite.reduced_rf_impl)
    spec_rows_after, _ = _rows_for(rewrite.reduced_spec_rfs[-1])
    sections.append(
        render_rows(
            f"Fig. 2(b) implementation side after rewriting — updates on "
            f"{to_sexpr(base_after)}",
            ["context", "address", "data"],
            impl_rows_after,
        )
    )
    sections.append(
        render_rows(
            "Fig. 2(b) specification side after rewriting",
            ["context", "address", "data"],
            spec_rows_after,
        )
    )
    return "\n\n".join(sections), impl_rows, impl_rows_after


def test_fig2_update_structure(benchmark):
    text, before_rows, after_rows = benchmark.pedantic(
        _generate, rounds=1, iterations=1
    )
    save_table("fig2_structure", text)
    # Before: 2 retirement + 5 completion updates on the implementation
    # side.  After: only the 2 newly fetched instructions remain.
    assert len(before_rows) == 7
    assert len(after_rows) == 2
