"""Table 1: CPU time for symbolically simulating the out-of-order
implementation and the specification when generating the EUFM correctness
formula, across reorder-buffer sizes and issue/retire widths."""

import time

from repro.core import render_matrix
from repro.processor import ProcessorConfig, run_diagram

from common import SIZES_LARGE, WIDTHS_LARGE, save_table


def _sweep():
    times = {}
    for size in SIZES_LARGE:
        for width in WIDTHS_LARGE:
            if width > size:
                continue
            artifacts = run_diagram(ProcessorConfig(n_rob=size, issue_width=width))
            times[(size, width)] = artifacts.simulate_seconds
    return times


def test_table1_symbolic_simulation_time(benchmark):
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_matrix(
        "Table 1 — CPU seconds to generate the EUFM correctness formula "
        "(TLSim, both sides of the diagram)",
        SIZES_LARGE,
        WIDTHS_LARGE,
        lambda s, w: times.get((s, w)),
        value_format="{:.2f}",
    )
    save_table("table1_symsim", table)
    # Sanity: simulation cost grows with the reorder-buffer size.
    smallest = times[(SIZES_LARGE[0], 1)]
    largest = times[(SIZES_LARGE[-1], 1)]
    assert largest > smallest
