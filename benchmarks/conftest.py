"""Benchmark collection configuration.

The benchmark files are named ``bench_*.py`` (one per paper table/figure);
this conftest registers that pattern and puts the directory on the import
path so they can share :mod:`common`.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

collect_ignore = ["common.py"]
