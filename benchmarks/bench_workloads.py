"""Does rewriting-rule ROB-size independence survive the workload families?

The paper's central result — after the rewriting rules remove the
retirement entries, the residual SAT problem is independent of the ROB
size — is established for register-register ALU traffic.  This benchmark
asks whether it survives each workload-family extension:

* ``mem`` (loads/stores with forwarding): the dual-chain engine reduces
  the DMem retirement chain exactly like the RegFile chain, so the
  residual CNF should be byte-identical across ROB sizes — independence
  **survives**.
* ``branch``/``mixed`` (speculation with misprediction recovery): the
  wrong-path flag couples the retirement entries across the flush seam,
  the engine declines to reduce (``reduction="none"``), and the full
  formula goes to SAT — independence is **lost** and cost grows with N.
* ``reg-reg``: the seed behaviour, as a control.

Each cell verifies the correct design and records wall-clock phases and
CNF statistics; Positive-Equality-only columns show what every family
costs without the rewriting rules.  Budget-exhausted cells (the paper's
out-of-memory analogue) are recorded with ``"status": "budget"``.

The snapshot is written to ``BENCH_workloads.json`` at the repository
root (chart source for EXPERIMENTS.md §"Workload families").  ``--check``
exits non-zero unless the shape holds: mem CNF stats constant across N,
branch SAT seconds growing with N.

Run: ``PYTHONPATH=src python benchmarks/bench_workloads.py
[--check] [--out PATH]``
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.core.verifier import verify                          # noqa: E402
from repro.processor.params import ProcessorConfig              # noqa: E402

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Per-cell CPU budget; exhausted cells chart the scaling wall the way
#: the paper's 4 GB memory limit did.
BUDGET_SECONDS = 120.0 if FULL else 60.0

#: ROB sizes per (family, method).  Rewriting sweeps are sized so the
#: flat families stay flat over a wide range while the fallback families
#: visibly climb toward the budget; PE-only sweeps hit the wall earlier.
GRID = {
    ("reg-reg", "rewriting"): [3, 6, 10, 16] if not FULL else [3, 8, 16, 32],
    ("mem", "rewriting"): [3, 6, 10, 16] if not FULL else [3, 8, 16, 32],
    ("branch", "rewriting"): [2, 3, 4, 5],
    ("mixed", "rewriting"): [2, 3, 4],
    ("reg-reg", "positive_equality"): [2, 3],
    ("branch", "positive_equality"): [2, 3, 4],
    ("mem", "positive_equality"): [2, 3, 4],
    ("mixed", "positive_equality"): [2, 3],
}

ISSUE_WIDTH = 1


def _cell(family: str, method: str, size: int) -> dict:
    config = ProcessorConfig(size, ISSUE_WIDTH, family=family)
    row = {
        "family": family,
        "method": method,
        "n_rob": size,
        "issue_width": ISSUE_WIDTH,
    }
    start = time.time()
    try:
        result = verify(config, method=method, max_seconds=BUDGET_SECONDS)
    except TimeoutError:
        row.update(status="budget", wall_seconds=round(time.time() - start, 2))
        return row
    assert result.correct, f"correct {family} design reported buggy"
    row.update(
        status="proved",
        wall_seconds=round(time.time() - start, 2),
        sat_seconds=round(result.timings.get("sat", 0.0), 4),
        total_seconds=round(result.timings.get("total", 0.0), 4),
    )
    if result.rewrite is not None:
        row["reduction"] = result.rewrite.reduction
    stats = result.encoding_stats
    if stats is not None:
        row.update(
            cnf_vars=stats.cnf_vars,
            cnf_clauses=stats.cnf_clauses,
            eij_primary=stats.eij_primary,
        )
    return row


def _sweep() -> list:
    rows = []
    for (family, method), sizes in GRID.items():
        for size in sizes:
            row = _cell(family, method, size)
            rows.append(row)
            print(
                f"  {family:8s} {method:18s} N={size:<3d} "
                f"{row['status']:6s} {row['wall_seconds']:7.2f}s "
                f"vars={row.get('cnf_vars', '-')}"
            )
    return rows


def _shape_ok(rows: list) -> list:
    """Return a list of shape violations (empty == the claim holds)."""
    problems = []

    def cells(family, method):
        return [
            r for r in rows
            if r["family"] == family and r["method"] == method
        ]

    # Memory family: full reduction, residual CNF constant across N.
    mem = [r for r in cells("mem", "rewriting") if r["status"] == "proved"]
    if len(mem) < 2:
        problems.append("mem/rewriting: fewer than two proved cells")
    else:
        shapes = {
            (r.get("cnf_vars"), r.get("cnf_clauses"), r.get("eij_primary"))
            for r in mem
        }
        if len(shapes) != 1:
            problems.append(f"mem/rewriting CNF varies with N: {shapes}")
        if any(r.get("reduction") != "full" for r in mem):
            problems.append("mem/rewriting did not fully reduce")

    # Branch family: fallback, SAT cost strictly growing with N.
    branch = [
        r for r in cells("branch", "rewriting") if r["status"] == "proved"
    ]
    if any(r.get("reduction") != "none" for r in branch):
        problems.append("branch/rewriting did not fall back")
    secs = [r["sat_seconds"] for r in sorted(branch, key=lambda r: r["n_rob"])]
    if len(secs) >= 2 and secs[-1] < 4 * secs[0]:
        problems.append(f"branch SAT cost did not grow with N: {secs}")

    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the headline shape holds (mem CNF constant "
        "across N, branch cost growing)",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_workloads.json"),
        metavar="PATH",
        help="snapshot destination (default: repo root)",
    )
    args = parser.parse_args(argv)

    print(f"workload-family sweep (budget {BUDGET_SECONDS:.0f}s per cell)")
    rows = _sweep()
    problems = _shape_ok(rows)

    snapshot = {
        "meta": {
            "bench": "workloads",
            "issue_width": ISSUE_WIDTH,
            "budget_seconds": BUDGET_SECONDS,
            "full": FULL,
        },
        "rows": rows,
        "shape_problems": problems,
    }
    pathlib.Path(args.out).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if problems:
        for problem in problems:
            print(f"SHAPE: {problem}")
        if args.check:
            return 1
    else:
        print("shape holds: mem stays ROB-size independent, branch does not")
    return 0


if __name__ == "__main__":
    sys.exit(main())
