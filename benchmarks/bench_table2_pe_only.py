"""Table 2: CPU time for checking the unsatisfiability of the CNF formula
when only Positive Equality (no rewriting rules) is used.

The paper shows a ~3-orders-of-magnitude jump from an 4-entry to an
8-entry reorder buffer and an out-of-memory failure (4 GB) at 16 entries.
At this reproduction's scale the same super-exponential wall appears a few
sizes earlier; a CPU-time budget plays the role of the paper's memory
limit and exhausted cells are reported as ``>budget``.
"""

from repro.core import render_matrix
from repro.processor import ProcessorConfig

from common import (
    PE_ONLY_BUDGET_SECONDS,
    SIZES_PE_ONLY,
    WIDTHS_PE_ONLY,
    save_table,
)


def _sweep():
    from repro import verify

    cells = {}
    for size in SIZES_PE_ONLY:
        for width in WIDTHS_PE_ONLY:
            if width > size:
                continue
            try:
                result = verify(
                    ProcessorConfig(n_rob=size, issue_width=width),
                    method="positive_equality",
                    max_seconds=PE_ONLY_BUDGET_SECONDS,
                )
                assert result.correct, "correct design reported buggy"
                cells[(size, width)] = f"{result.timings['sat']:.2f}"
            except TimeoutError:
                cells[(size, width)] = f">{PE_ONLY_BUDGET_SECONDS:.0f} (budget)"
    return cells


def test_table2_positive_equality_only_sat_time(benchmark):
    cells = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_matrix(
        "Table 2 — CPU seconds for SAT-checking the CNF, Positive Equality "
        f"only (budget {PE_ONLY_BUDGET_SECONDS:.0f}s stands in for the "
        "paper's 4 GB limit)",
        SIZES_PE_ONLY,
        WIDTHS_PE_ONLY,
        lambda s, w: cells.get((s, w)),
    )
    save_table("table2_pe_only", table)
    # Shape check: the blow-up — either a budget-exceeded cell appears, or
    # the largest finished configuration is >=100x the smallest.
    finished = {
        key: float(value)
        for key, value in cells.items()
        if not value.startswith(">")
    }
    blew_up = len(finished) < len(cells)
    if not blew_up and len(finished) >= 2:
        blew_up = max(finished.values()) >= 100 * max(min(finished.values()), 1e-3)
    assert blew_up, "expected the PE-only method to hit the scaling wall"
