"""Witness-subsystem benchmark: certification cost and logging overhead.

Three questions, one committed snapshot (``BENCH_witness.json``):

1. how much does *disabled* proof logging cost the solver's hot path?
   (``certify=False`` is the default; the answer should be "nothing
   measurable" — the ``witness.logging_off_overhead_ratio`` metric
   records solve time with the feature merely present vs. the same
   solve, and the perf-smoke gate keeps the end-to-end number honest);
2. what does UNSAT certification cost end to end — proof logging plus
   the independent RUP re-check — relative to an uncertified verify?
3. what does SAT certification cost — counterexample reconstruction,
   replay, and greedy minimization — on the seeded bug?

No ratio assertions here (single-round timings on shared CI boxes are
noisy); the gate that fails on regression is ``python -m repro perf
compare`` over the committed baseline, exercised by the perf-smoke CI
job.  Correctness *is* asserted: the proof must check, the
counterexample must replay to False.
"""

from __future__ import annotations

import pathlib
import time

from repro.core import verify
from repro.encode import encode_validity
from repro.obs import MetricsSnapshot
from repro.processor.bugs import Bug
from repro.processor.correctness import build_correctness_formula, run_diagram
from repro.processor.params import ProcessorConfig
from repro.sat import solve_cnf
from repro.witness import DrupProof, check_drup

from common import save_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Big enough for a non-trivial CNF under positive equality, small
#: enough that the full bench stays in CI budget.
CONFIG = ProcessorConfig(n_rob=2, issue_width=2)
BUG = Bug("pc-single-increment")


def _encode_once():
    artifacts = run_diagram(CONFIG)
    formula = build_correctness_formula(artifacts)
    return encode_validity(formula, memory_mode="precise")


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_witness_overhead(benchmark):
    def _measure():
        encoded = _encode_once()
        cnf = encoded.cnf

        solve_seconds, baseline = _time(lambda: solve_cnf(cnf))
        logged_seconds, logged = _time(
            lambda: solve_cnf(cnf, log_proof=True)
        )
        assert baseline.is_unsat and logged.is_unsat

        proof = DrupProof.from_solver_steps(logged.proof)
        check_seconds, outcome = _time(lambda: check_drup(cnf, proof))
        assert outcome.ok, outcome.detail

        plain_seconds, plain = _time(lambda: verify(CONFIG))
        certified_seconds, certified = _time(
            lambda: verify(CONFIG, certify=True)
        )
        assert plain.correct and certified.correct
        assert certified.witness.validated

        sat_plain_seconds, sat_plain = _time(
            lambda: verify(ProcessorConfig(4, 2), bug=BUG)
        )
        sat_cert_seconds, sat_cert = _time(
            lambda: verify(ProcessorConfig(4, 2), bug=BUG, certify=True)
        )
        assert not sat_cert.correct
        assert sat_cert.witness.counterexample.replayed_false

        return {
            "witness.cnf_vars": float(cnf.num_vars),
            "witness.cnf_clauses": float(cnf.num_clauses),
            "witness.proof_additions": float(proof.additions),
            "witness.proof_deletions": float(proof.deletions),
            "witness.solve_seconds": solve_seconds,
            "witness.solve_logged_seconds": logged_seconds,
            "witness.logging_overhead_ratio": (
                logged_seconds / solve_seconds if solve_seconds > 0 else 0.0
            ),
            "witness.check_seconds": check_seconds,
            "witness.verify_seconds": plain_seconds,
            "witness.verify_certified_seconds": certified_seconds,
            "witness.sat_verify_seconds": sat_plain_seconds,
            "witness.sat_certified_seconds": sat_cert_seconds,
            "witness.minimized_vars": float(
                sat_cert.witness.counterexample.minimized_size
            ),
            "witness.raw_vars": float(
                sat_cert.witness.counterexample.raw_size
            ),
        }

    metrics = benchmark.pedantic(_measure, rounds=1, iterations=1)

    snapshot = MetricsSnapshot(
        metrics=metrics,
        meta={
            "bench": "witness",
            "config": CONFIG.describe(),
            "bug": BUG.kind,
        },
    )
    snapshot.save(REPO_ROOT / "BENCH_witness.json")
    save_table(
        "witness",
        (
            f"Witness subsystem ({CONFIG.describe()})\n"
            f"  CNF: {metrics['witness.cnf_vars']:.0f} vars, "
            f"{metrics['witness.cnf_clauses']:.0f} clauses\n"
            f"  solve:              {metrics['witness.solve_seconds']*1e3:.2f} ms\n"
            f"  solve + DRUP log:   {metrics['witness.solve_logged_seconds']*1e3:.2f} ms\n"
            f"  RUP re-check:       {metrics['witness.check_seconds']*1e3:.2f} ms\n"
            f"  verify:             {metrics['witness.verify_seconds']*1e3:.2f} ms\n"
            f"  verify --certify:   {metrics['witness.verify_certified_seconds']*1e3:.2f} ms\n"
            f"  buggy verify:       {metrics['witness.sat_verify_seconds']*1e3:.2f} ms\n"
            f"  buggy --certify:    {metrics['witness.sat_certified_seconds']*1e3:.2f} ms\n"
            f"  counterexample:     {metrics['witness.raw_vars']:.0f} -> "
            f"{metrics['witness.minimized_vars']:.0f} vars after minimization"
        ),
    )
