"""Parallel-campaign benchmark: sequential vs a CPU-count worker pool
on a Table 1-style grid.

Runs the same scaled-down sweep twice through the campaign runner — once
sequentially and once with a worker pool sized to the machine — asserts
the two modes produce identical per-job statuses and methods, and records
the wall-time speedup under ``benchmarks/results``.

The pool is clamped to ``os.cpu_count()``: this workload is CPU-bound,
so oversubscribing (the old hardcoded ``workers=4`` on a smaller box)
only adds process spawn + scheduling overhead and made the "parallel"
leg *slower* than sequential.  The speedup assertion (>= 2.5x) only
fires on machines with at least four CPU cores; on smaller runners the
numbers are still recorded.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.campaign import CampaignRunner, Job, RetryPolicy
from repro.obs import MetricsSnapshot

from common import save_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# A miniature Table 1 grid: big enough that per-job work dominates the
# pool's spawn overhead on a multi-core machine, small enough for CI.
SIZES = [8, 16, 24]
WIDTHS = [1, 2]
# Clamp to the machine: more workers than cores buys nothing for this
# CPU-bound sweep and the spawn overhead regresses the parallel leg.
WORKERS = min(4, os.cpu_count() or 1)


def _jobs():
    return [
        Job.build(size, width)
        for size in SIZES
        for width in WIDTHS
        if width <= size
    ]


def _run_campaign(tmp_path: pathlib.Path, workers: int):
    journal = tmp_path / f"bench_w{workers}.jsonl"
    runner = CampaignRunner(
        str(journal),
        retry=RetryPolicy(max_attempts=2, escalation=2.0),
        workers=workers,
    )
    start = time.perf_counter()
    report = runner.run(_jobs())
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_parallel_campaign_speedup(benchmark, tmp_path):
    def _sweep():
        sequential, seq_seconds = _run_campaign(tmp_path, workers=1)
        parallel, par_seconds = _run_campaign(tmp_path, workers=WORKERS)
        return sequential, seq_seconds, parallel, par_seconds

    sequential, seq_seconds, parallel, par_seconds = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )

    # Identical verdicts: parallel dispatch must not change what is proved.
    seq_outcomes = {
        job_id: (res.status, res.method)
        for job_id, res in sequential.results.items()
    }
    par_outcomes = {
        job_id: (res.status, res.method)
        for job_id, res in parallel.results.items()
    }
    assert seq_outcomes == par_outcomes
    assert all(status == "PROVED" for status, _ in seq_outcomes.values())

    speedup = seq_seconds / par_seconds if par_seconds > 0 else 0.0
    snapshot = MetricsSnapshot(
        metrics={
            "campaign.jobs": float(len(seq_outcomes)),
            "campaign.workers": float(WORKERS),
            "campaign.sequential_seconds": seq_seconds,
            "campaign.parallel_seconds": par_seconds,
            "campaign.speedup": speedup,
        },
        meta={
            "bench": "parallel_campaign",
            "cpu_count": os.cpu_count() or 1,
            "grid": f"N={SIZES} k={WIDTHS}",
        },
    )
    snapshot.save(
        REPO_ROOT / "benchmarks" / "results" / "BENCH_parallel_campaign.json"
    )
    save_table(
        "parallel_campaign",
        (
            f"Parallel campaign ({len(seq_outcomes)} jobs, "
            f"{WORKERS} workers, {os.cpu_count()} cores)\n"
            f"  sequential: {seq_seconds:.2f}s\n"
            f"  parallel:   {par_seconds:.2f}s\n"
            f"  speedup:    {speedup:.2f}x"
        ),
    )

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.5, (
            f"expected >= 2.5x speedup with {WORKERS} workers on a "
            f"{os.cpu_count()}-core machine, got {speedup:.2f}x"
        )
