"""Table 4: CPU time for translating the EUFM correctness formula to an
equivalent Boolean formula when both rewriting rules and Positive Equality
are used (the rewriting pass plus the EUFM-to-CNF translation of the
reduced formula)."""

from repro.core import render_matrix
from repro.encode import encode_validity
from repro.processor import ProcessorConfig, run_diagram
from repro.rewriting import rewrite_diagram

from common import SIZES_LARGE, WIDTHS_LARGE, save_table


def _sweep():
    times = {}
    for size in SIZES_LARGE:
        for width in WIDTHS_LARGE:
            if width > size:
                continue
            artifacts = run_diagram(ProcessorConfig(n_rob=size, issue_width=width))
            rewrite = rewrite_diagram(artifacts)
            assert rewrite.succeeded, rewrite.failure
            encoded = encode_validity(
                rewrite.reduced_formula, memory_mode="conservative"
            )
            times[(size, width)] = (
                rewrite.rewrite_seconds + encoded.stats.translate_seconds
            )
    return times


def test_table4_rewriting_translation_time(benchmark):
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_matrix(
        "Table 4 — CPU seconds for EUFM-to-Boolean translation with "
        "rewriting rules + Positive Equality",
        SIZES_LARGE,
        WIDTHS_LARGE,
        lambda s, w: times.get((s, w)),
        value_format="{:.3f}",
    )
    save_table("table4_rewriting", table)
    # Shape check: unlike Table 2, every configuration completes, including
    # sizes far beyond the PE-only wall.
    assert len(times) == sum(
        1 for s in SIZES_LARGE for w in WIDTHS_LARGE if w <= s
    )
