"""Paper-scale verification runs (not part of the default benchmark sweep).

The paper's flagship configurations: reorder buffers of 512–1,500 entries
with issue/retire widths up to 128.  These take minutes to tens of minutes
in pure Python; run directly:

    python benchmarks/run_paper_scale.py [--max-rob 1500]

Results are appended to ``benchmarks/results/paper_scale.txt``.
"""

from __future__ import annotations

import argparse
import resource
import sys

from repro import ProcessorConfig, verify

from common import RESULTS_DIR

CONFIGS = [
    (512, 16),
    (1024, 32),
    (1500, 16),   # the paper's headline ROB size (minutes)
    (1500, 128),  # the paper's largest configuration (about an hour;
                  # dominated by the k^2 cost of the fetched-instruction
                  # part of the reduced formula)
]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-rob", type=int, default=1500)
    args = parser.parse_args()

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "paper_scale.txt"
    header = (
        f"{'config':>16}  {'simulate':>9}  {'rewrite':>8}  {'translate':>9}  "
        f"{'SAT':>7}  {'total':>8}  {'clauses':>8}  {'peak GB':>8}"
    )
    print(header)
    lines = [header]
    for n, k in CONFIGS:
        if n > args.max_rob:
            continue
        result = verify(ProcessorConfig(n_rob=n, issue_width=k))
        if not result.correct:
            print(f"N={n},k={k}: verification FAILED", file=sys.stderr)
            return 1
        t = result.timings
        peak_gb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e6
        line = (
            f"{f'N={n}, k={k}':>16}  {t['simulate']:>8.1f}s  "
            f"{t['rewrite']:>7.1f}s  {t['translate']:>8.2f}s  "
            f"{t['sat']:>6.2f}s  {t['total']:>7.1f}s  "
            f"{result.encoding_stats.cnf_clauses:>8}  {peak_gb:>8.2f}"
        )
        print(line, flush=True)
        lines.append(line)
    out_path.write_text("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
