"""Paper-scale verification runs (not part of the default benchmark sweep).

The paper's flagship configurations: reorder buffers of 512–1,500 entries
with issue/retire widths up to 128.  These take minutes to tens of minutes
in pure Python; run directly:

    python benchmarks/run_paper_scale.py [--max-rob 1500]

The sweep runs on the crash-safe campaign runner: progress is journaled to
``benchmarks/results/paper_scale.jsonl``, so an interrupted run resumes
where it left off (re-invoke the same command), budgets escalate 2x on
retries, and a configuration that exhausts every budget is recorded as
INCONCLUSIVE instead of aborting the sweep — the same protocol the paper
applies with its 4 GB memory limit.  Pass ``--fresh`` to discard previous
progress and ``--workers N`` to fan the configurations out to a worker
pool (the parent stays the sole journal writer, so resume still works).
The table is appended to ``benchmarks/results/paper_scale.txt``.
"""

from __future__ import annotations

import argparse
import resource
import sys

from repro.campaign import CampaignRunner, Job, RetryPolicy

from common import RESULTS_DIR

CONFIGS = [
    (512, 16),
    (1024, 32),
    (1500, 16),   # the paper's headline ROB size (minutes)
    (1500, 128),  # the paper's largest configuration (about an hour;
                  # dominated by the k^2 cost of the fetched-instruction
                  # part of the reduced formula)
]

HEADER = (
    f"{'config':>16}  {'status':>12}  {'simulate':>9}  {'rewrite':>8}  "
    f"{'translate':>9}  {'SAT':>7}  {'total':>8}  {'clauses':>8}  "
    f"{'peak GB':>8}"
)


def _format_row(job: Job, result) -> str:
    t = result.timings
    peak_gb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e6
    clauses = int(result.stats.get("cnf_clauses", 0))
    return (
        f"{f'N={job.n_rob}, k={job.issue_width}':>16}  "
        f"{result.status:>12}  "
        f"{t.get('simulate', 0.0):>8.1f}s  {t.get('rewrite', 0.0):>7.1f}s  "
        f"{t.get('translate', 0.0):>8.2f}s  {t.get('sat', 0.0):>6.2f}s  "
        f"{t.get('total', 0.0):>7.1f}s  {clauses:>8}  {peak_gb:>8.2f}"
    )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-rob", type=int, default=1500)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run configurations in a worker pool of this size",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard the journal of a previous (partial) run",
    )
    args = parser.parse_args()

    RESULTS_DIR.mkdir(exist_ok=True)
    journal_path = RESULTS_DIR / "paper_scale.jsonl"
    if args.fresh and journal_path.exists():
        journal_path.unlink()

    jobs = [
        Job.build(n, k)
        for n, k in CONFIGS
        if n <= args.max_rob
    ]
    if not jobs:
        print("no configurations selected", file=sys.stderr)
        return 2

    print(HEADER)
    lines = [HEADER]

    def on_result(job: Job, result) -> None:
        line = _format_row(job, result)
        print(line, flush=True)
        lines.append(line)

    runner = CampaignRunner(
        str(journal_path),
        # The reduced formulas are small; a generous base budget with 2x
        # escalation mirrors the paper's rerun-after-memory-kill protocol.
        retry=RetryPolicy(max_attempts=3, escalation=2.0),
        on_result=on_result,
        workers=args.workers,
    )
    report = runner.run(jobs)

    (RESULTS_DIR / "paper_scale.txt").write_text("\n".join(lines) + "\n")
    counts = report.counts()
    if counts.get("BUG_FOUND"):
        print("verification FAILED for some configuration", file=sys.stderr)
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
