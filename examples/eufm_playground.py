"""Using the substrate directly: EUFM as a standalone validity checker.

The library's lower layers are a general-purpose toolkit — the logic of
Equality with Uninterpreted Functions and Memories, the Positive-Equality
propositional encoding, a CDCL SAT solver, and an independent reference
decision procedure.  This example proves (and refutes) a few classic
properties with both engines.

Run:  python examples/eufm_playground.py
"""

from repro.decision import is_valid
from repro.encode import check_validity
from repro.eufm import (
    and_,
    eq,
    implies,
    ite_term,
    not_,
    read,
    to_sexpr,
    tvar,
    uf,
    write,
)


def show(name: str, phi) -> None:
    by_pe = check_validity(phi).valid
    try:
        by_oracle = is_valid(phi)
        agree = "agree" if by_pe == by_oracle else "DISAGREE"
    except TypeError:
        by_oracle, agree = None, "oracle n/a (memories)"
    verdict = "valid" if by_pe else "invalid"
    print(f"  {name:34s} {verdict:8s} [{agree}]")
    print(f"     {to_sexpr(phi)[:90]}")


def main() -> None:
    x, y, z = tvar("x"), tvar("y"), tvar("z")
    m, a, b, d = tvar("M"), tvar("a"), tvar("b"), tvar("d")

    print("Equality and uninterpreted functions:")
    show("congruence", implies(eq(x, y), eq(uf("f", [x]), uf("f", [y]))))
    show("no inverse congruence",
         implies(eq(uf("f", [x]), uf("f", [y])), eq(x, y)))
    show("transitivity",
         implies(and_(eq(x, y), eq(y, z)), eq(x, z)))

    print("\nMemories (Burch–Dill read/write axioms):")
    show("forwarding",
         implies(eq(a, b), eq(read(write(m, a, d), b), d)))
    show("write of the read is a no-op",
         eq(write(m, a, read(m, a)), m))
    show("writes do not always commute",
         eq(write(write(m, a, d), b, x), write(write(m, b, x), a, d)))

    print("\nThe forwarding-logic shape at the heart of the processor proof:")
    dest, src, result, rf_data = (
        tvar("Dest"), tvar("Src"), tvar("Result"), read(m, tvar("Src")),
    )
    forwarded = ite_term(eq(dest, src), result, rf_data)
    spec_side = read(write(m, dest, result), src)
    show("forwarding chain == pushed read", eq(forwarded, spec_side))


if __name__ == "__main__":
    main()
