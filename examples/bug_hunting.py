"""Bug hunting: how each defect class surfaces in the verification flow.

Reproduces the spirit of the paper's Sect. 7.2 experiment (a forwarding
bug at the 72nd of 128 reorder-buffer entries, flagged by the rewriting
rules in seconds) across the full defect family of
:mod:`repro.processor.bugs`:

* data-path defects (forwarding, hazard, retirement) are caught by the
  rewriting rules, which name the exact offending computation slice;
* control defects outside the ROB data path (the PC update) pass the
  rewriting rules and are caught by the SAT check on the reduced formula;
* on small configurations, every verdict is cross-checked against the
  Positive-Equality-only flow to confirm no defect is a false negative;
* finally, the PC bug's SAT counterexample is *certified*: lifted to a
  concrete term-level interpretation, replayed through the EUFM
  evaluator, minimized, and printed as a diagnosis.

Run:  python examples/bug_hunting.py
"""

from repro import Bug, BugKind, ProcessorConfig, verify

LARGE = ProcessorConfig(n_rob=32, issue_width=4)
SMALL = ProcessorConfig(n_rob=2, issue_width=1)

DEFECTS = [
    Bug(BugKind.FORWARD_WRONG_SOURCE, entry=18, operand=1),
    Bug(BugKind.FORWARD_STALE_RESULT, entry=25, operand=2),
    Bug(BugKind.EXECUTE_IGNORES_HAZARD, entry=7),
    Bug(BugKind.RETIRE_WITHOUT_RESULT, entry=3),
    Bug(BugKind.RETIRE_OUT_OF_ORDER, entry=2),
    Bug(BugKind.RETIRE_IGNORES_VALID, entry=1),
    Bug(BugKind.PC_SINGLE_INCREMENT),
]


def main() -> None:
    print(f"Design under test: {LARGE.describe()}\n")
    for bug in DEFECTS:
        result = verify(LARGE, bug=bug)
        if result.suspected_entry is not None:
            outcome = (
                f"rewriting flagged slice {result.suspected_entry} "
                f"({result.failure_detail.split(':')[0]} rule) "
                f"in {result.timings['total']:.2f}s"
            )
        elif not result.correct:
            outcome = (
                "passed rewriting; reduced-formula SAT check found a "
                f"counterexample in {result.timings['total']:.2f}s"
            )
        else:
            outcome = "NOT DETECTED (unexpected!)"
        print(f"  {bug.describe():50s} -> {outcome}")

    print("\nCross-checking against Positive Equality only "
          f"({SMALL.describe()}):")
    for kind in (BugKind.FORWARD_WRONG_SOURCE, BugKind.RETIRE_WITHOUT_RESULT):
        bug = Bug(kind, entry=2 if kind == BugKind.FORWARD_WRONG_SOURCE else 1)
        by_rules = verify(SMALL, bug=bug)
        by_pe = verify(SMALL, method="positive_equality", bug=bug)
        agree = "agree" if by_rules.correct == by_pe.correct else "DISAGREE"
        print(
            f"  {bug.kind:25s} rewriting={'buggy' if not by_rules.correct else 'ok'}"
            f"  positive-equality={'buggy' if not by_pe.correct else 'ok'}"
            f"  -> methods {agree}"
        )

    # The PC bug slips past the rewriting rules and is caught by SAT —
    # so certify the verdict: reconstruct the term-level counterexample,
    # replay it through the evaluator, and minimize it to the variables
    # that actually matter.
    print("\nCertified diagnosis of the PC-update bug (4x2):")
    certified = verify(
        ProcessorConfig(n_rob=4, issue_width=2),
        bug=Bug(BugKind.PC_SINGLE_INCREMENT),
        certify=True,
    )
    cex = certified.witness.counterexample
    assert certified.witness.validated, "counterexample failed to replay"
    print(
        f"  replayed to {cex.replay_value}; "
        f"{cex.raw_size} model variables -> {cex.minimized_size} after "
        "don't-care minimization"
    )
    for line in cex.render().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
