"""Scaling study: why the rewriting rules matter.

Sweeps reorder-buffer sizes with both methods and prints a side-by-side
table — the condensed story of the paper's Tables 2, 4 and 5: the
Positive-Equality-only flow hits a wall almost immediately, while the
rewriting flow scales to two orders of magnitude larger designs with a
correctness formula whose size does not depend on the ROB size at all.

Run:  python examples/scaling_study.py          (~2 minutes)
"""

from repro import ProcessorConfig, verify
from repro.core import render_rows

PE_BUDGET_SECONDS = 20.0
SIZES_PE = [1, 2, 3]
SIZES_REWRITE = [4, 16, 64, 128]
WIDTH = 2


def run_pe(size: int) -> str:
    try:
        result = verify(
            ProcessorConfig(n_rob=size, issue_width=min(WIDTH, size)),
            method="positive_equality",
            max_seconds=PE_BUDGET_SECONDS,
        )
        return f"{result.timings['total']:.2f}s ({result.encoding_stats.cnf_clauses} clauses)"
    except TimeoutError:
        return f">{PE_BUDGET_SECONDS:.0f}s budget exceeded"


def run_rewriting(size: int) -> str:
    result = verify(ProcessorConfig(n_rob=size, issue_width=WIDTH))
    assert result.correct
    stats = result.encoding_stats
    return f"{result.timings['total']:.2f}s ({stats.cnf_clauses} clauses)"


def main() -> None:
    rows = []
    for size in SIZES_PE:
        rows.append([size, run_pe(size), ""])
    for size in SIZES_REWRITE:
        rows.append([size, "", run_rewriting(size)])
    print(
        render_rows(
            f"Verification cost by method (issue/retire width {WIDTH})",
            ["ROB size", "Positive Equality only", "rewriting rules + PE"],
            rows,
        )
    )
    print(
        "\nNote the constant clause count in the right column: after the\n"
        "rewriting rules remove the updates of the instructions initially\n"
        "in the ROB, the formula depends only on the newly fetched\n"
        "instructions (paper, Table 5)."
    )


if __name__ == "__main__":
    main()
