"""Quickstart: formally verify an out-of-order processor.

Builds the abstract out-of-order implementation (16-entry reorder buffer,
issue/retire width 4), symbolically simulates the Burch–Dill commutative
diagram, proves the instructions initially in the ROB correct with the
rewriting rules, and discharges the remaining correctness formula with
Positive Equality and the CDCL SAT solver.

Run:  python examples/quickstart.py
"""

from repro import ProcessorConfig, forwarding_bug, verify
from repro.core.reporting import render_span_tree


def main() -> None:
    config = ProcessorConfig(n_rob=16, issue_width=4)

    print(f"Verifying: {config.describe()}")
    result = verify(config, trace=True)
    print(result.summary())
    print()

    # Where the time went: the hierarchical span trace, with per-layer
    # work counters (the paper's Tables 1/4/5 measure these phases).
    print(render_span_tree(result.trace, title="Span trace:"))
    print()

    # Now plant the paper's bug — broken forwarding for one operand of one
    # reorder-buffer entry — and watch the rewriting rules name the slice.
    bug = forwarding_bug(entry=11)
    print(f"Verifying the same design with a planted defect: {bug.describe()}")
    result = verify(config, bug=bug)
    print(result.summary())


if __name__ == "__main__":
    main()
