"""The Positive-Equality EUFM-to-propositional encoding (the EVC tool).

Pipeline stages: memory elimination/abstraction, polarity classification,
nested-ITE UF/UP elimination, the ``e_ij`` equality encoding with maximal
diversity for p-variables, transitivity constraints, and the end-to-end
:func:`check_validity` driver.
"""

from .eij import EijResult, encode_equalities
from .evc import (
    EncodedValidity,
    EncodingStats,
    ValidityResult,
    check_validity,
    decode_model,
    encode_validity,
)
from .memory_elim import (
    MemoryElimResult,
    abstract_memories_conservative,
    eliminate_memories,
)
from .transitivity import TransitivityResult, transitivity_constraints
from .uf_elim import UFElimResult, eliminate_uf

__all__ = [
    "EijResult",
    "encode_equalities",
    "EncodedValidity",
    "EncodingStats",
    "ValidityResult",
    "check_validity",
    "decode_model",
    "encode_validity",
    "MemoryElimResult",
    "abstract_memories_conservative",
    "eliminate_memories",
    "TransitivityResult",
    "transitivity_constraints",
    "UFElimResult",
    "eliminate_uf",
]
