"""Elimination and abstraction of EUFM memories.

Two strategies, both used in the paper's tool flow:

1. :func:`eliminate_memories` — the *precise* elimination.  Equations
   between memory states are reduced by extensionality to equations between
   reads at a fresh address variable; every ``read`` is then pushed through
   the write chain beneath it (the forwarding property), and reads of the
   initial (variable) memory states are abstracted as applications of a
   fresh uninterpreted function per base memory.  The result contains no
   ``read``/``write`` nodes.

   The reduction of a memory equation to a pointwise comparison at a fresh
   address is exact for *positively* occurring memory equations (the shape
   of the Burch–Dill correctness formula) and conservative otherwise: a
   reported "valid" is always trustworthy; a negative answer may need the
   precise check.  Negative occurrences are reported via
   ``MemoryElimResult.negative_memory_equations``.

2. :func:`abstract_memories_conservative` — the conservative abstraction of
   Sect. 7.2 / Velev TACAS'01: ``read`` and ``write`` become completely
   general uninterpreted functions that do *not* satisfy the forwarding
   property.  On formulas where both sides of the diagram perform identical
   in-order access sequences (the situation after the rewriting rules have
   removed the out-of-order updates), congruence alone suffices, no address
   comparisons are introduced, and the propositional encoding contains no
   ``e_ij`` variables — Table 5's headline property.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..eufm import builder
from ..eufm.ast import Eq, Expr, Formula, Read, Term, TermITE, TermVar, Write
from ..eufm.evaluator import infer_memory_sorts
from ..guard.deadline import current_deadline
from ..eufm.polarity import NEG, POS, _compute_polarity
from ..eufm.traversal import iter_dag, map_dag, rewrite_dag

__all__ = [
    "MemoryElimResult",
    "eliminate_memories",
    "abstract_memories_conservative",
]

_fresh_counter = itertools.count(1)

#: UF symbol prefix for abstracted initial-memory reads (precise mode).
READ_SYMBOL_PREFIX = "read$"
#: UF symbols for the conservative (forwarding-free) abstraction.
CONSERVATIVE_READ = "mem_read$"
CONSERVATIVE_WRITE = "mem_write$"


@dataclass
class MemoryElimResult:
    """Outcome of the precise memory elimination."""

    formula: Formula
    #: fresh address variables introduced per eliminated memory equation.
    fresh_addresses: List[TermVar] = field(default_factory=list)
    #: base memory variable -> UF symbol abstracting its initial contents.
    base_read_symbols: Dict[TermVar, str] = field(default_factory=dict)
    #: memory equations that occurred negatively (reduction is conservative).
    negative_memory_equations: List[Eq] = field(default_factory=list)


def eliminate_memories(phi: Formula, max_rounds: int = 10) -> MemoryElimResult:
    """Produce an equivalid memory-free formula (see module docstring).

    The three steps (extensionality, read pushing, base-read abstraction)
    are iterated to a fixpoint so memory equations nested inside the guards
    of other memory terms are handled as well; ordinary correctness
    formulas converge in a single round.
    """
    result = MemoryElimResult(formula=phi)
    deadline = current_deadline()
    for _ in range(max_rounds):
        deadline.check("encode.memory")
        memory_sorted = infer_memory_sorts(phi)
        if not memory_sorted:
            result.formula = phi
            return result
        polarity = _compute_polarity(phi)

        # Step 1: extensionality — memory equations become pointwise reads.
        def replace_memory_eq(node: Expr):
            if isinstance(node, Eq) and (
                node.lhs in memory_sorted or node.rhs in memory_sorted
            ):
                fresh = builder.tvar(f"addr*{next(_fresh_counter)}")
                result.fresh_addresses.append(fresh)
                if polarity.get(node, POS) & NEG:
                    result.negative_memory_equations.append(node)
                return builder.eq(
                    builder.read(node.lhs, fresh), builder.read(node.rhs, fresh)
                )
            return None

        phi = map_dag(phi, replace_memory_eq)

        # Step 2: push reads through write chains and memory ITEs.
        phi = _push_all_reads(phi)

        # Step 3: abstract reads of base memory variables as UFs.
        def abstract_base_read(node: Expr):
            if isinstance(node, Read) and isinstance(node.mem, TermVar):
                symbol = result.base_read_symbols.setdefault(
                    node.mem, READ_SYMBOL_PREFIX + node.mem.name
                )
                return builder.uf(symbol, [node.addr])
            return None

        phi = map_dag(phi, abstract_base_read)

    for node in iter_dag(phi):
        deadline.tick("encode.memory")
        if isinstance(node, (Read, Write)):
            raise ValueError(f"memory node survived elimination: {node!r}")
    result.formula = phi
    return result


def _push_all_reads(phi: Formula) -> Formula:
    """Rewrite every read so it applies directly to a base memory variable.

    ``read(write(m, a, d), b)`` becomes ``ITE(a = b, d, read(m, b))`` and
    ``read(ITE(c, m1, m2), b)`` becomes ``ITE(c, read(m1, b), read(m2, b))``.
    Implemented with an explicit stack and a cache keyed on
    ``(memory, address)`` so shared chains are expanded once and deep chains
    do not overflow the interpreter stack.
    """
    cache: Dict[Tuple[Term, Term], Term] = {}
    deadline = current_deadline()

    def pushed_read(mem: Term, addr: Term) -> Term:
        stack: List[Tuple[Term, Term]] = [(mem, addr)]
        while stack:
            deadline.tick("encode.memory")
            cur_mem, cur_addr = stack[-1]
            key = (cur_mem, cur_addr)
            if key in cache:
                stack.pop()
                continue
            if isinstance(cur_mem, Write):
                inner = (cur_mem.mem, cur_addr)
                if inner not in cache:
                    stack.append(inner)
                    continue
                hit = builder.eq(cur_mem.addr, cur_addr)
                cache[key] = builder.ite_term(hit, cur_mem.data, cache[inner])
                stack.pop()
                continue
            if isinstance(cur_mem, TermITE):
                left = (cur_mem.then, cur_addr)
                right = (cur_mem.els, cur_addr)
                missing = [k for k in (left, right) if k not in cache]
                if missing:
                    stack.extend(missing)
                    continue
                cache[key] = builder.ite_term(
                    cur_mem.cond, cache[left], cache[right]
                )
                stack.pop()
                continue
            cache[key] = builder.read(cur_mem, cur_addr)
            stack.pop()
        return cache[(mem, addr)]

    def replace(node: Expr):
        if isinstance(node, Read) and not isinstance(node.mem, TermVar):
            return pushed_read(node.mem, node.addr)
        return None

    # Reads can nest (the address of a read may itself contain reads);
    # map_dag rebuilds bottom-up, so inner reads are already replaced by the
    # time the outer one is visited.  However `replace` receives the
    # *original* node; rebuild manually instead for full generality.
    deadline = current_deadline()
    previous = None
    current = phi
    while previous is not current:
        deadline.tick("encode.memory")
        previous = current
        current = map_dag(current, replace)
    return current


def abstract_memories_conservative(phi: Formula) -> Formula:
    """Replace ``read``/``write`` by general UFs without forwarding.

    Sound for validity checking (every real memory is one interpretation of
    the uninterpreted ``mem_read$``/``mem_write$``); complete only when the
    formula does not rely on the forwarding property — e.g. the rewritten
    correctness formulas, where both diagram sides perform identical
    in-order memory accesses.
    """
    current_deadline().check("encode.memory")

    def replace(_original: Expr, rebuilt: Expr):
        if isinstance(rebuilt, Read):
            return builder.uf(CONSERVATIVE_READ, [rebuilt.mem, rebuilt.addr])
        if isinstance(rebuilt, Write):
            return builder.uf(
                CONSERVATIVE_WRITE, [rebuilt.mem, rebuilt.addr, rebuilt.data]
            )
        return None

    return rewrite_dag(phi, replace)
