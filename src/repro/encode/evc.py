"""EVC-style end-to-end translation: EUFM validity -> CNF unsatisfiability.

The pipeline reproduces the tool flow of the paper (Sect. 2 and 7):

1. memory elimination — precise (forwarding-aware) or conservative
   (``read``/``write`` as general UFs; used on the rewritten formulas);
2. Positive-Equality polarity classification;
3. nested-ITE elimination of UFs and UPs;
4. ``e_ij`` encoding of the remaining equations with maximal diversity for
   p-variables;
5. transitivity constraints over the ``e_ij`` comparison graph;
6. negation + Tseitin translation to CNF.

The resulting CNF is unsatisfiable exactly when the EUFM formula is valid
(for the positively-occurring-memory-equation shape of Burch–Dill
correctness formulas).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import BudgetExhausted, EncodingError
from ..eufm import builder
from ..eufm.ast import FALSE, TRUE, BoolVar, Formula, TermVar
from ..eufm.polarity import PolarityInfo, classify
from ..eufm.traversal import bool_variables, term_variables
from ..obs.tracer import current_tracer
from ..sat.backend import ReferenceBackend, current_backend
from ..sat.cnf import Cnf
from ..sat.incremental import current_session_pool
from ..sat.solver import SatResult, solve_cnf
from ..sat.tseitin import TseitinResult, cnf_for_satisfiability
from .eij import EijResult, encode_equalities
from .memory_elim import (
    MemoryElimResult,
    abstract_memories_conservative,
    eliminate_memories,
)
from .transitivity import TransitivityResult, transitivity_constraints
from .uf_elim import UFElimResult, eliminate_uf

__all__ = ["EncodingStats", "EncodedValidity", "ValidityResult", "encode_validity", "check_validity"]


@dataclass
class EncodingStats:
    """CNF statistics in the layout of Tables 3 and 5 of the paper."""

    eij_primary: int = 0
    other_primary: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    translate_seconds: float = 0.0

    @property
    def total_primary(self) -> int:
        return self.eij_primary + self.other_primary

    def as_row(self) -> Dict[str, float]:
        return {
            "eij_primary": self.eij_primary,
            "other_primary": self.other_primary,
            "total_primary": self.total_primary,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "translate_seconds": round(self.translate_seconds, 4),
        }


@dataclass
class EncodedValidity:
    """All artifacts of the EUFM -> CNF translation."""

    cnf: Cnf
    stats: EncodingStats
    propositional: Formula
    tseitin: Optional[TseitinResult] = None
    memory: Optional[MemoryElimResult] = None
    #: the memory-free formula the polarity classification ran on (the
    #: input to UF elimination); audited by :mod:`repro.analysis`.
    memory_free: Optional[Formula] = None
    polarity: Optional[PolarityInfo] = None
    uf_elim: Optional[UFElimResult] = None
    eij: Optional[EijResult] = None
    transitivity: Optional[TransitivityResult] = None
    #: set when the formula collapsed to a constant before CNF.
    constant_validity: Optional[bool] = None


@dataclass
class ValidityResult:
    """Outcome of a full validity check."""

    valid: bool
    encoded: EncodedValidity
    sat_result: Optional[SatResult] = None
    #: named assignment of an invalid formula; ``None`` values mark
    #: variables the SAT model left unassigned (don't-cares).
    counterexample: Optional[Dict[str, Optional[bool]]] = None

    @property
    def solve_seconds(self) -> float:
        return self.sat_result.cpu_seconds if self.sat_result else 0.0


def encode_validity(
    phi: Formula,
    memory_mode: str = "precise",
    cnf_encoding: str = "polarity",
) -> EncodedValidity:
    """Translate the EUFM validity problem for ``phi`` into CNF.

    ``cnf_encoding`` selects the final clause translation: ``"polarity"``
    (Plaisted–Greenbaum, the default — directional definition clauses) or
    ``"full"`` (bidirectional Tseitin).
    """
    if memory_mode not in ("precise", "conservative"):
        raise ValueError(f"unknown memory mode {memory_mode!r}")
    if cnf_encoding not in ("polarity", "full"):
        raise ValueError(f"unknown CNF encoding {cnf_encoding!r}")
    start = time.perf_counter()
    stats = EncodingStats()
    tracer = current_tracer()

    with tracer.span("translate") as translate_span:
        with tracer.span("memory"):
            if memory_mode == "conservative":
                memory_result = None
                phi_no_mem = abstract_memories_conservative(phi)
            else:
                memory_result = eliminate_memories(phi)
                phi_no_mem = memory_result.formula
                tracer.add(
                    "encode.fresh_addresses",
                    len(memory_result.fresh_addresses),
                )
                tracer.add(
                    "encode.negative_memory_equations",
                    len(memory_result.negative_memory_equations),
                )

        with tracer.span("polarity"):
            polarity = classify(phi_no_mem)
            tracer.add("encode.g_vars", len(polarity.g_vars))
            tracer.add(
                "encode.general_equations", len(polarity.general_equations)
            )

        with tracer.span("uf_elim"):
            uf_result = eliminate_uf(phi_no_mem, polarity)
            tracer.add(
                "encode.fresh_term_vars", len(uf_result.fresh_term_vars)
            )
            tracer.add(
                "encode.fresh_bool_vars", len(uf_result.fresh_bool_vars)
            )

        with tracer.span("eij"):
            g_vars: Set[TermVar] = set(polarity.g_vars) | uf_result.fresh_g_vars
            known_vars: Set[TermVar] = set(term_variables(phi_no_mem))
            known_vars.update(uf_result.fresh_term_vars)
            eij_result = encode_equalities(
                uf_result.formula, g_vars, known_vars=known_vars
            )
            tracer.add("encode.eij_vars", len(eij_result.eij_vars))
            tracer.add(
                "encode.diverse_pairs", len(eij_result.diverse_pairs)
            )
            tracer.add(
                "encode.p_vars", len(known_vars) - len(g_vars & known_vars)
            )

        with tracer.span("transitivity"):
            trans_result = transitivity_constraints(eij_result.eij_vars)
            tracer.add(
                "encode.transitivity_constraints",
                len(trans_result.constraints),
            )
            tracer.add("encode.fill_vars", len(trans_result.fill_vars))

        prop = eij_result.formula
        negated = builder.and_(builder.not_(prop), *trans_result.constraints)

        with tracer.span("tseitin"):
            tseitin_result = cnf_for_satisfiability(
                negated, polarity_aware=(cnf_encoding == "polarity")
            )
        stats.translate_seconds = time.perf_counter() - start
        translate_span.set(
            "encode.cnf_vars", float(tseitin_result.cnf.num_vars)
        )
        translate_span.set(
            "encode.cnf_clauses", float(tseitin_result.cnf.num_clauses)
        )

    total_eij = len(eij_result.eij_vars) + len(trans_result.fill_vars)
    stats.eij_primary = sum(
        1
        for var in tseitin_result.var_map
        if var.name.startswith("eij!")
    )
    stats.other_primary = len(tseitin_result.var_map) - stats.eij_primary
    stats.cnf_vars = tseitin_result.cnf.num_vars
    stats.cnf_clauses = tseitin_result.cnf.num_clauses

    encoded = EncodedValidity(
        cnf=tseitin_result.cnf,
        stats=stats,
        propositional=prop,
        tseitin=tseitin_result,
        memory=memory_result,
        memory_free=phi_no_mem,
        polarity=polarity,
        uf_elim=uf_result,
        eij=eij_result,
        transitivity=trans_result,
    )
    if negated is TRUE:
        encoded.constant_validity = False
    elif negated is FALSE:
        encoded.constant_validity = True
    return encoded


def _dispatch_solve(
    cnf: Cnf,
    max_conflicts: Optional[int],
    max_seconds: Optional[float],
    log_proof: bool,
) -> SatResult:
    """Route a CNF to the ambient SAT backend / session pool.

    Resolution order: a non-reference ambient backend wins (falling back
    to the reference when the call needs a DRUP proof the backend cannot
    produce); otherwise an ambient session pool (campaign runs install
    one so same-digest CNFs resume incrementally); otherwise the classic
    cold reference solve — byte-identical to the pre-backend behaviour.
    """
    backend = current_backend()
    if backend is not ReferenceBackend:
        if log_proof and not backend.supports_proof:
            return solve_cnf(
                cnf,
                max_conflicts=max_conflicts,
                max_seconds=max_seconds,
                log_proof=True,
            )
        return backend.solve_cnf(
            cnf,
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            log_proof=log_proof,
        )
    pool = current_session_pool()
    if pool is not None:
        return pool.solve(
            cnf,
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            log_proof=log_proof,
        )
    return solve_cnf(
        cnf,
        max_conflicts=max_conflicts,
        max_seconds=max_seconds,
        log_proof=log_proof,
    )


def check_validity(
    phi: Formula,
    memory_mode: str = "precise",
    cnf_encoding: str = "polarity",
    max_conflicts: Optional[int] = None,
    max_seconds: Optional[float] = None,
    log_proof: bool = False,
) -> ValidityResult:
    """Encode ``phi`` and decide its validity with the CDCL solver.

    ``log_proof=True`` makes the solver record a DRUP clause proof on
    ``sat_result.proof`` (certified against ``encoded.cnf`` — the exact
    post-dedupe, post-Tseitin CNF the solver saw — by
    :func:`repro.witness.drup.check_drup`).
    """
    encoded = encode_validity(
        phi, memory_mode=memory_mode, cnf_encoding=cnf_encoding
    )
    if encoded.constant_validity is not None:
        return ValidityResult(valid=encoded.constant_validity, encoded=encoded)
    sat_result = _dispatch_solve(
        encoded.cnf,
        max_conflicts=max_conflicts,
        max_seconds=max_seconds,
        log_proof=log_proof,
    )
    if sat_result.status == "unknown":
        budget_kind = (
            "conflicts"
            if max_conflicts is not None and sat_result.conflicts >= max_conflicts
            else "seconds"
        )
        raise BudgetExhausted(
            "SAT budget exhausted before the validity check completed "
            f"({sat_result.conflicts} conflicts, "
            f"{sat_result.cpu_seconds:.1f}s)",
            conflicts=sat_result.conflicts,
            seconds=sat_result.cpu_seconds,
            budget_kind=budget_kind,
            timings={
                "translate": encoded.stats.translate_seconds,
                "sat": sat_result.cpu_seconds,
            },
        )
    valid = sat_result.is_unsat
    counterexample = None
    if sat_result.is_sat:
        counterexample = decode_model(encoded, sat_result.model)
    return ValidityResult(
        valid=valid,
        encoded=encoded,
        sat_result=sat_result,
        counterexample=counterexample,
    )


def decode_model(
    encoded: EncodedValidity, model: Dict[int, bool]
) -> Dict[str, Optional[bool]]:
    """Map a SAT model back to named EUFM Boolean/e_ij variables.

    Every variable the Tseitin translation knows appears in the result:
    variables the SAT model left unassigned map to ``None`` (explicit
    don't-cares) rather than being silently dropped, so callers can tell
    "false" apart from "the solver never had to decide this".
    """
    if encoded.tseitin is None:
        raise EncodingError(
            "cannot decode a model: the formula collapsed to a constant "
            "before CNF translation"
        )
    assignment: Dict[str, Optional[bool]] = {}
    for var, index in encoded.tseitin.var_map.items():
        assignment[var.name] = model.get(index)
    return assignment
