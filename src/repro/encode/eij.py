"""The ``e_ij`` propositional encoding of term equality (Goel et al.,
CAV'98) with the Positive-Equality refinement (Bryant, German & Velev).

Input: a memory-free, UF-free formula — terms are variables and ITEs only.
Every equation is pushed down to comparisons between term variables:

* ``x = x``                       encodes to ``TRUE``;
* ``x = y`` with ``x`` or ``y`` a **p-variable** encodes to ``FALSE``
  (maximal diversity: p-terms behave as distinct constants);
* ``x = y`` with both **g-variables** encodes to a fresh Boolean ``e_ij``
  variable (symmetric: one variable per unordered pair).

The output is purely propositional.  Completeness additionally requires the
transitivity constraints of :mod:`repro.encode.transitivity` over the
``e_ij`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import EncodingError
from ..eufm import builder
from ..eufm.ast import (
    FALSE,
    TRUE,
    BoolVar,
    Eq,
    Expr,
    Formula,
    Read,
    Term,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from ..eufm.traversal import iter_dag, _rebuild
from ..guard.deadline import current_deadline

__all__ = ["EijResult", "encode_equalities"]


@dataclass
class EijResult:
    """Outcome of the equality encoding."""

    formula: Formula
    #: unordered g-variable pair -> the e_ij Boolean variable encoding it.
    eij_vars: Dict[FrozenSet[TermVar], BoolVar] = field(default_factory=dict)
    #: comparisons that were decided FALSE by maximal diversity.
    diverse_pairs: Set[FrozenSet[TermVar]] = field(default_factory=set)

    @property
    def num_eij(self) -> int:
        return len(self.eij_vars)


def encode_equalities(
    phi: Formula,
    g_vars: Set[TermVar],
    known_vars: Optional[Set[TermVar]] = None,
) -> EijResult:
    """Encode every equation in ``phi`` propositionally.

    ``g_vars`` is the set of general term variables (original g-variables
    from the polarity classification plus the general fresh variables from
    UF elimination); every other term variable is treated as a p-variable
    under maximal diversity.

    ``known_vars``, when given, is the set of term variables the polarity
    classification actually saw.  Encoding an equality over a variable
    outside it raises :class:`~repro.errors.EncodingError`: such a
    variable was silently defaulted to a p-variable without the
    classification ever justifying maximal diversity over it.
    """
    result = EijResult(formula=phi)
    deadline = current_deadline()
    deadline.check("encode.eij")
    # Cache of pairwise term-equality formulas, keyed on unordered pairs.
    pair_cache: Dict[Tuple[Term, Term], Formula] = {}
    rebuilt: Dict[Expr, Expr] = {}

    def var_equality(a: TermVar, b: TermVar) -> Formula:
        if a is b:
            return TRUE
        if known_vars is not None:
            for var in (a, b):
                if var not in known_vars:
                    raise EncodingError(
                        f"equality over variable {var.name!r} which the "
                        "polarity classification never saw; its implicit "
                        "p-variable default is unjustified"
                    )
        key = frozenset((a, b))
        if a not in g_vars or b not in g_vars:
            result.diverse_pairs.add(key)
            return FALSE
        if key not in result.eij_vars:
            low, high = sorted((a.name, b.name))
            result.eij_vars[key] = builder.bvar(f"eij!{low}!{high}")
        return result.eij_vars[key]

    def term_equality(t1: Term, t2: Term) -> Formula:
        """Push the equality of two ITE/variable terms down to the leaves.

        Iterative with an explicit stack; memoized on unordered pairs.
        """
        root_key = _pair_key(t1, t2)
        stack: List[Tuple[Term, Term]] = [root_key]
        while stack:
            deadline.tick("encode.eij")
            a, b = stack[-1]
            key = (a, b)
            if key in pair_cache:
                stack.pop()
                continue
            if a is b:
                pair_cache[key] = TRUE
                stack.pop()
                continue
            if isinstance(a, TermITE):
                left = _pair_key(a.then, b)
                right = _pair_key(a.els, b)
                missing = [k for k in (left, right) if k not in pair_cache]
                if missing:
                    stack.extend(missing)
                    continue
                pair_cache[key] = builder.ite_formula(
                    a.cond, pair_cache[left], pair_cache[right]
                )
                stack.pop()
                continue
            if isinstance(b, TermITE):
                left = _pair_key(a, b.then)
                right = _pair_key(a, b.els)
                missing = [k for k in (left, right) if k not in pair_cache]
                if missing:
                    stack.extend(missing)
                    continue
                pair_cache[key] = builder.ite_formula(
                    b.cond, pair_cache[left], pair_cache[right]
                )
                stack.pop()
                continue
            if isinstance(a, TermVar) and isinstance(b, TermVar):
                pair_cache[key] = var_equality(a, b)
                stack.pop()
                continue
            raise TypeError(
                f"equality over unsupported terms {a!r} / {b!r}; "
                "eliminate UFs and memories first"
            )
        return pair_cache[root_key]

    for node in iter_dag(phi):
        deadline.tick("encode.eij")
        if isinstance(node, (UFApp, UPApp, Read, Write)):
            raise TypeError(
                f"{node.kind!r} node reached the e_ij encoding; run the "
                "earlier pipeline stages first"
            )
        if isinstance(node, Eq):
            lhs = rebuilt[node.lhs]
            rhs = rebuilt[node.rhs]
            rebuilt[node] = term_equality(lhs, rhs)
        else:
            rebuilt[node] = _rebuild(node, rebuilt)

    encoded = rebuilt[phi]
    if not isinstance(encoded, Formula):
        raise TypeError("input to encode_equalities must be a formula")
    result.formula = encoded
    return result


def _pair_key(a: Term, b: Term) -> Tuple[Term, Term]:
    """Unordered pair normal form (by interning uid)."""
    if b.uid < a.uid:
        return (b, a)
    return (a, b)
