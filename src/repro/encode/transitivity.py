"""Transitivity constraints for the ``e_ij`` encoding (Bryant & Velev,
"Boolean Satisfiability with Transitivity Constraints", TOCL).

A propositional model of the encoded formula must correspond to *some*
assignment of values to the g-variables, i.e. the relation induced by the
``e_ij`` variables must be embeddable in an equivalence relation.  It
suffices to enforce triangle consistency over a *chordal* supergraph of the
comparison graph: for every triangle ``{a, b, c}``,

    e_ab AND e_bc  ->  e_ac        (three rotations).

The comparison graph is chordalized by greedy minimum-degree vertex
elimination; fill edges introduce fresh ``e_ij`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..eufm import builder
from ..eufm.ast import BoolVar, Formula, TermVar
from ..guard.deadline import current_deadline

__all__ = ["TransitivityResult", "transitivity_constraints"]


@dataclass
class TransitivityResult:
    """Triangle constraints plus the fill variables that were added."""

    constraints: List[Formula] = field(default_factory=list)
    fill_vars: Dict[FrozenSet[TermVar], BoolVar] = field(default_factory=dict)
    triangles: List[Tuple[TermVar, TermVar, TermVar]] = field(
        default_factory=list
    )


def transitivity_constraints(
    eij_vars: Dict[FrozenSet[TermVar], BoolVar],
) -> TransitivityResult:
    """Build triangle constraints making the ``e_ij`` encoding complete."""
    result = TransitivityResult()
    edges: Dict[FrozenSet[TermVar], BoolVar] = dict(eij_vars)
    adjacency: Dict[TermVar, Set[TermVar]] = {}
    for pair in edges:
        a, b = tuple(pair)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    def edge_var(a: TermVar, b: TermVar) -> BoolVar:
        pair = frozenset((a, b))
        if pair not in edges:
            low, high = sorted((a.name, b.name))
            fresh = builder.bvar(f"eij!{low}!{high}")
            edges[pair] = fresh
            result.fill_vars[pair] = fresh
        return edges[pair]

    deadline = current_deadline()
    deadline.check("encode.transitivity")
    remaining = dict(adjacency)
    emitted: Set[FrozenSet[TermVar]] = set()
    while remaining:
        deadline.tick("encode.transitivity")
        # Greedy minimum-degree elimination (ties by name for determinism).
        vertex = min(remaining, key=lambda v: (len(remaining[v]), v.name))
        neighbors = sorted(remaining.pop(vertex), key=lambda v: v.name)
        for index, first in enumerate(neighbors):
            for second in neighbors[index + 1 :]:
                deadline.tick("encode.transitivity")
                # Fill edge between the neighbors, then the triangle.
                pair = frozenset((first, second))
                edge_var(first, second)
                remaining.setdefault(first, set()).add(second)
                remaining.setdefault(second, set()).add(first)
                triangle = frozenset((vertex, first, second))
                if triangle in emitted:
                    continue
                emitted.add(triangle)
                result.triangles.append((vertex, first, second))
                e_vf = edge_var(vertex, first)
                e_vs = edge_var(vertex, second)
                e_fs = edge_var(first, second)
                result.constraints.append(
                    builder.implies(builder.and_(e_vf, e_vs), e_fs)
                )
                result.constraints.append(
                    builder.implies(builder.and_(e_vf, e_fs), e_vs)
                )
                result.constraints.append(
                    builder.implies(builder.and_(e_vs, e_fs), e_vf)
                )
        for neighbor in neighbors:
            if neighbor in remaining:
                remaining[neighbor].discard(vertex)
    return result
