"""Elimination of uninterpreted functions and predicates via nested ITEs.

The scheme of Bryant, German & Velev (TOCL 2001): the first application of a
function ``f`` is replaced by a fresh term variable ``vc_f_1``; the ``i``-th
application (in a fixed topological order) becomes

    ITE(args_i = args_1, vc_f_1,
        ITE(args_i = args_2, vc_f_2, ... vc_f_i))

which enforces exactly functional consistency.  Predicates are eliminated
the same way with fresh Boolean variables.

Fresh term variables inherit the p/g classification of the function symbol
they replace (computed by :func:`repro.eufm.polarity.classify` *before*
elimination); the registry returned here feeds the ``e_ij`` leaf encoding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..eufm import builder
from ..eufm.ast import (
    BoolVar,
    Expr,
    Formula,
    Read,
    Term,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from ..eufm.polarity import PolarityInfo
from ..eufm.traversal import iter_dag
from ..guard.deadline import current_deadline

__all__ = ["UFElimResult", "eliminate_uf"]

_fresh_counter = itertools.count(1)


@dataclass
class UFElimResult:
    """Outcome of UF/UP elimination."""

    formula: Formula
    #: fresh term variables introduced, in introduction order.
    fresh_term_vars: List[TermVar] = field(default_factory=list)
    #: fresh Boolean variables introduced for predicate applications.
    fresh_bool_vars: List[BoolVar] = field(default_factory=list)
    #: fresh term variables that are general (their symbol was a g-symbol).
    fresh_g_vars: Set[TermVar] = field(default_factory=set)
    #: fresh variable -> (symbol, argument terms) provenance, for
    #: counterexample decoding.
    provenance: Dict[Expr, Tuple[str, Tuple[Term, ...]]] = field(
        default_factory=dict
    )


def eliminate_uf(
    phi: Formula, polarity_info: Optional[PolarityInfo] = None
) -> UFElimResult:
    """Replace every UF/UP application in ``phi`` with nested ITEs.

    ``polarity_info`` (from :func:`repro.eufm.polarity.classify` on ``phi``)
    determines which fresh term variables are classified general.  When
    omitted, every fresh variable is conservatively treated as general.
    """
    deadline = current_deadline()
    deadline.check("encode.uf_elim")
    for node in iter_dag(phi):
        if isinstance(node, (Read, Write)):
            raise TypeError("eliminate memories before eliminating UFs")

    result = UFElimResult(formula=phi)
    # Per symbol: list of (replaced argument tuples, fresh variable).
    uf_history: Dict[str, List[Tuple[Tuple[Term, ...], Term]]] = {}
    up_history: Dict[str, List[Tuple[Tuple[Term, ...], Formula]]] = {}

    def replace(node: Expr):
        return None

    # map_dag's leaf_fn sees original nodes; we need rebuilt children, so
    # run a manual bottom-up rebuild instead.
    rebuilt: Dict[Expr, Expr] = {}
    from ..eufm.traversal import _rebuild

    for node in iter_dag(phi):
        deadline.tick("encode.uf_elim")
        if isinstance(node, UFApp):
            args = tuple(rebuilt[a] for a in node.args)
            rebuilt[node] = _eliminate_app(
                node.symbol, args, uf_history, result, polarity_info
            )
        elif isinstance(node, UPApp):
            args = tuple(rebuilt[a] for a in node.args)
            rebuilt[node] = _eliminate_pred(node.symbol, args, up_history, result)
        else:
            rebuilt[node] = _rebuild(node, rebuilt)

    result.formula = rebuilt[phi]
    return result


def _args_match(args_a: Tuple[Term, ...], args_b: Tuple[Term, ...]) -> Formula:
    return builder.and_(
        *[builder.eq(a, b) for a, b in zip(args_a, args_b)]
    )


def _eliminate_app(
    symbol: str,
    args: Tuple[Term, ...],
    history: Dict[str, List[Tuple[Tuple[Term, ...], Term]]],
    result: UFElimResult,
    polarity_info: Optional[PolarityInfo],
) -> Term:
    entries = history.setdefault(symbol, [])
    for seen_args, value in entries:
        if seen_args == args:
            return value
    fresh = builder.tvar(f"vc!{symbol}!{len(entries) + 1}!{next(_fresh_counter)}")
    result.fresh_term_vars.append(fresh)
    result.provenance[fresh] = (symbol, args)
    if polarity_info is None or polarity_info.is_g_symbol(symbol):
        result.fresh_g_vars.add(fresh)
    replacement: Term = fresh
    # Nest newest-last: ITE(match_1, vc_1, ITE(match_2, vc_2, ... fresh)).
    for seen_args, value in reversed(entries):
        replacement = builder.ite_term(
            _args_match(args, seen_args), value, replacement
        )
    entries.append((args, fresh))
    return replacement


def _eliminate_pred(
    symbol: str,
    args: Tuple[Term, ...],
    history: Dict[str, List[Tuple[Tuple[Term, ...], Formula]]],
    result: UFElimResult,
) -> Formula:
    entries = history.setdefault(symbol, [])
    for seen_args, value in entries:
        if seen_args == args:
            return value
    fresh = builder.bvar(f"vp!{symbol}!{len(entries) + 1}!{next(_fresh_counter)}")
    result.fresh_bool_vars.append(fresh)
    result.provenance[fresh] = (symbol, args)
    replacement: Formula = fresh
    for seen_args, value in reversed(entries):
        replacement = builder.ite_formula(
            _args_match(args, seen_args), value, replacement
        )
    entries.append((args, fresh))
    return replacement
