"""Structured exception taxonomy for the verification stack.

Every failure a verification run can surface derives from
:class:`ReproError`, so callers (and in particular the campaign runner in
:mod:`repro.campaign`) can distinguish *recoverable* failures — a SAT
budget that ran out and can be escalated, a rewriting pass that did not
conform — from programming errors, without matching on bare
``TimeoutError``/``RuntimeError``.

:class:`BudgetExhausted` additionally subclasses :class:`TimeoutError` so
existing ``except TimeoutError`` call sites keep working; it carries the
partial statistics of the aborted run (conflicts spent, seconds, and the
phase ``timings`` accumulated before the budget ran out).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "ReproError",
    "BudgetExhausted",
    "MemoryBudgetExhausted",
    "RewriteFailed",
    "EncodingError",
    "SolverError",
    "AnalysisError",
    "WitnessError",
    "CampaignError",
    "JournalError",
]


class ReproError(Exception):
    """Base class of all structured verification failures."""


class BudgetExhausted(ReproError, TimeoutError):
    """A conflict or wall-clock budget ran out before a verdict.

    Plays the role of the paper's 4 GB memory limit in the scaling
    experiments (Sect. 7.1): the run is *inconclusive*, not wrong, and may
    succeed when retried with a larger budget.

    Attributes:
        conflicts: SAT conflicts spent before the abort (if known).
        seconds: wall-clock seconds spent in the SAT solver (if known).
        budget_kind: ``"conflicts"``, ``"seconds"``, ``"wall"``, ``"cpu"``
            or ``"memory"``.
        stage: pipeline stage that observed the exhaustion (``"tlsim"``,
            ``"rewrite"``, ``"encode.eij"``, ``"sat"``, ``"witness"``,
            ...) when a :class:`repro.guard.Deadline` raised it; ``None``
            for plain solver-budget exhaustion.
        timings: phase timings accumulated before the abort; the driver
            layers enrich this dict as the exception propagates so the
            caller still sees simulate/rewrite/translate/sat splits.
    """

    def __init__(
        self,
        message: str,
        *,
        conflicts: Optional[int] = None,
        seconds: Optional[float] = None,
        budget_kind: str = "conflicts",
        stage: Optional[str] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(message)
        self.conflicts = conflicts
        self.seconds = seconds
        self.budget_kind = budget_kind
        self.stage = stage
        self.timings: Dict[str, float] = dict(timings or {})


class MemoryBudgetExhausted(BudgetExhausted, MemoryError):
    """A memory budget ran out before a verdict.

    Subclasses both :class:`BudgetExhausted` (the campaign executor's
    recoverable-retry path catches ``(BudgetExhausted, MemoryError)``, so
    either parent suffices for escalation) and :class:`MemoryError` (the
    exception a real allocator failure raises, which the paper's 4 GB
    kills correspond to).

    Attributes:
        bytes_used: estimated bytes attributed to the run at the abort.
        max_bytes: the budget that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        bytes_used: Optional[int] = None,
        max_bytes: Optional[int] = None,
        stage: Optional[str] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(
            message, budget_kind="memory", stage=stage, timings=timings
        )
        self.bytes_used = bytes_used
        self.max_bytes = max_bytes


class RewriteFailed(ReproError):
    """The rewriting engine could not process the update sequences.

    Distinct from a rewriting pass that *flags a bug* (which is a normal
    :class:`~repro.core.results.VerificationResult` outcome): this error
    means the diagram did not have the structural shape the rules assume,
    so the rewriting method itself is inapplicable and the caller should
    fall back to Positive Equality on the full formula.
    """

    def __init__(self, message: str, *, entry: Optional[int] = None,
                 stage: Optional[str] = None) -> None:
        super().__init__(message)
        self.entry = entry
        self.stage = stage


class EncodingError(ReproError):
    """The EUFM-to-CNF translation produced an inconsistent artifact."""


class SolverError(ReproError):
    """A decision procedure was handed malformed input or lost an invariant."""


class AnalysisError(ReproError):
    """The soundness analyzer found error-level findings in strict mode.

    Attributes:
        diagnostics: the :class:`~repro.analysis.diagnostics.Diagnostic`
            records that triggered the error (error-level findings first).
    """

    def __init__(self, message: str, diagnostics: Iterable[Any] = ()) -> None:
        super().__init__(message)
        self.diagnostics: List[Any] = list(diagnostics)


class WitnessError(ReproError):
    """A verdict witness could not be produced or failed validation.

    Raised by :mod:`repro.witness` when certification is requested but the
    run carries no certifiable artifact (e.g. ``verify()`` ran without
    ``certify=True`` so no DRUP proof was logged), or when a stored proof
    or counterexample is malformed.  A witness that was produced but does
    not validate is *returned* (``Witness.validated`` False), not raised —
    callers decide whether that is fatal.
    """


class CampaignError(ReproError):
    """A campaign was misconfigured (duplicate job ids, empty job list...)."""


class JournalError(CampaignError):
    """A campaign journal is unreadable beyond the tolerated corruption."""
