"""Hash-consed expression DAG for the logic of Equality with Uninterpreted
Functions and Memories (EUFM).

The syntax follows Burch & Dill (CAV'94) as used by Velev (DATE 2002):

* *Terms* abstract word-level values: term variables, applications of
  uninterpreted functions (UFs), term-level ITE, and memory operations
  ``read``/``write``.
* *Formulas* model control: propositional variables, applications of
  uninterpreted predicates (UPs), formula-level ITE, equations between
  terms, negation, conjunction and disjunction, and the constants
  ``TRUE``/``FALSE``.

Every node is interned: structurally identical expressions are the same
Python object, so equality tests are identity tests and DAG sharing is
maximal.  Nodes are immutable; construct them through :mod:`repro.eufm.builder`
which also applies local simplification.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Tuple

__all__ = [
    "Expr",
    "Term",
    "Formula",
    "TermVar",
    "UFApp",
    "TermITE",
    "Read",
    "Write",
    "BoolVar",
    "UPApp",
    "FormulaITE",
    "Eq",
    "Not",
    "And",
    "Or",
    "BoolConst",
    "TRUE",
    "FALSE",
    "intern_node",
    "interned_count",
    "clear_intern_cache",
]


_intern_table: dict = {}
_uid_counter = itertools.count(1)


def intern_node(cls, key: Tuple, *args) -> "Expr":
    """Return the canonical node for ``key``, creating it if necessary."""
    node = _intern_table.get(key)
    if node is None:
        node = object.__new__(cls)
        node._init(*args)
        node.uid = next(_uid_counter)
        _intern_table[key] = node
    return node


def interned_count() -> int:
    """Number of distinct live expression nodes."""
    return len(_intern_table)


def clear_intern_cache() -> None:
    """Drop all interned nodes except the Boolean constants.

    Existing expression objects stay valid, but newly constructed
    structurally-equal expressions will be fresh objects; only call this
    between independent verification runs.
    """
    _intern_table.clear()
    _intern_table[("const", True)] = TRUE
    _intern_table[("const", False)] = FALSE


class Expr:
    """Base class of all EUFM expressions (terms and formulas)."""

    __slots__ = ("uid",)

    #: short tag identifying the node kind; set by each subclass.
    kind: str = "expr"

    def _init(self) -> None:
        raise NotImplementedError

    @property
    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions, in a fixed order."""
        return ()

    def is_term(self) -> bool:
        return isinstance(self, Term)

    def is_formula(self) -> bool:
        return isinstance(self, Formula)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Depth-clipped: the full S-expression of a processor-sized term
        # is exponentially large (the DAG is rendered as a tree), so it
        # must never be materialized just to display a one-liner.
        from .printer import clip_sexpr

        text = clip_sexpr(self, max_depth=4)
        if len(text) > 120:
            text = text[:117] + "..."
        return f"<{type(self).__name__} {text}>"


class Term(Expr):
    """A word-level value."""

    __slots__ = ()


class Formula(Expr):
    """A truth value."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class TermVar(Term):
    """A term variable abstracting an arbitrary word-level value."""

    __slots__ = ("name",)
    kind = "tvar"

    def _init(self, name: str) -> None:
        self.name = name


class UFApp(Term):
    """Application of an uninterpreted function to argument terms.

    A 0-ary application is allowed and behaves like a term variable that is
    shared by name.
    """

    __slots__ = ("symbol", "args")
    kind = "uf"

    def _init(self, symbol: str, args: Tuple[Expr, ...]) -> None:
        self.symbol = symbol
        self.args = args

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.args


class TermITE(Term):
    """``ITE(cond, then, else)`` selecting between two terms."""

    __slots__ = ("cond", "then", "els")
    kind = "tite"

    def _init(self, cond: Formula, then: Term, els: Term) -> None:
        self.cond = cond
        self.then = then
        self.els = els

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.els)


class Read(Term):
    """``read(mem, addr)`` — the data stored at ``addr`` in ``mem``."""

    __slots__ = ("mem", "addr")
    kind = "read"

    def _init(self, mem: Term, addr: Term) -> None:
        self.mem = mem
        self.addr = addr

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.mem, self.addr)


class Write(Term):
    """``write(mem, addr, data)`` — the memory after storing ``data``."""

    __slots__ = ("mem", "addr", "data")
    kind = "write"

    def _init(self, mem: Term, addr: Term, data: Term) -> None:
        self.mem = mem
        self.addr = addr
        self.data = data

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.mem, self.addr, self.data)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class BoolConst(Formula):
    """The constants ``TRUE`` and ``FALSE``."""

    __slots__ = ("value",)
    kind = "const"

    def _init(self, value: bool) -> None:
        self.value = value

    def __bool__(self) -> bool:
        return self.value


class BoolVar(Formula):
    """A propositional variable (the paper models these as 0-ary UPs)."""

    __slots__ = ("name",)
    kind = "bvar"

    def _init(self, name: str) -> None:
        self.name = name


class UPApp(Formula):
    """Application of an uninterpreted predicate to argument terms."""

    __slots__ = ("symbol", "args")
    kind = "up"

    def _init(self, symbol: str, args: Tuple[Expr, ...]) -> None:
        self.symbol = symbol
        self.args = args

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.args


class FormulaITE(Formula):
    """``ITE(cond, then, else)`` selecting between two formulas."""

    __slots__ = ("cond", "then", "els")
    kind = "fite"

    def _init(self, cond: Formula, then: Formula, els: Formula) -> None:
        self.cond = cond
        self.then = then
        self.els = els

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.els)


class Eq(Formula):
    """Equation between two terms; operands are kept in canonical order."""

    __slots__ = ("lhs", "rhs")
    kind = "eq"

    def _init(self, lhs: Term, rhs: Term) -> None:
        self.lhs = lhs
        self.rhs = rhs

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)


class Not(Formula):
    """Negation."""

    __slots__ = ("arg",)
    kind = "not"

    def _init(self, arg: Formula) -> None:
        self.arg = arg

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)


class And(Formula):
    """N-ary conjunction; arguments are deduplicated and canonically ordered."""

    __slots__ = ("args",)
    kind = "and"

    def _init(self, args: Tuple[Formula, ...]) -> None:
        self.args = args

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.args


class Or(Formula):
    """N-ary disjunction; arguments are deduplicated and canonically ordered."""

    __slots__ = ("args",)
    kind = "or"

    def _init(self, args: Tuple[Formula, ...]) -> None:
        self.args = args

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.args


def _make_const(value: bool) -> BoolConst:
    node = object.__new__(BoolConst)
    node._init(value)
    node.uid = next(_uid_counter)
    _intern_table[("const", value)] = node
    return node


TRUE: BoolConst = _make_const(True)
FALSE: BoolConst = _make_const(False)
