"""S-expression serialization of EUFM expressions.

The format round-trips through :mod:`repro.eufm.parser`:

* term variable                  ``x``
* Boolean variable               ``$b``
* UF / UP application            ``(f arg1 arg2)`` / ``($p arg1)``
* term / formula ITE             ``(ite cond then else)``
* memory operations              ``(read m a)`` / ``(write m a d)``
* equation                       ``(= t1 t2)``
* connectives                    ``(not f)`` / ``(and ...)`` / ``(or ...)``
* constants                      ``true`` / ``false``

Boolean-sorted names carry a ``$`` sigil so the parser can reconstruct the
sort without a symbol table.
"""

from __future__ import annotations

from typing import Dict, List

from .ast import Expr, FALSE, TRUE
from .traversal import iter_dag

__all__ = ["to_sexpr", "clip_sexpr", "pretty"]


def to_sexpr(root: Expr) -> str:
    """Serialize ``root`` as a single-line S-expression."""
    text: Dict[Expr, str] = {}
    for node in iter_dag(root):
        text[node] = _render(node, text)
    return text[root]


def _render(node: Expr, text: Dict[Expr, str]) -> str:
    kind = node.kind
    if kind == "const":
        return "true" if node.value else "false"
    if kind == "tvar":
        return node.name
    if kind == "bvar":
        return "$" + node.name
    if kind == "uf":
        if not node.args:
            return f"({node.symbol})"
        return "(" + " ".join([node.symbol] + [text[a] for a in node.args]) + ")"
    if kind == "up":
        head = "$" + node.symbol
        if not node.args:
            return f"({head})"
        return "(" + " ".join([head] + [text[a] for a in node.args]) + ")"
    if kind in ("tite", "fite"):
        return f"(ite {text[node.cond]} {text[node.then]} {text[node.els]})"
    if kind == "read":
        return f"(read {text[node.mem]} {text[node.addr]})"
    if kind == "write":
        return f"(write {text[node.mem]} {text[node.addr]} {text[node.data]})"
    if kind == "eq":
        return f"(= {text[node.lhs]} {text[node.rhs]})"
    if kind == "not":
        return f"(not {text[node.arg]})"
    if kind == "and":
        return "(" + " ".join(["and"] + [text[a] for a in node.args]) + ")"
    if kind == "or":
        return "(" + " ".join(["or"] + [text[a] for a in node.args]) + ")"
    raise TypeError(f"unknown node kind {kind!r}")


def clip_sexpr(root: Expr, max_depth: int = 4) -> str:
    """Depth-clipped S-expression for ``repr`` and log lines.

    ``to_sexpr`` renders the DAG as a *tree*, so on deeply shared
    processor-sized formulas the full string is exponentially large —
    building it just to truncate to a one-line repr can dominate the
    whole process (pytest's assertion reprs walk result objects holding
    such terms).  This variant elides everything below ``max_depth`` as
    ``...`` and never materializes more than the clipped text.
    """
    kind = root.kind
    if kind == "const":
        return "true" if root.value else "false"
    if kind == "tvar":
        return root.name
    if kind == "bvar":
        return "$" + root.name
    if max_depth <= 0:
        return "..."
    inner = [clip_sexpr(child, max_depth - 1) for child in root.children]
    if kind == "uf":
        return "(" + " ".join([root.symbol] + inner) + ")"
    if kind == "up":
        return "(" + " ".join(["$" + root.symbol] + inner) + ")"
    if kind in ("tite", "fite"):
        return "(" + " ".join(["ite"] + inner) + ")"
    if kind == "read":
        return "(" + " ".join(["read"] + inner) + ")"
    if kind == "write":
        return "(" + " ".join(["write"] + inner) + ")"
    if kind == "eq":
        return "(" + " ".join(["="] + inner) + ")"
    if kind == "not":
        return "(" + " ".join(["not"] + inner) + ")"
    if kind in ("and", "or"):
        return "(" + " ".join([kind] + inner) + ")"
    raise TypeError(f"unknown node kind {kind!r}")


def pretty(root: Expr, max_width: int = 100) -> str:
    """Multi-line rendering with indentation for human inspection."""
    return _pretty(root, indent=0, max_width=max_width)


def _pretty(node: Expr, indent: int, max_width: int) -> str:
    flat = to_sexpr(node)
    if len(flat) + indent <= max_width or not node.children:
        return flat
    pad = " " * (indent + 2)
    head = _head_token(node)
    parts: List[str] = []
    for child in node.children:
        parts.append(pad + _pretty(child, indent + 2, max_width))
    return f"({head}\n" + "\n".join(parts) + ")"


def _head_token(node: Expr) -> str:
    kind = node.kind
    if kind == "uf":
        return node.symbol
    if kind == "up":
        return "$" + node.symbol
    if kind in ("tite", "fite"):
        return "ite"
    if kind == "eq":
        return "="
    return kind
