"""DAG traversal utilities for EUFM expressions.

All walks are iterative so that deeply nested expressions (e.g. ITE chains
over hundreds of reorder-buffer entries) never hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .ast import (
    And,
    BoolConst,
    BoolVar,
    Eq,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
    Read,
    Term,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from . import builder
from ..guard.deadline import current_deadline

__all__ = [
    "iter_dag",
    "iter_unique",
    "node_count",
    "dag_depth",
    "term_variables",
    "bool_variables",
    "function_symbols",
    "predicate_symbols",
    "equations",
    "memory_nodes",
    "substitute",
    "rewrite_dag",
    "map_dag",
    "expression_stats",
]


def iter_dag(*roots: Expr) -> Iterator[Expr]:
    """Yield every distinct node reachable from ``roots`` in post-order.

    Children are always yielded before their parents, so a single pass can
    compute bottom-up attributes.
    """
    deadline = current_deadline()
    seen: Set[Expr] = set()
    for root in roots:
        if root in seen:
            continue
        stack: List[Tuple[Expr, bool]] = [(root, False)]
        while stack:
            deadline.tick("eufm")
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for child in node.children:
                if child not in seen:
                    stack.append((child, False))


def iter_unique(*roots: Expr) -> Iterator[Expr]:
    """Alias of :func:`iter_dag`; exists for call-site readability."""
    return iter_dag(*roots)


def node_count(*roots: Expr) -> int:
    """Number of distinct DAG nodes reachable from ``roots``."""
    return sum(1 for _ in iter_dag(*roots))


def dag_depth(root: Expr) -> int:
    """Length of the longest root-to-leaf path (a leaf has depth 1)."""
    depth: Dict[Expr, int] = {}
    for node in iter_dag(root):
        children = node.children
        if children:
            depth[node] = 1 + max(depth[child] for child in children)
        else:
            depth[node] = 1
    return depth[root]


def term_variables(*roots: Expr) -> List[TermVar]:
    """All distinct term variables, in first-encountered (post-order) order."""
    return [node for node in iter_dag(*roots) if isinstance(node, TermVar)]


def bool_variables(*roots: Expr) -> List[BoolVar]:
    """All distinct propositional variables, in post-order."""
    return [node for node in iter_dag(*roots) if isinstance(node, BoolVar)]


def function_symbols(*roots: Expr) -> List[str]:
    """Distinct UF symbols, in order of first appearance."""
    symbols: List[str] = []
    seen: Set[str] = set()
    for node in iter_dag(*roots):
        if isinstance(node, UFApp) and node.symbol not in seen:
            seen.add(node.symbol)
            symbols.append(node.symbol)
    return symbols


def predicate_symbols(*roots: Expr) -> List[str]:
    """Distinct UP symbols, in order of first appearance."""
    symbols: List[str] = []
    seen: Set[str] = set()
    for node in iter_dag(*roots):
        if isinstance(node, UPApp) and node.symbol not in seen:
            seen.add(node.symbol)
            symbols.append(node.symbol)
    return symbols


def equations(*roots: Expr) -> List[Eq]:
    """All distinct equations in the DAG."""
    return [node for node in iter_dag(*roots) if isinstance(node, Eq)]


def memory_nodes(*roots: Expr) -> List[Expr]:
    """All distinct ``read``/``write`` nodes in the DAG."""
    return [node for node in iter_dag(*roots) if isinstance(node, (Read, Write))]


def map_dag(root: Expr, leaf_fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``root`` bottom-up, replacing each leaf-level node.

    ``leaf_fn`` is consulted for *every* node before its reconstruction; if
    it returns a non-``None`` expression, that expression replaces the node
    (and its subtree is not visited further from this occurrence — but note
    the walk is over the DAG, so sharing is preserved).  Reconstruction goes
    through the smart constructors, so local simplification is re-applied.
    """
    rebuilt: Dict[Expr, Expr] = {}
    for node in iter_dag(root):
        replacement = leaf_fn(node)
        if replacement is not None:
            rebuilt[node] = replacement
            continue
        rebuilt[node] = _rebuild(node, rebuilt)
    return rebuilt[root]


def _rebuild(node: Expr, rebuilt: Dict[Expr, Expr]) -> Expr:
    """Reconstruct ``node`` from already-rebuilt children."""
    kind = node.kind
    if kind in ("tvar", "bvar", "const"):
        return node
    if kind == "uf":
        return builder.uf(node.symbol, [rebuilt[a] for a in node.args])
    if kind == "up":
        return builder.up(node.symbol, [rebuilt[a] for a in node.args])
    if kind == "tite":
        return builder.ite_term(
            rebuilt[node.cond], rebuilt[node.then], rebuilt[node.els]
        )
    if kind == "fite":
        return builder.ite_formula(
            rebuilt[node.cond], rebuilt[node.then], rebuilt[node.els]
        )
    if kind == "read":
        return builder.read(rebuilt[node.mem], rebuilt[node.addr])
    if kind == "write":
        return builder.write(rebuilt[node.mem], rebuilt[node.addr], rebuilt[node.data])
    if kind == "eq":
        return builder.eq(rebuilt[node.lhs], rebuilt[node.rhs])
    if kind == "not":
        return builder.not_(rebuilt[node.arg])
    if kind == "and":
        return builder.and_(*[rebuilt[a] for a in node.args])
    if kind == "or":
        return builder.or_(*[rebuilt[a] for a in node.args])
    raise TypeError(f"unknown node kind {kind!r}")


def rewrite_dag(root: Expr, rewrite_fn: Callable[[Expr, Expr], Expr]) -> Expr:
    """Rebuild ``root`` bottom-up with a rewrite applied at every node.

    ``rewrite_fn(original, rebuilt)`` receives the original node and its
    reconstruction from already-rewritten children; returning a non-``None``
    expression replaces the rebuilt node.  Unlike :func:`map_dag`, the
    rewrite sees children that have themselves been rewritten, so nested
    redexes are handled in a single pass.
    """
    rebuilt: Dict[Expr, Expr] = {}
    for node in iter_dag(root):
        candidate = _rebuild(node, rebuilt)
        replacement = rewrite_fn(node, candidate)
        rebuilt[node] = candidate if replacement is None else replacement
    return rebuilt[root]


def substitute(root: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Simultaneously replace occurrences of the keys of ``mapping``.

    Replacement is non-recursive (the substituted expressions are not
    themselves rewritten), matching standard simultaneous substitution.
    """
    for old, new in mapping.items():
        if old.is_term() != new.is_term():
            raise TypeError(f"substitution changes sort of {old!r}")

    def leaf_fn(node: Expr):
        return mapping.get(node)

    return map_dag(root, leaf_fn)


def expression_stats(*roots: Expr) -> Dict[str, int]:
    """Counts of node kinds — handy for reporting formula sizes."""
    stats: Dict[str, int] = {}
    for node in iter_dag(*roots):
        stats[node.kind] = stats.get(node.kind, 0) + 1
    stats["total"] = sum(stats.values())
    return stats
