"""EUFM — the logic of Equality with Uninterpreted Functions and Memories.

This package is the logical substrate of the reproduction: hash-consed
expression DAGs, smart constructors, traversal utilities, polarity
(Positive Equality) classification, memory-chain utilities, a concrete
evaluator used as semantic ground truth in tests, and an S-expression
printer/parser pair.
"""

from .ast import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    BoolVar,
    Eq,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
    Read,
    Term,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
    clear_intern_cache,
    interned_count,
)
from .builder import (
    and_,
    bvar,
    eq,
    iff,
    implies,
    ite_formula,
    ite_term,
    not_,
    or_,
    read,
    tvar,
    uf,
    up,
    write,
    xor,
)
from .evaluator import Interpretation, MemVal, SortError, evaluate
from .memory import Update, apply_updates, chain_read, collect_updates, push_read
from .parser import ParseError, parse
from .polarity import BOTH, NEG, POS, PolarityInfo, classify
from .printer import pretty, to_sexpr
from .traversal import (
    bool_variables,
    dag_depth,
    equations,
    expression_stats,
    function_symbols,
    iter_dag,
    map_dag,
    memory_nodes,
    node_count,
    predicate_symbols,
    substitute,
    term_variables,
)

__all__ = [
    # ast
    "FALSE",
    "TRUE",
    "And",
    "BoolConst",
    "BoolVar",
    "Eq",
    "Expr",
    "Formula",
    "FormulaITE",
    "Not",
    "Or",
    "Read",
    "Term",
    "TermITE",
    "TermVar",
    "UFApp",
    "UPApp",
    "Write",
    "clear_intern_cache",
    "interned_count",
    # builder
    "and_",
    "bvar",
    "eq",
    "iff",
    "implies",
    "ite_formula",
    "ite_term",
    "not_",
    "or_",
    "read",
    "tvar",
    "uf",
    "up",
    "write",
    "xor",
    # evaluator
    "Interpretation",
    "MemVal",
    "SortError",
    "evaluate",
    # memory
    "Update",
    "apply_updates",
    "chain_read",
    "collect_updates",
    "push_read",
    # parser / printer
    "ParseError",
    "parse",
    "pretty",
    "to_sexpr",
    # polarity
    "BOTH",
    "NEG",
    "POS",
    "PolarityInfo",
    "classify",
    # traversal
    "bool_variables",
    "dag_depth",
    "equations",
    "expression_stats",
    "function_symbols",
    "iter_dag",
    "map_dag",
    "memory_nodes",
    "node_count",
    "predicate_symbols",
    "substitute",
    "term_variables",
]
