"""Concrete-model evaluation of EUFM expressions.

This module is the semantic ground truth for the whole repository: every
transformation (builder simplification, memory elimination, uninterpreted
function elimination, rewriting rules) is tested by checking that it
preserves the value of expressions under randomly drawn interpretations.

An :class:`Interpretation` maps

* term variables to elements of a finite domain ``{0, .., domain_size-1}``,
* Boolean variables to truth values,
* each UF symbol to a deterministic (lazily tabulated) function over the
  domain, and each UP symbol to a deterministic predicate,
* memory-sorted term variables to memory values: a base name plus an
  explicit overlay of address/data pairs, with unwritten addresses filled by
  a deterministic per-base default function.

Memory values compare extensionally, and ``read``/``write`` satisfy the
forwarding property, so the evaluator models exactly the EUFM memory axioms
used by Burch & Dill.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple, Union

from .ast import (
    Expr,
    Formula,
    Read,
    Term,
    TermITE,
    TermVar,
    Write,
)
from .traversal import iter_dag
from ..guard.deadline import current_deadline

__all__ = ["Interpretation", "MemVal", "evaluate", "infer_memory_sorts", "SortError"]


class SortError(TypeError):
    """A term variable is used both as a plain value and as a memory."""


@dataclass(frozen=True)
class MemVal:
    """A concrete memory state: a base identity plus an overlay of writes.

    Two memory values are equal iff they have the same base and the same
    *normalized* overlay (entries equal to the base default are dropped), so
    equality is extensional given that distinct bases are assumed to differ.
    """

    base: str
    entries: Tuple[Tuple[int, int], ...]

    def lookup(self, addr: int, interp: "Interpretation") -> int:
        for entry_addr, entry_data in self.entries:
            if entry_addr == addr:
                return entry_data
        return interp.default_mem(self.base, addr)

    def store(self, addr: int, data: int, interp: "Interpretation") -> "MemVal":
        overlay = dict(self.entries)
        overlay[addr] = data
        normalized = tuple(
            sorted(
                (a, d)
                for a, d in overlay.items()
                if d != interp.default_mem(self.base, a)
            )
        )
        return MemVal(self.base, normalized)


Value = Union[int, bool, MemVal]


def _digest(*parts) -> int:
    """Deterministic (process-independent) hash of a tuple of printables."""
    text = "\x1f".join(str(part) for part in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class Interpretation:
    """A concrete interpretation of variables, UFs, UPs and memories.

    Values not provided explicitly are drawn deterministically from
    ``seed``, so two evaluations under the same interpretation always agree
    (functional consistency holds by construction).
    """

    def __init__(
        self,
        domain_size: int = 5,
        seed: int = 0,
        term_values: Optional[Dict[str, int]] = None,
        bool_values: Optional[Dict[str, bool]] = None,
    ) -> None:
        if domain_size < 1:
            raise ValueError("domain must have at least one element")
        self.domain_size = domain_size
        self.seed = seed
        self._terms: Dict[str, int] = dict(term_values or {})
        self._bools: Dict[str, bool] = dict(bool_values or {})
        self._uf_tables: Dict[Tuple[str, Tuple], int] = {}
        self._up_tables: Dict[Tuple[str, Tuple], bool] = {}

    def term_value(self, name: str) -> int:
        if name not in self._terms:
            self._terms[name] = _digest(self.seed, "tvar", name) % self.domain_size
        return self._terms[name]

    def bool_value(self, name: str) -> bool:
        if name not in self._bools:
            self._bools[name] = bool(_digest(self.seed, "bvar", name) & 1)
        return self._bools[name]

    def uf_value(self, symbol: str, args: Tuple[Value, ...]) -> int:
        key = (symbol, args)
        if key not in self._uf_tables:
            self._uf_tables[key] = (
                _digest(self.seed, "uf", symbol, args) % self.domain_size
            )
        return self._uf_tables[key]

    def up_value(self, symbol: str, args: Tuple[Value, ...]) -> bool:
        key = (symbol, args)
        if key not in self._up_tables:
            self._up_tables[key] = bool(_digest(self.seed, "up", symbol, args) & 1)
        return self._up_tables[key]

    def default_mem(self, base: str, addr: int) -> int:
        return _digest(self.seed, "mem", base, addr) % self.domain_size

    def set_term(self, name: str, value: int) -> None:
        self._terms[name] = value % self.domain_size

    def set_bool(self, name: str, value: bool) -> None:
        self._bools[name] = bool(value)

    def set_uf(self, symbol: str, args: Tuple[Value, ...], value: int) -> None:
        """Pin one entry of ``symbol``'s function table.

        Argument tuples not pinned explicitly keep their deterministic
        seed-drawn defaults, so the result is still a *total* function —
        exactly what counterexample reconstruction needs: the entries the
        SAT model determined are fixed, the rest are don't-cares.
        """
        self._uf_tables[(symbol, tuple(args))] = value % self.domain_size

    def set_up(self, symbol: str, args: Tuple[Value, ...], value: bool) -> None:
        """Pin one entry of ``symbol``'s predicate table (see set_uf)."""
        self._up_tables[(symbol, tuple(args))] = bool(value)

    def uf_table(self, symbol: str) -> Dict[Tuple[Value, ...], int]:
        """The explicitly pinned entries of ``symbol``'s function table."""
        return {
            args: value
            for (sym, args), value in self._uf_tables.items()
            if sym == symbol
        }

    def up_table(self, symbol: str) -> Dict[Tuple[Value, ...], bool]:
        """The explicitly pinned entries of ``symbol``'s predicate table."""
        return {
            args: value
            for (sym, args), value in self._up_tables.items()
            if sym == symbol
        }


def infer_memory_sorts(*roots: Expr) -> Set[Expr]:
    """The set of term nodes that denote memory states.

    A node is memory-sorted when it occurs in the memory position of a
    ``read`` or ``write``, or is a ``write`` itself, or is a branch of a
    memory-sorted ITE.  Raises :class:`SortError` on ill-sorted use (the
    same node needed both as a plain value and, say, compared with a UF
    result used at value sort is fine — only value/memory conflicts at
    variables and applications are rejected during evaluation).
    """
    deadline = current_deadline()
    memory: Set[Expr] = set()
    nodes = list(iter_dag(*roots))
    changed = True
    while changed:
        deadline.tick("encode.memory")
        changed = False
        for node in nodes:
            if isinstance(node, Write):
                if node not in memory:
                    memory.add(node)
                    changed = True
                if node.mem not in memory:
                    memory.add(node.mem)
                    changed = True
            elif isinstance(node, Read):
                if node.mem not in memory:
                    memory.add(node.mem)
                    changed = True
            elif isinstance(node, TermITE):
                # Memory-ness flows both ways through an ITE: a memory ITE
                # has memory branches, and an ITE with a memory branch is
                # itself a memory (e.g. a guarded write chain).
                ite_family = (node, node.then, node.els)
                if any(member in memory for member in ite_family):
                    for member in ite_family:
                        if member not in memory:
                            memory.add(member)
                            changed = True
    return memory


def evaluate(root: Expr, interp: Interpretation) -> Value:
    """Evaluate ``root`` (and its whole DAG) under ``interp``."""
    memory_sorted = infer_memory_sorts(root)
    values: Dict[Expr, Value] = {}
    for node in iter_dag(root):
        values[node] = _eval_node(node, values, interp, memory_sorted)
    return values[root]


def _eval_node(
    node: Expr,
    values: Dict[Expr, Value],
    interp: Interpretation,
    memory_sorted: Set[Expr],
) -> Value:
    kind = node.kind
    if kind == "const":
        return node.value
    if kind == "tvar":
        if node in memory_sorted:
            return MemVal(node.name, ())
        return interp.term_value(node.name)
    if kind == "bvar":
        return interp.bool_value(node.name)
    if kind == "uf":
        if node in memory_sorted:
            raise SortError(f"UF application {node!r} used as a memory")
        return interp.uf_value(node.symbol, tuple(values[a] for a in node.args))
    if kind == "up":
        return interp.up_value(node.symbol, tuple(values[a] for a in node.args))
    if kind in ("tite", "fite"):
        return values[node.then] if values[node.cond] else values[node.els]
    if kind == "read":
        mem = values[node.mem]
        if not isinstance(mem, MemVal):
            raise SortError(f"read applied to non-memory {node.mem!r}")
        return mem.lookup(values[node.addr], interp)
    if kind == "write":
        mem = values[node.mem]
        if not isinstance(mem, MemVal):
            raise SortError(f"write applied to non-memory {node.mem!r}")
        return mem.store(values[node.addr], values[node.data], interp)
    if kind == "eq":
        return values[node.lhs] == values[node.rhs]
    if kind == "not":
        return not values[node.arg]
    if kind == "and":
        return all(values[a] for a in node.args)
    if kind == "or":
        return any(values[a] for a in node.args)
    raise TypeError(f"unknown node kind {kind!r}")
