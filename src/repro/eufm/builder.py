"""Smart constructors for EUFM expressions.

All construction of :mod:`repro.eufm.ast` nodes should go through these
functions.  They intern nodes (maximal DAG sharing) and apply inexpensive,
always-sound local simplifications:

* constant folding of the Boolean connectives and ITEs,
* ``x = x`` becomes ``TRUE``,
* double negation elimination,
* flattening, deduplication and complement detection in ``AND``/``OR``,
* ITE collapsing when both branches coincide.

These are the "conservative transformations" of the EVC tool in the sense
that they never change the set of satisfying interpretations.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .ast import (
    FALSE,
    TRUE,
    And,
    BoolConst,
    BoolVar,
    Eq,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
    Read,
    Term,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
    intern_node,
)

__all__ = [
    "tvar",
    "bvar",
    "uf",
    "up",
    "ite_term",
    "ite_formula",
    "eq",
    "not_",
    "and_",
    "or_",
    "implies",
    "iff",
    "xor",
    "read",
    "write",
]


def tvar(name: str) -> TermVar:
    """A term variable named ``name``."""
    if not name:
        raise ValueError("term variable needs a non-empty name")
    return intern_node(TermVar, ("tvar", name), name)


def bvar(name: str) -> BoolVar:
    """A propositional variable named ``name``."""
    if not name:
        raise ValueError("Boolean variable needs a non-empty name")
    return intern_node(BoolVar, ("bvar", name), name)


def uf(symbol: str, args: Sequence[Term] = ()) -> UFApp:
    """Apply the uninterpreted function ``symbol`` to ``args``."""
    args = tuple(args)
    _check_terms(args, symbol)
    return intern_node(UFApp, ("uf", symbol, args), symbol, args)


def up(symbol: str, args: Sequence[Term] = ()) -> UPApp:
    """Apply the uninterpreted predicate ``symbol`` to ``args``."""
    args = tuple(args)
    _check_terms(args, symbol)
    return intern_node(UPApp, ("up", symbol, args), symbol, args)


def _check_terms(args: Tuple[Expr, ...], symbol: str) -> None:
    for arg in args:
        if not isinstance(arg, Term):
            raise TypeError(f"argument of {symbol!r} must be a term, got {arg!r}")


def ite_term(cond: Formula, then: Term, els: Term) -> Term:
    """Term-level ``ITE(cond, then, els)`` with local simplification."""
    if not isinstance(cond, Formula):
        raise TypeError("ITE condition must be a formula")
    if not (isinstance(then, Term) and isinstance(els, Term)):
        raise TypeError("term ITE branches must be terms")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    # ITE(c, ITE(c, a, b), e) => ITE(c, a, e) and the dual.
    if isinstance(then, TermITE) and then.cond is cond:
        then = then.then
        if then is els:
            return then
    if isinstance(els, TermITE) and els.cond is cond:
        els = els.els
        if then is els:
            return then
    return intern_node(TermITE, ("tite", cond, then, els), cond, then, els)


def ite_formula(cond: Formula, then: Formula, els: Formula) -> Formula:
    """Formula-level ``ITE(cond, then, els)`` with local simplification."""
    for part in (cond, then, els):
        if not isinstance(part, Formula):
            raise TypeError("formula ITE operands must be formulas")
    if cond is TRUE:
        return then
    if cond is FALSE:
        return els
    if then is els:
        return then
    if then is TRUE and els is FALSE:
        return cond
    if then is FALSE and els is TRUE:
        return not_(cond)
    if then is TRUE:
        return or_(cond, els)
    if then is FALSE:
        return and_(not_(cond), els)
    if els is TRUE:
        return or_(not_(cond), then)
    if els is FALSE:
        return and_(cond, then)
    return intern_node(FormulaITE, ("fite", cond, then, els), cond, then, els)


def eq(lhs: Term, rhs: Term) -> Formula:
    """Equation ``lhs = rhs``; operands are stored in canonical order."""
    if not (isinstance(lhs, Term) and isinstance(rhs, Term)):
        raise TypeError("equation operands must be terms")
    if lhs is rhs:
        return TRUE
    if rhs.uid < lhs.uid:
        lhs, rhs = rhs, lhs
    return intern_node(Eq, ("eq", lhs, rhs), lhs, rhs)


def not_(arg: Formula) -> Formula:
    """Negation with double-negation and constant elimination."""
    if not isinstance(arg, Formula):
        raise TypeError("negation operand must be a formula")
    if arg is TRUE:
        return FALSE
    if arg is FALSE:
        return TRUE
    if isinstance(arg, Not):
        return arg.arg
    return intern_node(Not, ("not", arg), arg)


def _flatten(cls, operands: Iterable[Formula]) -> List[Formula]:
    flat: List[Formula] = []
    for operand in operands:
        if not isinstance(operand, Formula):
            raise TypeError("connective operands must be formulas")
        if isinstance(operand, cls):
            flat.extend(operand.args)
        else:
            flat.append(operand)
    return flat


def and_(*operands: Formula) -> Formula:
    """N-ary conjunction (flattening, dedup, complements, constants)."""
    flat = _flatten(And, operands)
    unique: List[Formula] = []
    seen = set()
    for operand in flat:
        if operand is FALSE:
            return FALSE
        if operand is TRUE or operand in seen:
            continue
        seen.add(operand)
        unique.append(operand)
    for operand in unique:
        complement = operand.arg if isinstance(operand, Not) else None
        if complement is not None and complement in seen:
            return FALSE
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=lambda node: node.uid)
    args = tuple(unique)
    return intern_node(And, ("and", args), args)


def or_(*operands: Formula) -> Formula:
    """N-ary disjunction (flattening, dedup, complements, constants)."""
    flat = _flatten(Or, operands)
    unique: List[Formula] = []
    seen = set()
    for operand in flat:
        if operand is TRUE:
            return TRUE
        if operand is FALSE or operand in seen:
            continue
        seen.add(operand)
        unique.append(operand)
    for operand in unique:
        complement = operand.arg if isinstance(operand, Not) else None
        if complement is not None and complement in seen:
            return TRUE
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=lambda node: node.uid)
    args = tuple(unique)
    return intern_node(Or, ("or", args), args)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``antecedent -> consequent`` desugared to ``!antecedent | consequent``."""
    return or_(not_(antecedent), consequent)


def iff(lhs: Formula, rhs: Formula) -> Formula:
    """Bi-implication, desugared through a formula ITE."""
    return ite_formula(lhs, rhs, not_(rhs))


def xor(lhs: Formula, rhs: Formula) -> Formula:
    """Exclusive or, desugared through a formula ITE."""
    return ite_formula(lhs, not_(rhs), rhs)


def read(mem: Term, addr: Term) -> Term:
    """``read(mem, addr)``; reads through a same-address write are folded."""
    if not (isinstance(mem, Term) and isinstance(addr, Term)):
        raise TypeError("read operands must be terms")
    if isinstance(mem, Write) and mem.addr is addr:
        # Forwarding property, exact-address special case.
        return mem.data
    return intern_node(Read, ("read", mem, addr), mem, addr)


def write(mem: Term, addr: Term, data: Term) -> Term:
    """``write(mem, addr, data)``."""
    if not (
        isinstance(mem, Term) and isinstance(addr, Term) and isinstance(data, Term)
    ):
        raise TypeError("write operands must be terms")
    return intern_node(Write, ("write", mem, addr, data), mem, addr, data)
