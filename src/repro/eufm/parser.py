"""Parser for the S-expression format produced by :mod:`repro.eufm.printer`.

The grammar is tiny; the parser is a hand-written recursive-descent reader
over a token stream, with the recursion replaced by an explicit stack so
deep expressions parse without hitting the interpreter recursion limit.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from . import builder
from .ast import Expr, FALSE, TRUE, Formula, Term

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised when the input is not a well-formed EUFM S-expression."""


_Token = str
_SExpr = Union[str, List["_SExpr"]]


def parse(text: str) -> Expr:
    """Parse ``text`` into an interned EUFM expression."""
    tokens = _tokenize(text)
    tree, rest = _read(tokens, 0)
    if rest != len(tokens):
        raise ParseError(f"trailing input at token {rest}: {tokens[rest]!r}")
    return _build(tree)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    current: List[str] = []
    for ch in text:
        if ch in "()":
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(ch)
        elif ch.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        tokens.append("".join(current))
    if not tokens:
        raise ParseError("empty input")
    return tokens


def _read(tokens: List[_Token], pos: int) -> Tuple[_SExpr, int]:
    """Read one S-expression starting at ``pos`` (iterative)."""
    stack: List[List[_SExpr]] = []
    while pos < len(tokens):
        token = tokens[pos]
        pos += 1
        if token == "(":
            stack.append([])
            continue
        if token == ")":
            if not stack:
                raise ParseError("unbalanced ')'")
            finished = stack.pop()
            if not stack:
                return finished, pos
            stack[-1].append(finished)
            continue
        if not stack:
            return token, pos
        stack[-1].append(token)
    raise ParseError("unbalanced '(' — input ended inside a list")


def _build(tree: _SExpr) -> Expr:
    """Convert a parsed S-expression tree into an interned expression.

    Iterative post-order over the tree (children built before parents).
    """
    if isinstance(tree, str):
        return _build_atom(tree)

    # Each stack frame: (subtree, child_results or None).
    done: dict = {}
    stack: List[Tuple[int, _SExpr, bool]] = [(0, tree, False)]
    results: dict = {}
    counter = 0
    # Assign ids to list nodes by identity to memoize within this parse.
    while stack:
        key, node, expanded = stack.pop()
        if isinstance(node, str):
            results[key] = _build_atom(node)
            continue
        if expanded:
            children = [results[(key, i)] for i in range(len(node) - 1)]
            results[key] = _build_app(node[0], children)
            continue
        if not node:
            raise ParseError("empty list")
        if not isinstance(node[0], str):
            raise ParseError("list head must be a symbol")
        stack.append((key, node, True))
        for i, child in enumerate(node[1:]):
            stack.append(((key, i), child, False))
    return results[0]


def _build_atom(token: str) -> Expr:
    if token == "true":
        return TRUE
    if token == "false":
        return FALSE
    if token.startswith("$"):
        name = token[1:]
        if not name:
            raise ParseError("'$' must be followed by a name")
        return builder.bvar(name)
    return builder.tvar(token)


def _build_app(head: str, children: List[Expr]) -> Expr:
    try:
        return _build_app_unchecked(head, children)
    except TypeError as exc:
        raise ParseError(str(exc)) from exc


def _build_app_unchecked(head: str, children: List[Expr]) -> Expr:
    if head == "ite":
        _expect_arity(head, children, 3)
        cond, then, els = children
        if not isinstance(cond, Formula):
            raise ParseError("ite condition must be a formula")
        if isinstance(then, Term) and isinstance(els, Term):
            return builder.ite_term(cond, then, els)
        if isinstance(then, Formula) and isinstance(els, Formula):
            return builder.ite_formula(cond, then, els)
        raise ParseError("ite branches must have the same sort")
    if head == "read":
        _expect_arity(head, children, 2)
        return builder.read(children[0], children[1])
    if head == "write":
        _expect_arity(head, children, 3)
        return builder.write(children[0], children[1], children[2])
    if head == "=":
        _expect_arity(head, children, 2)
        return builder.eq(children[0], children[1])
    if head == "not":
        _expect_arity(head, children, 1)
        return builder.not_(children[0])
    if head == "and":
        _expect_formulas(head, children)
        return builder.and_(*children)
    if head == "or":
        _expect_formulas(head, children)
        return builder.or_(*children)
    if head.startswith("$"):
        name = head[1:]
        if not name:
            raise ParseError("'$' must be followed by a predicate name")
        return builder.up(name, children)
    return builder.uf(head, children)


def _expect_arity(head: str, children: List[Expr], arity: int) -> None:
    if len(children) != arity:
        raise ParseError(f"{head!r} expects {arity} operands, got {len(children)}")


def _expect_formulas(head: str, children: List[Expr]) -> None:
    for child in children:
        if not isinstance(child, Formula):
            raise ParseError(f"operand of {head!r} must be a formula")
