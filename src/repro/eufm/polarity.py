"""Positive-Equality polarity analysis (Bryant, German & Velev, TOCL 2001).

Given a formula ``phi`` whose *validity* is to be checked, an equation
occurrence is **positive** when it appears under an even number of negations
and not as (part of) the controlling formula of an ITE; otherwise it is
**general**.  Terms whose value can flow into a general equation are
*g-terms*; all others are *p-terms*.

The classification computed here drives the propositional encoding
(:mod:`repro.encode.eij`): equality between two distinct p-term variables is
encoded as ``FALSE`` (maximal diversity), while equality between g-term
variables is encoded with a fresh ``e_ij`` Boolean variable.

This analysis is meant to run *after* memory elimination, so the DAG
contains no ``read``/``write`` nodes; address comparisons introduced by
memory elimination sit in ITE guards and are classified general
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .ast import (
    And,
    Eq,
    Expr,
    Formula,
    FormulaITE,
    Not,
    Or,
    Read,
    Term,
    TermITE,
    TermVar,
    UFApp,
    UPApp,
    Write,
)
from .traversal import iter_dag
from ..guard.deadline import current_deadline

__all__ = ["PolarityInfo", "classify", "POS", "NEG", "BOTH"]

POS = 1
NEG = 2
BOTH = POS | NEG


@dataclass
class PolarityInfo:
    """Result of the positive-equality classification of a formula."""

    #: polarity mask (POS/NEG/BOTH) per formula node, w.r.t. validity.
    polarity: Dict[Expr, int]
    #: equations classified as general (compared under negative polarity
    #: or inside an ITE control).
    general_equations: Set[Eq]
    #: term variables classified as general.
    g_vars: Set[TermVar]
    #: UF symbols whose applications are general terms.
    g_symbols: Set[str]
    #: every term node reachable from a general position.
    g_terms: Set[Expr]

    def is_g_var(self, var: TermVar) -> bool:
        return var in self.g_vars

    def is_g_symbol(self, symbol: str) -> bool:
        return symbol in self.g_symbols

    def summary(self) -> Dict[str, int]:
        return {
            "general_equations": len(self.general_equations),
            "g_vars": len(self.g_vars),
            "g_symbols": len(self.g_symbols),
        }


def classify(phi: Formula) -> PolarityInfo:
    """Classify ``phi`` (checked for validity) for Positive Equality.

    Raises :class:`TypeError` if the DAG still contains memory operations;
    run memory elimination first.
    """
    nodes = list(iter_dag(phi))
    for node in nodes:
        if isinstance(node, (Read, Write)):
            raise TypeError(
                "polarity classification requires a memory-free formula; "
                "run memory elimination first"
            )

    polarity = _compute_polarity(phi)

    general_equations: Set[Eq] = set()
    for node, mask in polarity.items():
        if isinstance(node, Eq) and (mask & NEG):
            general_equations.add(node)

    g_terms = _propagate_general_terms(nodes, general_equations)

    g_vars = {node for node in g_terms if isinstance(node, TermVar)}
    g_symbols = {node.symbol for node in g_terms if isinstance(node, UFApp)}
    # Symbol classification must be consistent: once a symbol is general,
    # every application of it is a general term.
    deadline = current_deadline()
    changed = True
    while changed:
        deadline.tick("encode.polarity")
        changed = False
        for node in nodes:
            if (
                isinstance(node, UFApp)
                and node.symbol in g_symbols
                and node not in g_terms
            ):
                g_terms.add(node)
                changed = True
        extra = _propagate_down(nodes, g_terms)
        if extra:
            for term in extra:
                g_terms.add(term)
            new_vars = {t for t in extra if isinstance(t, TermVar)}
            new_syms = {t.symbol for t in extra if isinstance(t, UFApp)}
            if not new_vars <= g_vars or not new_syms <= g_symbols:
                changed = True
            g_vars |= new_vars
            g_symbols |= new_syms

    return PolarityInfo(
        polarity=polarity,
        general_equations=general_equations,
        g_vars=g_vars,
        g_symbols=g_symbols,
        g_terms=g_terms,
    )


def _compute_polarity(phi: Formula) -> Dict[Expr, int]:
    """Worklist propagation of polarity masks from the root down.

    Every term-ITE guard in the DAG is a control position, so it is seeded
    with BOTH polarity up front; the plain formula structure is then walked
    from the root.
    """
    polarity: Dict[Expr, int] = {phi: POS}
    worklist: List[Expr] = [phi]
    for node in iter_dag(phi):
        if isinstance(node, TermITE):
            old = polarity.get(node.cond, 0)
            polarity[node.cond] = old | BOTH
            worklist.append(node.cond)
    deadline = current_deadline()
    while worklist:
        deadline.tick("encode.polarity")
        node = worklist.pop()
        mask = polarity[node]
        for child, child_mask in _child_polarities(node, mask):
            old = polarity.get(child, 0)
            new = old | child_mask
            if new != old:
                polarity[child] = new
                if isinstance(child, Formula):
                    worklist.append(child)
    return polarity


def _child_polarities(node: Expr, mask: int):
    kind = node.kind
    if kind == "not":
        flipped = ((mask & POS) and NEG) | ((mask & NEG) and POS)
        yield node.arg, flipped
    elif kind in ("and", "or"):
        for arg in node.args:
            yield arg, mask
    elif kind == "fite":
        yield node.cond, BOTH
        yield node.then, mask
        yield node.els, mask
    elif kind == "tite":
        # Term ITE guards are control positions: both polarities.
        yield node.cond, BOTH
    elif kind == "eq":
        pass
    elif kind in ("up", "uf"):
        pass


def _propagate_general_terms(
    nodes: List[Expr], general_equations: Set[Eq]
) -> Set[Expr]:
    """Terms reachable (as values) from general equations or term-ITE guards.

    Term-ITE *guards* are formulas; equations inside them were already made
    general by the polarity pass (control positions get BOTH).  Here we seed
    with the sides of general equations and push downward through term ITEs.
    """
    g_terms: Set[Expr] = set()
    for equation in general_equations:
        g_terms.add(equation.lhs)
        g_terms.add(equation.rhs)
    for term in _propagate_down(nodes, g_terms):
        g_terms.add(term)
    return g_terms


def _propagate_down(nodes: List[Expr], g_terms: Set[Expr]) -> Set[Expr]:
    """Close ``g_terms`` downward through term-ITE branches."""
    deadline = current_deadline()
    added: Set[Expr] = set()
    changed = True
    while changed:
        deadline.tick("encode.polarity")
        changed = False
        for node in nodes:
            if isinstance(node, TermITE) and (node in g_terms or node in added):
                for branch in (node.then, node.els):
                    if branch not in g_terms and branch not in added:
                        added.add(branch)
                        changed = True
    return added
