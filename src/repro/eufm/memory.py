"""Utilities over EUFM memory terms.

A memory state in the correctness formulas is always a *guarded write
chain*: the initial state (a term variable) followed by conditional writes
``ITE(context, write(prev, addr, data), prev)``.  This module converts
between the chain form and an explicit update list — the
``<context, address, data>`` triples of Fig. 2 in the paper — and implements
read-over-write pushing (the forwarding property of the memory semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import builder
from .ast import Expr, Formula, Read, Term, TermITE, TermVar, Write, TRUE
from ..guard.deadline import current_deadline

__all__ = ["Update", "collect_updates", "apply_updates", "push_read", "chain_read"]


@dataclass(frozen=True)
class Update:
    """One conditional memory update: ``<context, address, data>``."""

    context: Formula
    addr: Term
    data: Term

    def as_write(self, prev: Term) -> Term:
        """Re-apply this update on top of memory state ``prev``."""
        return builder.ite_term(
            self.context, builder.write(prev, self.addr, self.data), prev
        )

    def with_context(self, context: Formula) -> "Update":
        return Update(context, self.addr, self.data)


def collect_updates(mem: Term) -> Tuple[Term, List[Update]]:
    """Decompose a guarded write chain into ``(base, updates)``.

    Updates are returned oldest-first, so
    ``apply_updates(base, updates) == mem`` (up to the builder's local
    simplification).  Raises :class:`ValueError` when ``mem`` is not in
    chain form (e.g. an ITE whose branches diverge in more than the top
    write).
    """
    deadline = current_deadline()
    updates: List[Update] = []
    node = mem
    while True:
        deadline.tick("encode.memory")
        if isinstance(node, Write):
            updates.append(Update(TRUE, node.addr, node.data))
            node = node.mem
            continue
        if isinstance(node, TermITE):
            then, els = node.then, node.els
            if isinstance(then, Write) and then.mem is els:
                updates.append(Update(node.cond, then.addr, then.data))
                node = els
                continue
            if isinstance(els, Write) and els.mem is then:
                updates.append(Update(builder.not_(node.cond), els.addr, els.data))
                node = then
                continue
            raise ValueError("memory term is not a guarded write chain")
        break
    updates.reverse()
    return node, updates


def apply_updates(base: Term, updates: List[Update]) -> Term:
    """Rebuild a guarded write chain from ``base`` and oldest-first updates."""
    mem = base
    for update in updates:
        mem = update.as_write(mem)
    return mem


def chain_read(base: Term, updates: List[Update], addr: Term) -> Term:
    """``read(apply_updates(base, updates), addr)`` as a linear ITE chain.

    Scans the updates newest-first: the value is the data of the most
    recent update whose context holds and whose address equals ``addr``,
    and otherwise the read from the base state.
    """
    result = builder.read(base, addr)
    for update in updates:
        hit = builder.and_(update.context, builder.eq(update.addr, addr))
        result = builder.ite_term(hit, update.data, result)
    return result


def push_read(node: Term) -> Term:
    """Push a single ``read`` through the write chain beneath it.

    ``read(write(m, a, d), b)`` becomes ``ITE(a = b, d, read(m, b))``;
    guarded writes produce the corresponding guarded ITEs.  If ``node`` is
    not a read over a chain, it is returned unchanged.
    """
    if not isinstance(node, Read):
        return node
    try:
        base, updates = collect_updates(node.mem)
    except ValueError:
        return node
    return chain_read(base, updates, node.addr)
