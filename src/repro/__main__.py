"""Command-line interface: ``python -m repro [options]``.

Single-run examples::

    python -m repro --rob 64 --width 8
    python -m repro --rob 128 --width 4 --bug forward-wrong-source --entry 72
    python -m repro --rob 2 --width 1 --method positive_equality
    python -m repro --rob 8 --width 2 --family mem
    python -m repro --rob 4 --width 2 --family branch --bug dropped-flush --entry 2
    python -m repro --rob 16 --width 4 --max-conflicts 50000 --max-seconds 30

Campaign mode (batches with retries, budget escalation and a crash-safe
journal; see :mod:`repro.campaign.cli`)::

    python -m repro campaign --journal camp.jsonl --grid 4x2,8x2,16x4

Lint mode (soundness analyzers; see :mod:`repro.analysis.cli`)::

    python -m repro lint
    python -m repro lint --grid 3x2 --json

Staticcheck mode (self-hosting source-level invariant checkers; see
:mod:`repro.staticcheck.cli`)::

    python -m repro staticcheck src/repro --json
    python -m repro staticcheck --baseline .staticcheck-baseline.json

Observability (span traces and the perf-regression gate; see
:mod:`repro.obs.cli`)::

    python -m repro trace --rob 4 --width 2
    python -m repro perf record --rob 4 --width 2 --out base.json
    python -m repro perf compare base.json current.json

Witness mode (DRUP proof certification and counterexample replay; see
:mod:`repro.witness.cli`)::

    python -m repro witness certify --rob 4 --width 2 --proof-out p.drup
    python -m repro witness explain --rob 4 --width 2 --bug pc-single-increment
    python -m repro witness check --cnf formula.cnf --proof p.drup

Service mode (the long-lived verification-as-a-service job server; see
:mod:`repro.service.cli`)::

    python -m repro serve --port 8080 --data-dir ./repro-service

Version (package + rule-registry provenance, one line each)::

    python -m repro --version

Exit status of a single run: 0 — the design was proved correct; 1 — a bug
was found; 2 — the SAT budget was exhausted before a verdict; 3 — another
structured verification error (including strict-mode soundness findings).
"""

from __future__ import annotations

import argparse
import sys

from .core import verify
from .errors import AnalysisError, BudgetExhausted, ReproError
from .processor.bugs import Bug, BugKind
from .processor.families import family_names
from .processor.params import ProcessorConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Formally verify an abstract out-of-order processor with a "
            "reorder buffer (Velev, DATE 2002 reproduction).  Use the "
            "'campaign' subcommand for crash-safe batches."
        ),
    )
    parser.add_argument(
        "--rob", type=int, default=16, help="reorder-buffer size N (default 16)"
    )
    parser.add_argument(
        "--width", type=int, default=4, help="issue width k (default 4)"
    )
    parser.add_argument(
        "--retire-width",
        type=int,
        default=None,
        help="retire width l (default: same as the issue width)",
    )
    parser.add_argument(
        "--family",
        choices=family_names(),
        default="reg-reg",
        help=(
            "workload family: reg-reg (the seed register-register model), "
            "branch (speculative branches with misprediction recovery), "
            "mem (loads/stores with store-to-load forwarding), or mixed "
            "(both); default reg-reg"
        ),
    )
    parser.add_argument(
        "--method",
        choices=("rewriting", "positive_equality"),
        default="rewriting",
        help="verification method (default: rewriting)",
    )
    parser.add_argument(
        "--criterion",
        choices=("disjunction", "case_split"),
        default="disjunction",
        help="correctness criterion (default: the paper's disjunction)",
    )
    parser.add_argument(
        "--bug",
        choices=BugKind.ALL,
        default=None,
        help="plant a defect before verifying",
    )
    parser.add_argument(
        "--entry", type=int, default=1, help="ROB entry the defect applies to"
    )
    parser.add_argument(
        "--operand",
        type=int,
        choices=(1, 2),
        default=1,
        help="data operand the defect applies to",
    )
    parser.add_argument(
        "--max-conflicts",
        type=int,
        default=None,
        metavar="N",
        help="abort when the SAT solver exceeds this many conflicts",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort when SAT solving exceeds this wall-clock budget",
    )
    parser.add_argument(
        "--sat-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deprecated alias for --max-seconds",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="pipeline-wide wall-clock deadline, enforced at every stage "
        "(simulation, rewriting, encoding, SAT, witness) — unlike "
        "--max-seconds, which only the SAT solver honors",
    )
    parser.add_argument(
        "--max-memory",
        type=float,
        default=None,
        metavar="MB",
        help="memory budget for the whole run, in MiB",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the soundness analyzers and report their findings",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "implies --analyze; exit with status 3 when the analyzers "
            "report any error-level finding"
        ),
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help=(
            "certify the verdict: check a DRUP proof for correct designs, "
            "replay + minimize the counterexample for buggy ones; exit "
            "with status 3 when the witness fails validation"
        ),
    )
    parser.add_argument(
        "--sat-backend",
        default=None,
        metavar="NAME",
        help=(
            "SAT backend: reference (in-tree CDCL, default), pysat, "
            "dimacs (solver binary on $PATH), or auto; verdicts are "
            "backend-independent, and certifying runs fall back to the "
            "reference when the backend cannot log DRUP proofs"
        ),
    )
    return parser


def print_version() -> int:
    """``--version``: package + rule-registry provenance.

    Both lines identify cache provenance: two servers with equal output
    here produce interchangeable verdicts for equal requests (the
    service's cache keys fold the registry version in).
    """
    from . import __version__
    from .rewriting.version import registry_version

    print(f"repro {__version__}")
    print(f"rule-registry {registry_version()}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("--version", "version"):
        return print_version()
    if argv and argv[0] == "serve":
        from .service.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "campaign":
        from .campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "staticcheck":
        from .staticcheck.cli import main as staticcheck_main

        return staticcheck_main(argv[1:])
    if argv and argv[0] == "perf":
        from .obs.cli import perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "trace":
        from .obs.cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "witness":
        from .witness.cli import main as witness_main

        return witness_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = ProcessorConfig(
        n_rob=args.rob,
        issue_width=args.width,
        retire_width=args.retire_width,
        family=args.family,
    )
    bug = None
    if args.bug is not None:
        bug = Bug(args.bug, entry=args.entry, operand=args.operand)
        print(f"Planted defect: {bug.describe()}")
    max_seconds = args.max_seconds if args.max_seconds is not None \
        else args.sat_budget
    try:
        result = verify(
            config,
            method=args.method,
            bug=bug,
            criterion=args.criterion,
            max_conflicts=args.max_conflicts,
            max_seconds=max_seconds,
            max_wall_seconds=args.deadline,
            max_memory_mb=args.max_memory,
            analyze=args.analyze or args.strict,
            strict=args.strict,
            certify=args.certify,
            sat_backend=args.sat_backend,
        )
    except ValueError as exc:
        # Configuration-level rejections (e.g. a bug kind the workload
        # family cannot express, or an unsound criterion for it).
        print(f"python -m repro: error: {exc}", file=sys.stderr)
        return 3
    except AnalysisError as exc:
        from .core.reporting import render_diagnostics

        print(
            render_diagnostics(exc.diagnostics, title="Soundness findings"),
            file=sys.stderr,
        )
        print(f"strict analysis failed: {exc}", file=sys.stderr)
        return 3
    except BudgetExhausted as exc:
        spent = []
        if exc.conflicts is not None:
            spent.append(f"{exc.conflicts} conflicts")
        if exc.seconds is not None:
            spent.append(f"{exc.seconds:.1f}s")
        spent_text = f" after {', '.join(spent)}" if spent else ""
        stage_text = f" in stage {exc.stage!r}" if exc.stage else ""
        print(
            f"budget exhausted{spent_text}{stage_text}: {exc}\n"
            "hint: raise --max-conflicts/--max-seconds/--deadline/"
            "--max-memory, or use 'python -m repro campaign' for "
            "automatic budget escalation",
            file=sys.stderr,
        )
        return 2
    except ReproError as exc:
        print(f"verification failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    print(result.summary())
    if result.diagnostics:
        from .core.reporting import render_diagnostics

        print(render_diagnostics(result.diagnostics))
    if result.witness is not None:
        print(result.witness.render())
        if result.witness.kind != "rewrite-flag" and \
                not result.witness.validated:
            print("witness FAILED validation", file=sys.stderr)
            return 3
    return 0 if result.correct else 1


if __name__ == "__main__":
    sys.exit(main())
