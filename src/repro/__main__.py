"""Command-line interface: ``python -m repro [options]``.

Examples::

    python -m repro --rob 64 --width 8
    python -m repro --rob 128 --width 4 --bug forward-wrong-source --entry 72
    python -m repro --rob 2 --width 1 --method positive_equality
"""

from __future__ import annotations

import argparse
import sys

from .core import verify
from .processor.bugs import Bug, BugKind
from .processor.params import ProcessorConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Formally verify an abstract out-of-order processor with a "
            "reorder buffer (Velev, DATE 2002 reproduction)."
        ),
    )
    parser.add_argument(
        "--rob", type=int, default=16, help="reorder-buffer size N (default 16)"
    )
    parser.add_argument(
        "--width", type=int, default=4, help="issue width k (default 4)"
    )
    parser.add_argument(
        "--retire-width",
        type=int,
        default=None,
        help="retire width l (default: same as the issue width)",
    )
    parser.add_argument(
        "--method",
        choices=("rewriting", "positive_equality"),
        default="rewriting",
        help="verification method (default: rewriting)",
    )
    parser.add_argument(
        "--criterion",
        choices=("disjunction", "case_split"),
        default="disjunction",
        help="correctness criterion (default: the paper's disjunction)",
    )
    parser.add_argument(
        "--bug",
        choices=BugKind.ALL,
        default=None,
        help="plant a defect before verifying",
    )
    parser.add_argument(
        "--entry", type=int, default=1, help="ROB entry the defect applies to"
    )
    parser.add_argument(
        "--operand",
        type=int,
        choices=(1, 2),
        default=1,
        help="data operand the defect applies to",
    )
    parser.add_argument(
        "--sat-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort when SAT solving exceeds this budget",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ProcessorConfig(
        n_rob=args.rob,
        issue_width=args.width,
        retire_width=args.retire_width,
    )
    bug = None
    if args.bug is not None:
        bug = Bug(args.bug, entry=args.entry, operand=args.operand)
        print(f"Planted defect: {bug.describe()}")
    try:
        result = verify(
            config,
            method=args.method,
            bug=bug,
            criterion=args.criterion,
            max_seconds=args.sat_budget,
        )
    except TimeoutError as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    return 0 if result.correct else 1


if __name__ == "__main__":
    sys.exit(main())
