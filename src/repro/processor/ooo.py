"""The abstract out-of-order implementation processor (paper Sect. 3–4).

The design of Fig. 1, abstracted exactly the way the paper describes:

* The reorder buffer is ``N + k`` latched entries: the first ``N`` hold the
  instructions initially in the ROB (fields ``Valid``, ``ValidResult``,
  ``Opcode``, ``Dest``, ``Src1``, ``Src2``, ``Result`` — all symbolic
  initial state), and the last ``k`` accept the newly fetched instructions.
* Scheduling is nondeterministic: fresh Boolean variables ``NDFetch_j``
  form the monotone fetch signals ``fetch_j = NDFetch_1 & .. & NDFetch_j``,
  and ``NDExecute_i`` abstracts the `execute_i` control of each slice.
* The hazard-resolution (stall/forwarding) logic is fully instantiated:
  an instruction is ready when each operand can be read from the Register
  File or forwarded from the ``Result`` field of the *latest* preceding
  valid producer, which must already have its result.
* Retirement is in program order, up to ``l`` per cycle, per formula (1).
* Flushing (``flush`` input true) activates one computation slice per step
  (``activate_i`` inputs, driven by the abstraction-function harness) and
  applies the slice's completion function.

The builder plays the role of the paper's "C program, taking as parameters
the size of the ROB and the issue width"; ``bug`` plants the defects of
:mod:`repro.processor.bugs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..eufm import builder
from ..eufm.ast import FALSE, TRUE, Expr, Formula, Term
from ..tlsim import Circuit, Fn, Latch, Mux, Signal, Simulator
from ..tlsim.signals import FORMULA, MEMORY, TERM
from .bugs import Bug, BugKind
from .isa import ALU, INSTR_DEST, INSTR_OP, INSTR_SRC1, INSTR_SRC2, INSTR_VALID, NEXT_PC
from .params import ProcessorConfig

__all__ = ["OooProcessor", "build_ooo_processor", "make_simulator"]


@dataclass
class OooProcessor:
    """A built implementation circuit plus its symbolic initial state."""

    config: ProcessorConfig
    bug: Optional[Bug]
    circuit: Circuit
    # Control inputs.
    flush: Signal
    activate: List[Signal]
    nd_execute: List[Signal]
    nd_fetch: List[Signal]
    # Architectural and ROB state signals (latch outputs).
    pc: Signal
    rf: Signal
    rf_hold: Signal
    valid: List[Signal]
    vres: List[Signal]
    op: List[Signal]
    dest: List[Signal]
    src1: List[Signal]
    src2: List[Signal]
    result: List[Signal]
    #: symbolic initial values for every latch output.
    initial_state: Dict[Signal, Expr] = field(default_factory=dict)
    #: the symbolic variables of the initial state, by conventional name.
    vars: Dict[str, Expr] = field(default_factory=dict)

    @property
    def total_slots(self) -> int:
        return self.config.total_slots


def build_ooo_processor(
    config: ProcessorConfig, bug: Optional[Bug] = None
) -> OooProcessor:
    """Generate the abstract OOO implementation for ``config``."""
    n = config.n_rob
    k = config.issue_width
    l = config.retire_width
    slots = config.total_slots
    circuit = Circuit(f"ooo_N{n}_k{k}")

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    flush = Signal("flush", FORMULA)
    activate = [Signal(f"activate{i}", FORMULA) for i in range(1, slots + 1)]
    nd_execute = [Signal(f"nd_execute{i}", FORMULA) for i in range(1, n + 1)]
    nd_fetch = [Signal(f"nd_fetch{j}", FORMULA) for j in range(1, k + 1)]

    pc = Signal("pc", TERM)
    rf = Signal("rf", MEMORY)
    rf_hold = Signal("rf_hold", MEMORY)
    valid = [Signal(f"valid{i}", FORMULA) for i in range(1, slots + 1)]
    vres = [Signal(f"vres{i}", FORMULA) for i in range(1, slots + 1)]
    op = [Signal(f"op{i}", TERM) for i in range(1, slots + 1)]
    dest = [Signal(f"dest{i}", TERM) for i in range(1, slots + 1)]
    src1 = [Signal(f"src1_{i}", TERM) for i in range(1, slots + 1)]
    src2 = [Signal(f"src2_{i}", TERM) for i in range(1, slots + 1)]
    result = [Signal(f"result{i}", TERM) for i in range(1, slots + 1)]

    proc = OooProcessor(
        config=config,
        bug=bug,
        circuit=circuit,
        flush=flush,
        activate=activate,
        nd_execute=nd_execute,
        nd_fetch=nd_fetch,
        pc=pc,
        rf=rf,
        rf_hold=rf_hold,
        valid=valid,
        vres=vres,
        op=op,
        dest=dest,
        src1=src1,
        src2=src2,
        result=result,
    )

    # ------------------------------------------------------------------
    # Retirement (program order, formula (1))
    # ------------------------------------------------------------------
    retire = [Signal(f"retire{i}", FORMULA) for i in range(1, l + 1)]
    for i in range(l):

        def retire_fn(valid_i, vres_i, *prev, index=i):
            own = builder.or_(builder.not_(valid_i), vres_i)
            if bug is not None and bug.entry == index + 1:
                if bug.kind == BugKind.RETIRE_WITHOUT_RESULT:
                    own = TRUE
                elif bug.kind == BugKind.RETIRE_OUT_OF_ORDER:
                    return own
            if prev:
                return builder.and_(own, prev[0])
            return own

        inputs = [valid[i], vres[i]] + ([retire[i - 1]] if i > 0 else [])
        circuit.add(Fn(f"retire_logic{i + 1}", inputs, [retire[i]], retire_fn))

    # Register-File chain for in-order retirement writes.
    rf_after_retire = rf
    for i in range(l):
        stage_out = Signal(f"rf_retire{i + 1}", MEMORY)

        def retire_write_fn(prev, retire_i, valid_i, dest_i, result_i, index=i):
            context = builder.and_(valid_i, retire_i)
            if (
                bug is not None
                and bug.kind == BugKind.RETIRE_IGNORES_VALID
                and bug.entry == index + 1
            ):
                context = retire_i
            return builder.ite_term(
                context, builder.write(prev, dest_i, result_i), prev
            )

        circuit.add(
            Fn(
                f"retire_write{i + 1}",
                [rf_after_retire, retire[i], valid[i], dest[i], result[i]],
                [stage_out],
                retire_write_fn,
            )
        )
        rf_after_retire = stage_out

    # ------------------------------------------------------------------
    # Out-of-order execution slices (regular operation)
    # ------------------------------------------------------------------
    exec_result = [Signal(f"exec_result{i}", TERM) for i in range(1, n + 1)]
    exec_vres = [Signal(f"exec_vres{i}", FORMULA) for i in range(1, n + 1)]
    for i in range(n):
        # Preceding-entry signals feed the forwarding chain of slice i+1.
        preceding = []
        for j in range(i):
            preceding.extend([valid[j], vres[j], dest[j], result[j]])
        inputs = [
            flush,
            nd_execute[i],
            rf_hold,
            op[i],
            src1[i],
            src2[i],
            valid[i],
            vres[i],
            result[i],
        ] + preceding
        circuit.add(
            Fn(
                f"exec_slice{i + 1}",
                inputs,
                [exec_result[i], exec_vres[i]],
                _make_exec_fn(i + 1, bug),
            )
        )
        circuit.add(Latch(f"result_latch{i + 1}", exec_result[i], result[i]))
        circuit.add(Latch(f"vres_latch{i + 1}", exec_vres[i], vres[i]))

    # ------------------------------------------------------------------
    # Fetch engine
    # ------------------------------------------------------------------
    fetch = [Signal(f"fetch{j}", FORMULA) for j in range(1, k + 1)]
    for j in range(k):

        def fetch_fn(*nd):
            return builder.and_(*nd)

        circuit.add(Fn(f"fetch_logic{j + 1}", nd_fetch[: j + 1], [fetch[j]], fetch_fn))

    pc_next = Signal("pc_next", TERM)

    def pc_fn(flush_expr, pc_expr, *fetch_exprs):
        if flush_expr is TRUE:
            return pc_expr
        new_pc = pc_expr
        stepped = pc_expr
        for j, fetch_j in enumerate(fetch_exprs):
            stepped = builder.uf(NEXT_PC, [stepped])
            if (
                bug is not None
                and bug.kind == BugKind.PC_SINGLE_INCREMENT
                and j > 0
            ):
                stepped = builder.uf(NEXT_PC, [pc_expr])
            new_pc = builder.ite_term(fetch_j, stepped, new_pc)
        return builder.ite_term(flush_expr, pc_expr, new_pc)

    circuit.add(Fn("pc_logic", [flush, pc] + fetch, [pc_next], pc_fn))
    circuit.add(Latch("pc_latch", pc_next, pc))

    # New-instruction slots: fetched fields enter the last k entries.
    for j in range(k):
        slot = n + j

        def new_fields_fn(flush_expr, pc_expr, fetch_j, valid_cur, vres_cur,
                          op_cur, dest_cur, src1_cur, src2_cur, offset=j):
            if flush_expr is TRUE:
                return (valid_cur, vres_cur, op_cur, dest_cur, src1_cur, src2_cur)
            slot_pc = pc_expr
            for _ in range(offset):
                slot_pc = builder.uf(NEXT_PC, [slot_pc])
            new_valid = builder.and_(fetch_j, builder.up(INSTR_VALID, [slot_pc]))
            fields = (
                builder.ite_formula(flush_expr, valid_cur, new_valid),
                builder.ite_formula(flush_expr, vres_cur, FALSE),
                builder.ite_term(flush_expr, op_cur, builder.uf(INSTR_OP, [slot_pc])),
                builder.ite_term(
                    flush_expr, dest_cur, builder.uf(INSTR_DEST, [slot_pc])
                ),
                builder.ite_term(
                    flush_expr, src1_cur, builder.uf(INSTR_SRC1, [slot_pc])
                ),
                builder.ite_term(
                    flush_expr, src2_cur, builder.uf(INSTR_SRC2, [slot_pc])
                ),
            )
            return fields

        next_signals = [
            Signal(f"new_valid{slot + 1}", FORMULA),
            Signal(f"new_vres{slot + 1}", FORMULA),
            Signal(f"new_op{slot + 1}", TERM),
            Signal(f"new_dest{slot + 1}", TERM),
            Signal(f"new_src1_{slot + 1}", TERM),
            Signal(f"new_src2_{slot + 1}", TERM),
        ]
        circuit.add(
            Fn(
                f"fetch_slot{slot + 1}",
                [flush, pc, fetch[j], valid[slot], vres[slot], op[slot],
                 dest[slot], src1[slot], src2[slot]],
                next_signals,
                new_fields_fn,
            )
        )
        circuit.add(Latch(f"valid_latch{slot + 1}", next_signals[0], valid[slot]))
        circuit.add(Latch(f"vres_latch{slot + 1}", next_signals[1], vres[slot]))
        circuit.add(Latch(f"op_latch{slot + 1}", next_signals[2], op[slot]))
        circuit.add(Latch(f"dest_latch{slot + 1}", next_signals[3], dest[slot]))
        circuit.add(Latch(f"src1_latch{slot + 1}", next_signals[4], src1[slot]))
        circuit.add(Latch(f"src2_latch{slot + 1}", next_signals[5], src2[slot]))
        # Result of a fetch slot only materializes during flush completion.
        circuit.add(Latch(f"result_latch{slot + 1}", result[slot], result[slot]))

    # Valid-bit updates for the initial entries.
    for i in range(n):
        if i < l:
            valid_next = Signal(f"valid_next{i + 1}", FORMULA)

            def valid_fn(flush_expr, valid_i, retire_i):
                if flush_expr is TRUE:
                    return valid_i
                return builder.ite_formula(
                    flush_expr,
                    valid_i,
                    builder.and_(valid_i, builder.not_(retire_i)),
                )

            circuit.add(
                Fn(
                    f"valid_logic{i + 1}",
                    [flush, valid[i], retire[i]],
                    [valid_next],
                    valid_fn,
                )
            )
            circuit.add(Latch(f"valid_latch{i + 1}", valid_next, valid[i]))
        else:
            circuit.add(Latch(f"valid_latch{i + 1}", valid[i], valid[i]))
        # Instruction fields are read-only once in the ROB.
        circuit.add(Latch(f"op_latch{i + 1}", op[i], op[i]))
        circuit.add(Latch(f"dest_latch{i + 1}", dest[i], dest[i]))
        circuit.add(Latch(f"src1_latch{i + 1}", src1[i], src1[i]))
        circuit.add(Latch(f"src2_latch{i + 1}", src2[i], src2[i]))

    # ------------------------------------------------------------------
    # Flush completion chain (the abstraction function's slices)
    # ------------------------------------------------------------------
    rf_after_flush = rf
    for i in range(slots):
        stage_out = Signal(f"rf_flush{i + 1}", MEMORY)

        def flush_fn(prev, activate_i, valid_i, vres_i, op_i, dest_i,
                     src1_i, src2_i, result_i):
            if activate_i is FALSE:
                return prev
            if valid_i is FALSE:
                return prev
            data = builder.ite_term(
                vres_i,
                result_i,
                builder.uf(
                    ALU,
                    [op_i, builder.read(prev, src1_i), builder.read(prev, src2_i)],
                ),
            )
            context = builder.and_(activate_i, valid_i)
            return builder.ite_term(
                context, builder.write(prev, dest_i, data), prev
            )

        circuit.add(
            Fn(
                f"flush_slice{i + 1}",
                [rf_after_flush, activate[i], valid[i], vres[i], op[i],
                 dest[i], src1[i], src2[i], result[i]],
                [stage_out],
                flush_fn,
            )
        )
        rf_after_flush = stage_out

    # Register-File next state and the held copy for the exec slices.
    rf_next = Signal("rf_next", MEMORY)
    circuit.add(Mux("rf_select", flush, rf_after_flush, rf_after_retire, rf_next))
    circuit.add(Latch("rf_latch", rf_next, rf))
    rf_hold_next = Signal("rf_hold_next", MEMORY)
    circuit.add(Mux("rf_hold_select", flush, rf_hold, rf, rf_hold_next))
    circuit.add(Latch("rf_hold_latch", rf_hold_next, rf_hold))

    # ------------------------------------------------------------------
    # Symbolic initial state
    # ------------------------------------------------------------------
    initial: Dict[Signal, Expr] = {}
    vars_by_name: Dict[str, Expr] = {}

    def init_var(signal: Signal, expr: Expr, record: bool = True) -> None:
        initial[signal] = expr
        if record:
            name = getattr(expr, "name", None)
            if name is not None:
                vars_by_name[name] = expr

    init_var(pc, builder.tvar("PC"))
    init_var(rf, builder.tvar("RegFile"))
    init_var(rf_hold, builder.tvar("RegFile"), record=False)
    for i in range(n):
        init_var(valid[i], builder.bvar(f"Valid{i + 1}"))
        init_var(vres[i], builder.bvar(f"ValidResult{i + 1}"))
        init_var(op[i], builder.tvar(f"Op{i + 1}"))
        init_var(dest[i], builder.tvar(f"Dest{i + 1}"))
        init_var(src1[i], builder.tvar(f"Src1_{i + 1}"))
        init_var(src2[i], builder.tvar(f"Src2_{i + 1}"))
        init_var(result[i], builder.tvar(f"Result{i + 1}"))
    for j in range(k):
        slot = n + j
        init_var(valid[slot], FALSE, record=False)
        init_var(vres[slot], FALSE, record=False)
        init_var(op[slot], builder.tvar(f"FreeOp{j + 1}"), record=False)
        init_var(dest[slot], builder.tvar(f"FreeDest{j + 1}"), record=False)
        init_var(src1[slot], builder.tvar(f"FreeSrc1_{j + 1}"), record=False)
        init_var(src2[slot], builder.tvar(f"FreeSrc2_{j + 1}"), record=False)
        init_var(result[slot], builder.tvar(f"FreeResult{j + 1}"), record=False)

    proc.initial_state = initial
    proc.vars = vars_by_name
    circuit.freeze()
    return proc


def _make_exec_fn(slice_index: int, bug: Optional[Bug]) -> Callable:
    """Build the combinational function of one execution slice.

    Inputs (in order): flush, nd_execute, rf, op, src1, src2, valid, vres,
    result, then (valid_j, vres_j, dest_j, result_j) for each preceding
    entry j = 1 .. slice_index-1.  Outputs: (next_result, next_vres).
    """

    def exec_fn(flush_expr, nd_expr, rf_expr, op_expr, src1_expr, src2_expr,
                valid_expr, vres_expr, result_expr, *preceding):
        if flush_expr is TRUE:
            return (result_expr, vres_expr)
        entries = [
            tuple(preceding[4 * j : 4 * j + 4]) for j in range(len(preceding) // 4)
        ]
        value1, avail1 = _forward_operand(
            rf_expr, src1_expr, entries, slice_index, 1, bug
        )
        value2, avail2 = _forward_operand(
            rf_expr, src2_expr, entries, slice_index, 2, bug
        )
        ready = builder.and_(
            valid_expr, builder.not_(vres_expr), avail1, avail2
        )
        executed = builder.and_(nd_expr, ready)
        alu_out = builder.uf(ALU, [op_expr, value1, value2])
        next_result = builder.ite_term(executed, alu_out, result_expr)
        next_vres = builder.or_(vres_expr, executed)
        result_regular = (next_result, next_vres)
        return (
            builder.ite_term(flush_expr, result_expr, result_regular[0]),
            builder.ite_formula(flush_expr, vres_expr, result_regular[1]),
        )

    return exec_fn


def _forward_operand(
    rf_expr: Term,
    src_expr: Term,
    entries: List[Tuple[Formula, Formula, Term, Term]],
    slice_index: int,
    operand: int,
    bug: Optional[Bug],
) -> Tuple[Term, Formula]:
    """Forwarding chain for one operand (paper Sect. 3).

    Scans preceding entries oldest-first, wrapping nearer producers around
    the outside of the ITE chain so the *latest* preceding valid writer of
    the source register takes priority; falls back to a Register-File read.
    Returns ``(value, available)``.
    """
    wrong_source = (
        bug is not None
        and bug.kind == BugKind.FORWARD_WRONG_SOURCE
        and bug.entry == slice_index
        and bug.operand == operand
    )
    stale_result = (
        bug is not None
        and bug.kind == BugKind.FORWARD_STALE_RESULT
        and bug.entry == slice_index
        and bug.operand == operand
    )
    ignore_hazard = (
        bug is not None
        and bug.kind == BugKind.EXECUTE_IGNORES_HAZARD
        and bug.entry == slice_index
        and bug.operand == operand
    )

    value = builder.read(rf_expr, src_expr)
    avail: Formula = TRUE
    for j, (valid_j, vres_j, dest_j, result_j) in enumerate(entries):
        compare_with = src_expr
        if wrong_source:
            # The planted defect: the comparator looks at the wrong field,
            # so this producer is never (or wrongly) matched.
            compare_with = builder.uf("wrong$cmp", [src_expr])
        match = builder.and_(valid_j, builder.eq(dest_j, compare_with))
        forwarded = result_j
        if stale_result and j > 0:
            forwarded = entries[j - 1][3]
        value = builder.ite_term(match, forwarded, value)
        avail = builder.ite_formula(match, vres_j, avail)
    if ignore_hazard:
        avail = TRUE
    return value, avail


def make_simulator(proc: OooProcessor) -> Simulator:
    """A simulator over ``proc`` with symbolic initial state and inputs.

    The nondeterministic scheduling inputs are driven with their Boolean
    variables; ``flush`` and all ``activate_i`` default to false (regular
    operation).  The harness flips them to run the abstraction function.
    """
    sim = Simulator(proc.circuit)
    sim.init_state(proc.initial_state)
    sim.set_input(proc.flush, FALSE)
    for signal in proc.activate:
        sim.set_input(signal, FALSE)
    for i, signal in enumerate(proc.nd_execute):
        sim.set_input(signal, builder.bvar(f"NDExecute{i + 1}"))
    for j, signal in enumerate(proc.nd_fetch):
        sim.set_input(signal, builder.bvar(f"NDFetch{j + 1}"))
    return sim
