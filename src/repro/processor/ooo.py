"""The abstract out-of-order implementation processor (paper Sect. 3–4).

The design of Fig. 1, abstracted exactly the way the paper describes:

* The reorder buffer is ``N + k`` latched entries: the first ``N`` hold the
  instructions initially in the ROB (fields ``Valid``, ``ValidResult``,
  ``Opcode``, ``Dest``, ``Src1``, ``Src2``, ``Result`` — all symbolic
  initial state), and the last ``k`` accept the newly fetched instructions.
* Scheduling is nondeterministic: fresh Boolean variables ``NDFetch_j``
  form the monotone fetch signals ``fetch_j = NDFetch_1 & .. & NDFetch_j``,
  and ``NDExecute_i`` abstracts the `execute_i` control of each slice.
* The hazard-resolution (stall/forwarding) logic is fully instantiated:
  an instruction is ready when each operand can be read from the Register
  File or forwarded from the ``Result`` field of the *latest* preceding
  valid producer, which must already have its result.
* Retirement is in program order, up to ``l`` per cycle, per formula (1).
* Flushing (``flush`` input true) activates one computation slice per step
  (``activate_i`` inputs, driven by the abstraction-function harness) and
  applies the slice's completion function.

Workload families (:mod:`repro.processor.families`) extend the circuit:

* *branch*: every entry carries a latched ``IsBranch`` kind bit and a
  latched ``Taken`` outcome.  A branch executes like an ALU op but
  computes ``BranchTarget``/``BranchTaken`` of its operands into the
  ``Result``/``Taken`` fields.  Fetch is speculative (predict not-taken:
  the fall-through ``NextPC`` chain).  Misprediction is detected at
  retirement: a retiring taken branch redirects the PC to its target,
  squashes every younger ROB entry and the instructions fetched in the
  same cycle, and blocks younger retirement slots.  The abstraction
  function performs the same recovery for branches still in the ROB: a
  latched wrong-path flag ``wp`` accumulates over the flush steps, each
  completed taken branch redirects the PC, and wrong-path slices are
  skipped instead of completed.
* *mem*: a Data Memory (``dmem``) joins the architectural state.  Every
  entry carries ``IsLoad``/``IsStore`` kind bits; the effective address is
  the uninterpreted ``MemAddr(op)``.  Stores compute their data (the
  second operand) at execution and commit to the Data Memory *in program
  order at retirement*; loads executing out of order forward from the
  latest preceding store to the same address (store-to-load forwarding)
  and fall through to a Data-Memory read, and may only execute once every
  matching preceding store has its data.

The builder plays the role of the paper's "C program, taking as parameters
the size of the ROB and the issue width"; ``bug`` plants the defects of
:mod:`repro.processor.bugs`.  For the ``reg-reg`` family every kind flag
is the constant ``FALSE`` and the builder's constant folding collapses
the generated circuit to exactly the seed model's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..eufm import builder
from ..eufm.ast import FALSE, TRUE, Expr, Formula, Term
from ..tlsim import Circuit, Fn, Latch, Mux, Signal, Simulator
from ..tlsim.signals import FORMULA, MEMORY, TERM
from .bugs import Bug, BugKind
from .families import Family
from .isa import (
    ALU,
    BRANCH_TAKEN,
    BRANCH_TARGET,
    INSTR_DEST,
    INSTR_IS_BRANCH,
    INSTR_IS_LOAD,
    INSTR_IS_STORE,
    INSTR_OP,
    INSTR_SRC1,
    INSTR_SRC2,
    INSTR_VALID,
    MEM_ADDR,
    NEXT_PC,
    kind_precedence,
    writes_reg_file,
)
from .params import ProcessorConfig

__all__ = ["OooProcessor", "build_ooo_processor", "make_simulator"]


@dataclass
class OooProcessor:
    """A built implementation circuit plus its symbolic initial state."""

    config: ProcessorConfig
    bug: Optional[Bug]
    circuit: Circuit
    # Control inputs.
    flush: Signal
    activate: List[Signal]
    nd_execute: List[Signal]
    nd_fetch: List[Signal]
    # Architectural and ROB state signals (latch outputs).
    pc: Signal
    rf: Signal
    rf_hold: Signal
    valid: List[Signal]
    vres: List[Signal]
    op: List[Signal]
    dest: List[Signal]
    src1: List[Signal]
    src2: List[Signal]
    result: List[Signal]
    #: per-entry kind bits (branch families: kb; memory families: kl/ks);
    #: empty lists when the family lacks the capability.
    kb: List[Signal] = field(default_factory=list)
    kl: List[Signal] = field(default_factory=list)
    ks: List[Signal] = field(default_factory=list)
    #: per-entry latched branch outcome (branch families).
    taken: List[Signal] = field(default_factory=list)
    #: the wrong-path flag accumulated by the abstraction function
    #: (branch families).
    wp: Optional[Signal] = None
    #: the Data Memory and its held pre-step copy (memory families).
    dmem: Optional[Signal] = None
    dmem_hold: Optional[Signal] = None
    #: symbolic initial values for every latch output.
    initial_state: Dict[Signal, Expr] = field(default_factory=dict)
    #: the symbolic variables of the initial state, by conventional name.
    vars: Dict[str, Expr] = field(default_factory=dict)

    @property
    def total_slots(self) -> int:
        return self.config.total_slots

    @property
    def family(self) -> Family:
        return self.config.family_spec


def _kind_signals(proc_like: "_Builder", i: int) -> List[Signal]:
    """The kind-bit signals of slot ``i`` in canonical packing order."""
    signals: List[Signal] = []
    if proc_like.has_branches:
        signals.append(proc_like.kb[i])
    if proc_like.has_memory:
        signals.extend([proc_like.kl[i], proc_like.ks[i]])
    return signals


@dataclass
class _Builder:
    """Shared construction context for one processor build."""

    config: ProcessorConfig
    family: Family
    bug: Optional[Bug]
    kb: List[Signal] = field(default_factory=list)
    kl: List[Signal] = field(default_factory=list)
    ks: List[Signal] = field(default_factory=list)

    @property
    def has_branches(self) -> bool:
        return self.family.has_branches

    @property
    def has_memory(self) -> bool:
        return self.family.has_memory

    @property
    def kind_arity(self) -> int:
        return (1 if self.has_branches else 0) + (2 if self.has_memory else 0)

    def unpack_kinds(
        self, exprs: Sequence[Formula]
    ) -> Tuple[Formula, Formula, Formula]:
        """Prioritized (isb, isl, iss) from packed raw kind expressions."""
        index = 0
        raw_b: Formula = FALSE
        raw_l: Formula = FALSE
        raw_s: Formula = FALSE
        if self.has_branches:
            raw_b = exprs[index]
            index += 1
        if self.has_memory:
            raw_l = exprs[index]
            raw_s = exprs[index + 1]
        return kind_precedence(self.family, raw_b, raw_l, raw_s)


def build_ooo_processor(
    config: ProcessorConfig, bug: Optional[Bug] = None
) -> OooProcessor:
    """Generate the abstract OOO implementation for ``config``."""
    n = config.n_rob
    k = config.issue_width
    l = config.retire_width
    slots = config.total_slots
    family = config.family_spec
    if bug is not None:
        bug.check_family(family)
    has_b = family.has_branches
    has_m = family.has_memory
    circuit = Circuit(f"ooo_N{n}_k{k}_{family.name}")

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    flush = Signal("flush", FORMULA)
    activate = [Signal(f"activate{i}", FORMULA) for i in range(1, slots + 1)]
    nd_execute = [Signal(f"nd_execute{i}", FORMULA) for i in range(1, n + 1)]
    nd_fetch = [Signal(f"nd_fetch{j}", FORMULA) for j in range(1, k + 1)]

    pc = Signal("pc", TERM)
    rf = Signal("rf", MEMORY)
    rf_hold = Signal("rf_hold", MEMORY)
    valid = [Signal(f"valid{i}", FORMULA) for i in range(1, slots + 1)]
    vres = [Signal(f"vres{i}", FORMULA) for i in range(1, slots + 1)]
    op = [Signal(f"op{i}", TERM) for i in range(1, slots + 1)]
    dest = [Signal(f"dest{i}", TERM) for i in range(1, slots + 1)]
    src1 = [Signal(f"src1_{i}", TERM) for i in range(1, slots + 1)]
    src2 = [Signal(f"src2_{i}", TERM) for i in range(1, slots + 1)]
    result = [Signal(f"result{i}", TERM) for i in range(1, slots + 1)]

    ctx = _Builder(config=config, family=family, bug=bug)
    kb = kl = ks = []
    taken: List[Signal] = []
    wp_sig: Optional[Signal] = None
    dmem = dmem_hold = None
    if has_b:
        kb = [Signal(f"kb{i}", FORMULA) for i in range(1, slots + 1)]
        taken = [Signal(f"taken{i}", FORMULA) for i in range(1, slots + 1)]
        wp_sig = Signal("wp", FORMULA)
        ctx.kb = kb
    if has_m:
        kl = [Signal(f"kl{i}", FORMULA) for i in range(1, slots + 1)]
        ks = [Signal(f"ks{i}", FORMULA) for i in range(1, slots + 1)]
        ctx.kl = kl
        ctx.ks = ks
    if has_m:
        dmem = Signal("dmem", MEMORY)
        dmem_hold = Signal("dmem_hold", MEMORY)

    proc = OooProcessor(
        config=config,
        bug=bug,
        circuit=circuit,
        flush=flush,
        activate=activate,
        nd_execute=nd_execute,
        nd_fetch=nd_fetch,
        pc=pc,
        rf=rf,
        rf_hold=rf_hold,
        valid=valid,
        vres=vres,
        op=op,
        dest=dest,
        src1=src1,
        src2=src2,
        result=result,
        kb=kb,
        kl=kl,
        ks=ks,
        taken=taken,
        wp=wp_sig,
        dmem=dmem,
        dmem_hold=dmem_hold,
    )

    # ------------------------------------------------------------------
    # Retirement (program order, formula (1)); branch families extend the
    # chain with the wrong-path guard and a running mispredict flag.
    # ------------------------------------------------------------------
    retire = [Signal(f"retire{i}", FORMULA) for i in range(1, l + 1)]
    mispred = (
        [Signal(f"mispred{i}", FORMULA) for i in range(1, l + 1)]
        if has_b
        else []
    )
    for i in range(l):
        if not has_b:

            def retire_fn(valid_i, vres_i, *prev, index=i):
                own = builder.or_(builder.not_(valid_i), vres_i)
                if bug is not None and bug.entry == index + 1:
                    if bug.kind == BugKind.RETIRE_WITHOUT_RESULT:
                        own = TRUE
                    elif bug.kind == BugKind.RETIRE_OUT_OF_ORDER:
                        return own
                if prev:
                    return builder.and_(own, prev[0])
                return own

            inputs = [valid[i], vres[i]] + ([retire[i - 1]] if i > 0 else [])
            circuit.add(
                Fn(f"retire_logic{i + 1}", inputs, [retire[i]], retire_fn)
            )
        else:

            def retire_fn_b(valid_i, vres_i, taken_i, *rest, index=i):
                kinds = rest[: ctx.kind_arity]
                prev = rest[ctx.kind_arity:]
                isb_i, _, _ = ctx.unpack_kinds(kinds)
                own = builder.or_(builder.not_(valid_i), vres_i)
                guard = TRUE
                if prev:
                    # A retiring taken branch blocks every younger
                    # retirement slot: those entries are wrong-path.
                    guard = builder.not_(prev[1])
                if bug is not None and bug.entry == index + 1:
                    if bug.kind == BugKind.RETIRE_WITHOUT_RESULT:
                        own = TRUE
                    elif bug.kind == BugKind.RETIRE_OUT_OF_ORDER:
                        retire_i = own
                        mispred_i = builder.and_(
                            retire_i, valid_i, isb_i, taken_i
                        )
                        if prev:
                            mispred_i = builder.or_(prev[1], mispred_i)
                        return retire_i, mispred_i
                    elif bug.kind == BugKind.WRONG_PATH_RETIRE:
                        guard = TRUE
                retire_i = builder.and_(own, guard, *(
                    [prev[0]] if prev else []
                ))
                mispred_i = builder.and_(retire_i, valid_i, isb_i, taken_i)
                if prev:
                    mispred_i = builder.or_(prev[1], mispred_i)
                return retire_i, mispred_i

            inputs = (
                [valid[i], vres[i], taken[i]]
                + _kind_signals(ctx, i)
                + ([retire[i - 1], mispred[i - 1]] if i > 0 else [])
            )
            circuit.add(
                Fn(
                    f"retire_logic{i + 1}",
                    inputs,
                    [retire[i], mispred[i]],
                    retire_fn_b,
                )
            )

    #: "some retiring branch mispredicted this cycle" plus its redirect
    #: target (branch families; at most one mispredicted retirement per
    #: cycle by construction of the retirement guard).
    mispredict_sig: Optional[Signal] = None
    redirect_sig: Optional[Signal] = None
    if has_b:
        mispredict_sig = Signal("mispredict", FORMULA)
        redirect_sig = Signal("redirect_target", TERM)

        def recovery_fn(pc_expr, *rest):
            per_entry = 4 + ctx.kind_arity
            target = pc_expr
            flag: Formula = FALSE
            for j in range(l):
                chunk = rest[j * per_entry : (j + 1) * per_entry]
                retire_j, valid_j, taken_j, result_j = chunk[:4]
                isb_j, _, _ = ctx.unpack_kinds(chunk[4:])
                mispred_j = builder.and_(retire_j, valid_j, isb_j, taken_j)
                target = builder.ite_term(mispred_j, result_j, target)
                flag = builder.or_(flag, mispred_j)
            return flag, target

        rec_inputs: List[Signal] = [pc]
        for j in range(l):
            rec_inputs.extend([retire[j], valid[j], taken[j], result[j]])
            rec_inputs.extend(_kind_signals(ctx, j))
        circuit.add(
            Fn(
                "recovery_logic",
                rec_inputs,
                [mispredict_sig, redirect_sig],
                recovery_fn,
            )
        )

    # Register-File chain for in-order retirement writes.
    rf_after_retire = rf
    for i in range(l):
        stage_out = Signal(f"rf_retire{i + 1}", MEMORY)

        def retire_write_fn(prev, retire_i, valid_i, dest_i, result_i,
                            *kinds, index=i):
            isb_i, _, iss_i = ctx.unpack_kinds(kinds)
            context = builder.and_(
                valid_i, retire_i, writes_reg_file(isb_i, iss_i)
            )
            if (
                bug is not None
                and bug.kind == BugKind.RETIRE_IGNORES_VALID
                and bug.entry == index + 1
            ):
                context = retire_i
            return builder.ite_term(
                context, builder.write(prev, dest_i, result_i), prev
            )

        circuit.add(
            Fn(
                f"retire_write{i + 1}",
                [rf_after_retire, retire[i], valid[i], dest[i], result[i]]
                + _kind_signals(ctx, i),
                [stage_out],
                retire_write_fn,
            )
        )
        rf_after_retire = stage_out

    # Data-Memory chain for in-order store commit at retirement.
    dmem_after_retire = dmem
    if has_m:
        commit_order = list(range(l))
        if (
            bug is not None
            and bug.kind == BugKind.STORE_ORDER
            and 2 <= bug.entry <= l
        ):
            # The planted defect: the memory write of this retirement slot
            # is sequenced *before* its older neighbor's, so when both
            # stores hit the same address the younger one's data is
            # overwritten by the older one's.
            e = bug.entry - 1
            commit_order[e - 1], commit_order[e] = (
                commit_order[e],
                commit_order[e - 1],
            )
        for stage, i in enumerate(commit_order):
            stage_out = Signal(f"dmem_retire{stage + 1}", MEMORY)

            def dmem_retire_fn(prev, retire_i, valid_i, op_i, result_i,
                               *kinds):
                _, _, iss_i = ctx.unpack_kinds(kinds)
                context = builder.and_(valid_i, iss_i, retire_i)
                addr = builder.uf(MEM_ADDR, [op_i])
                return builder.ite_term(
                    context, builder.write(prev, addr, result_i), prev
                )

            circuit.add(
                Fn(
                    f"dmem_retire{stage + 1}",
                    [dmem_after_retire, retire[i], valid[i],
                     op[i], result[i]] + _kind_signals(ctx, i),
                    [stage_out],
                    dmem_retire_fn,
                )
            )
            dmem_after_retire = stage_out

    # ------------------------------------------------------------------
    # Out-of-order execution slices (regular operation)
    # ------------------------------------------------------------------
    exec_result = [Signal(f"exec_result{i}", TERM) for i in range(1, n + 1)]
    exec_vres = [Signal(f"exec_vres{i}", FORMULA) for i in range(1, n + 1)]
    exec_taken = (
        [Signal(f"exec_taken{i}", FORMULA) for i in range(1, n + 1)]
        if has_b
        else []
    )
    for i in range(n):
        # Preceding-entry signals feed the forwarding chains of slice i+1.
        preceding: List[Signal] = []
        for j in range(i):
            preceding.extend([valid[j], vres[j], dest[j], result[j]])
            preceding.extend(_kind_signals(ctx, j))
            if has_m:
                preceding.append(op[j])
        inputs = [
            flush,
            nd_execute[i],
            rf_hold,
            op[i],
            src1[i],
            src2[i],
            valid[i],
            vres[i],
            result[i],
        ]
        if has_b:
            inputs.append(taken[i])
        if has_m:
            inputs.append(dmem_hold)
        inputs += _kind_signals(ctx, i)
        inputs += preceding
        outputs = [exec_result[i], exec_vres[i]]
        if has_b:
            outputs.append(exec_taken[i])
        circuit.add(
            Fn(
                f"exec_slice{i + 1}",
                inputs,
                outputs,
                _make_exec_fn(i + 1, ctx),
            )
        )
        circuit.add(Latch(f"result_latch{i + 1}", exec_result[i], result[i]))
        circuit.add(Latch(f"vres_latch{i + 1}", exec_vres[i], vres[i]))
        if has_b:
            circuit.add(Latch(f"taken_latch{i + 1}", exec_taken[i], taken[i]))

    # ------------------------------------------------------------------
    # Fetch engine
    # ------------------------------------------------------------------
    fetch = [Signal(f"fetch{j}", FORMULA) for j in range(1, k + 1)]
    for j in range(k):

        def fetch_fn(*nd):
            return builder.and_(*nd)

        circuit.add(Fn(f"fetch_logic{j + 1}", nd_fetch[: j + 1], [fetch[j]], fetch_fn))

    # Flush-time PC recovery: each flush slice reports whether it completed
    # a taken branch and where that branch goes (branch families).
    flush_detect = (
        [Signal(f"flush_detect{i}", FORMULA) for i in range(1, slots + 1)]
        if has_b
        else []
    )
    flush_target = (
        [Signal(f"flush_target{i}", TERM) for i in range(1, slots + 1)]
        if has_b
        else []
    )

    pc_next = Signal("pc_next", TERM)

    def pc_fn(flush_expr, pc_expr, *rest):
        fetch_exprs = rest[:k]
        extra = rest[k:]
        if has_b:
            mispredict_expr, redirect_expr = extra[0], extra[1]
            detects = extra[2 : 2 + slots]
            targets = extra[2 + slots : 2 + 2 * slots]
            activates = extra[2 + 2 * slots :]
            # During flushing the abstraction function redirects the PC
            # when the activated slice completes a taken branch.
            flushed_pc = pc_expr
            for idx in range(slots):
                flushed_pc = builder.ite_term(
                    builder.and_(activates[idx], detects[idx]),
                    targets[idx],
                    flushed_pc,
                )
        else:
            flushed_pc = pc_expr
        if flush_expr is TRUE:
            return flushed_pc
        new_pc = pc_expr
        stepped = pc_expr
        for j, fetch_j in enumerate(fetch_exprs):
            stepped = builder.uf(NEXT_PC, [stepped])
            if (
                bug is not None
                and bug.kind == BugKind.PC_SINGLE_INCREMENT
                and j > 0
            ):
                stepped = builder.uf(NEXT_PC, [pc_expr])
            new_pc = builder.ite_term(fetch_j, stepped, new_pc)
        if has_b:
            # Misprediction detected at retirement: squash the speculative
            # fetch advance and redirect to the branch target.
            new_pc = builder.ite_term(mispredict_expr, redirect_expr, new_pc)
        return builder.ite_term(flush_expr, flushed_pc, new_pc)

    pc_inputs = [flush, pc] + fetch
    if has_b:
        pc_inputs += [mispredict_sig, redirect_sig]
        pc_inputs += flush_detect + flush_target + activate
    circuit.add(Fn("pc_logic", pc_inputs, [pc_next], pc_fn))
    circuit.add(Latch("pc_latch", pc_next, pc))

    # New-instruction slots: fetched fields enter the last k entries.
    for j in range(k):
        slot = n + j

        def new_fields_fn(flush_expr, pc_expr, fetch_j, valid_cur, vres_cur,
                          op_cur, dest_cur, src1_cur, src2_cur, *extra,
                          offset=j, slot_index=slot):
            mispredict_expr: Formula = FALSE
            kinds_cur: Sequence[Formula] = ()
            if has_b:
                mispredict_expr = extra[0]
                kinds_cur = extra[1 : 1 + ctx.kind_arity]
            elif ctx.kind_arity:
                kinds_cur = extra[: ctx.kind_arity]
            if flush_expr is TRUE:
                return (
                    (valid_cur, vres_cur, op_cur, dest_cur, src1_cur,
                     src2_cur) + tuple(kinds_cur)
                )
            slot_pc = pc_expr
            for _ in range(offset):
                slot_pc = builder.uf(NEXT_PC, [slot_pc])
            new_valid = builder.and_(
                fetch_j, builder.up(INSTR_VALID, [slot_pc])
            )
            if has_b:
                # Instructions fetched in the cycle an older branch
                # retires mispredicted are wrong-path: squash at entry.
                squash = builder.not_(mispredict_expr)
                if (
                    bug is not None
                    and bug.kind == BugKind.DROPPED_FLUSH
                    and bug.entry == slot_index + 1
                ):
                    squash = TRUE
                new_valid = builder.and_(new_valid, squash)
            fields = [
                builder.ite_formula(flush_expr, valid_cur, new_valid),
                builder.ite_formula(flush_expr, vres_cur, FALSE),
                builder.ite_term(flush_expr, op_cur, builder.uf(INSTR_OP, [slot_pc])),
                builder.ite_term(
                    flush_expr, dest_cur, builder.uf(INSTR_DEST, [slot_pc])
                ),
                builder.ite_term(
                    flush_expr, src1_cur, builder.uf(INSTR_SRC1, [slot_pc])
                ),
                builder.ite_term(
                    flush_expr, src2_cur, builder.uf(INSTR_SRC2, [slot_pc])
                ),
            ]
            new_kinds: List[Formula] = []
            if has_b:
                new_kinds.append(builder.up(INSTR_IS_BRANCH, [slot_pc]))
            if has_m:
                new_kinds.append(builder.up(INSTR_IS_LOAD, [slot_pc]))
                new_kinds.append(builder.up(INSTR_IS_STORE, [slot_pc]))
            for cur, new in zip(kinds_cur, new_kinds):
                fields.append(builder.ite_formula(flush_expr, cur, new))
            return tuple(fields)

        next_signals = [
            Signal(f"new_valid{slot + 1}", FORMULA),
            Signal(f"new_vres{slot + 1}", FORMULA),
            Signal(f"new_op{slot + 1}", TERM),
            Signal(f"new_dest{slot + 1}", TERM),
            Signal(f"new_src1_{slot + 1}", TERM),
            Signal(f"new_src2_{slot + 1}", TERM),
        ]
        kind_next = [
            Signal(f"new_{sig.name}", FORMULA)
            for sig in _kind_signals(ctx, slot)
        ]
        next_signals += kind_next
        fn_inputs = [flush, pc, fetch[j], valid[slot], vres[slot], op[slot],
                     dest[slot], src1[slot], src2[slot]]
        if has_b:
            fn_inputs.append(mispredict_sig)
        fn_inputs += _kind_signals(ctx, slot)
        circuit.add(
            Fn(f"fetch_slot{slot + 1}", fn_inputs, next_signals, new_fields_fn)
        )
        circuit.add(Latch(f"valid_latch{slot + 1}", next_signals[0], valid[slot]))
        circuit.add(Latch(f"vres_latch{slot + 1}", next_signals[1], vres[slot]))
        circuit.add(Latch(f"op_latch{slot + 1}", next_signals[2], op[slot]))
        circuit.add(Latch(f"dest_latch{slot + 1}", next_signals[3], dest[slot]))
        circuit.add(Latch(f"src1_latch{slot + 1}", next_signals[4], src1[slot]))
        circuit.add(Latch(f"src2_latch{slot + 1}", next_signals[5], src2[slot]))
        for kind_sig, next_sig in zip(_kind_signals(ctx, slot), kind_next):
            circuit.add(
                Latch(f"{kind_sig.name}_latch", next_sig, kind_sig)
            )
        # Result of a fetch slot only materializes during flush completion.
        circuit.add(Latch(f"result_latch{slot + 1}", result[slot], result[slot]))
        if has_b:
            circuit.add(Latch(f"taken_latch{slot + 1}", taken[slot], taken[slot]))

    # Valid-bit updates for the initial entries.
    for i in range(n):
        squash_inputs: List[Signal] = []
        if has_b:
            # The youngest strictly-older retirement slot's mispredict
            # flag squashes this (wrong-path) entry.
            older = min(i, l)
            if older > 0:
                squash_inputs = [mispred[older - 1]]
        if i < l or squash_inputs:
            valid_next = Signal(f"valid_next{i + 1}", FORMULA)

            def valid_fn(flush_expr, valid_i, *rest, index=i,
                         has_retire=(i < l), has_squash=bool(squash_inputs)):
                if flush_expr is TRUE:
                    return valid_i
                keep: Formula = TRUE
                pos = 0
                if has_retire:
                    keep = builder.and_(keep, builder.not_(rest[pos]))
                    pos += 1
                if has_squash:
                    squashed = builder.not_(rest[pos])
                    if (
                        bug is not None
                        and bug.kind == BugKind.DROPPED_FLUSH
                        and bug.entry == index + 1
                    ):
                        # The planted defect: ROB-flush recovery skips
                        # this entry; its wrong-path Valid bit survives.
                        squashed = TRUE
                    keep = builder.and_(keep, squashed)
                return builder.ite_formula(
                    flush_expr, valid_i, builder.and_(valid_i, keep)
                )

            fn_inputs = [flush, valid[i]]
            if i < l:
                fn_inputs.append(retire[i])
            fn_inputs += squash_inputs
            circuit.add(
                Fn(f"valid_logic{i + 1}", fn_inputs, [valid_next], valid_fn)
            )
            circuit.add(Latch(f"valid_latch{i + 1}", valid_next, valid[i]))
        else:
            circuit.add(Latch(f"valid_latch{i + 1}", valid[i], valid[i]))
        # Instruction fields are read-only once in the ROB.
        circuit.add(Latch(f"op_latch{i + 1}", op[i], op[i]))
        circuit.add(Latch(f"dest_latch{i + 1}", dest[i], dest[i]))
        circuit.add(Latch(f"src1_latch{i + 1}", src1[i], src1[i]))
        circuit.add(Latch(f"src2_latch{i + 1}", src2[i], src2[i]))
        for kind_sig in _kind_signals(ctx, i):
            circuit.add(Latch(f"{kind_sig.name}_latch", kind_sig, kind_sig))

    # ------------------------------------------------------------------
    # Flush completion chain (the abstraction function's slices)
    # ------------------------------------------------------------------
    rf_after_flush = rf
    dmem_after_flush = dmem
    for i in range(slots):
        rf_stage = Signal(f"rf_flush{i + 1}", MEMORY)
        outputs = [rf_stage]
        dmem_stage = None
        if has_m:
            dmem_stage = Signal(f"dmem_flush{i + 1}", MEMORY)
            outputs.append(dmem_stage)
        if has_b:
            outputs.extend([flush_detect[i], flush_target[i]])

        def flush_fn(prev, activate_i, valid_i, vres_i, op_i, dest_i,
                     src1_i, src2_i, result_i, *extra, index=i):
            pos = 0
            taken_i: Formula = FALSE
            wp_cur: Formula = FALSE
            dmem_prev: Optional[Term] = None
            if has_b:
                taken_i = extra[pos]
                wp_cur = extra[pos + 1]
                pos += 2
            if has_m:
                dmem_prev = extra[pos]
                pos += 1
            isb_i, isl_i, iss_i = ctx.unpack_kinds(extra[pos:])

            def results() -> Tuple:
                out: List[Expr] = [prev]
                if has_m:
                    out.append(dmem_prev)
                if has_b:
                    out.extend([FALSE, result_i])
                return tuple(out) if len(out) > 1 else out[0]

            if activate_i is FALSE:
                return results()
            if valid_i is FALSE:
                return results()
            complete = builder.and_(activate_i, valid_i)
            if has_b:
                complete = builder.and_(complete, builder.not_(wp_cur))

            operand1 = builder.read(prev, src1_i)
            operand2 = builder.read(prev, src2_i)
            alu_out = builder.uf(ALU, [op_i, operand1, operand2])
            data = alu_out
            if has_m:
                addr = builder.uf(MEM_ADDR, [op_i])
                data = builder.ite_term(
                    isl_i, builder.read(dmem_prev, addr), data
                )
            data = builder.ite_term(vres_i, result_i, data)
            rf_context = builder.and_(
                complete, writes_reg_file(isb_i, iss_i)
            )
            rf_out = builder.ite_term(
                rf_context, builder.write(prev, dest_i, data), prev
            )

            out: List[Expr] = [rf_out]
            if has_m:
                addr = builder.uf(MEM_ADDR, [op_i])
                store_data = builder.ite_term(
                    vres_i, result_i, builder.read(prev, src2_i)
                )
                dmem_context = builder.and_(complete, iss_i)
                out.append(
                    builder.ite_term(
                        dmem_context,
                        builder.write(dmem_prev, addr, store_data),
                        dmem_prev,
                    )
                )
            if has_b:
                taken_now = builder.ite_formula(
                    vres_i,
                    taken_i,
                    builder.up(BRANCH_TAKEN, [op_i, operand1, operand2]),
                )
                target_now = builder.ite_term(
                    vres_i,
                    result_i,
                    builder.uf(BRANCH_TARGET, [op_i, operand1, operand2]),
                )
                detect = builder.and_(complete, isb_i, taken_now)
                out.extend([detect, target_now])
            return tuple(out) if len(out) > 1 else out[0]

        fn_inputs = [rf_after_flush, activate[i], valid[i], vres[i], op[i],
                     dest[i], src1[i], src2[i], result[i]]
        if has_b:
            fn_inputs.extend([taken[i], wp_sig])
        if has_m:
            fn_inputs.append(dmem_after_flush)
        fn_inputs += _kind_signals(ctx, i)
        circuit.add(Fn(f"flush_slice{i + 1}", fn_inputs, outputs, flush_fn))
        rf_after_flush = rf_stage
        if has_m:
            dmem_after_flush = dmem_stage

    # Wrong-path flag accumulation across flush steps (branch families).
    if has_b:
        wp_next = Signal("wp_next", FORMULA)

        def wp_fn(flush_expr, wp_cur, *rest):
            activates = rest[:slots]
            detects = rest[slots:]
            accumulated = wp_cur
            for idx in range(slots):
                accumulated = builder.or_(
                    accumulated, builder.and_(activates[idx], detects[idx])
                )
            return builder.ite_formula(flush_expr, accumulated, wp_cur)

        circuit.add(
            Fn(
                "wp_logic",
                [flush, wp_sig] + activate + flush_detect,
                [wp_next],
                wp_fn,
            )
        )
        circuit.add(Latch("wp_latch", wp_next, wp_sig))

    # Register-File next state and the held copy for the exec slices.
    rf_next = Signal("rf_next", MEMORY)
    circuit.add(Mux("rf_select", flush, rf_after_flush, rf_after_retire, rf_next))
    circuit.add(Latch("rf_latch", rf_next, rf))
    rf_hold_next = Signal("rf_hold_next", MEMORY)
    circuit.add(Mux("rf_hold_select", flush, rf_hold, rf, rf_hold_next))
    circuit.add(Latch("rf_hold_latch", rf_hold_next, rf_hold))
    if has_m:
        dmem_next = Signal("dmem_next", MEMORY)
        circuit.add(
            Mux("dmem_select", flush, dmem_after_flush, dmem_after_retire,
                dmem_next)
        )
        circuit.add(Latch("dmem_latch", dmem_next, dmem))
        dmem_hold_next = Signal("dmem_hold_next", MEMORY)
        circuit.add(
            Mux("dmem_hold_select", flush, dmem_hold, dmem, dmem_hold_next)
        )
        circuit.add(Latch("dmem_hold_latch", dmem_hold_next, dmem_hold))

    # ------------------------------------------------------------------
    # Symbolic initial state
    # ------------------------------------------------------------------
    initial: Dict[Signal, Expr] = {}
    vars_by_name: Dict[str, Expr] = {}

    def init_var(signal: Signal, expr: Expr, record: bool = True) -> None:
        initial[signal] = expr
        if record:
            name = getattr(expr, "name", None)
            if name is not None:
                vars_by_name[name] = expr

    init_var(pc, builder.tvar("PC"))
    init_var(rf, builder.tvar("RegFile"))
    init_var(rf_hold, builder.tvar("RegFile"), record=False)
    if has_m:
        init_var(dmem, builder.tvar("DMem"))
        init_var(dmem_hold, builder.tvar("DMem"), record=False)
    if has_b:
        init_var(wp_sig, FALSE, record=False)
    for i in range(n):
        init_var(valid[i], builder.bvar(f"Valid{i + 1}"))
        init_var(vres[i], builder.bvar(f"ValidResult{i + 1}"))
        init_var(op[i], builder.tvar(f"Op{i + 1}"))
        init_var(dest[i], builder.tvar(f"Dest{i + 1}"))
        init_var(src1[i], builder.tvar(f"Src1_{i + 1}"))
        init_var(src2[i], builder.tvar(f"Src2_{i + 1}"))
        init_var(result[i], builder.tvar(f"Result{i + 1}"))
        if has_b:
            init_var(kb[i], builder.bvar(f"IsBranch{i + 1}"))
            init_var(taken[i], builder.bvar(f"Taken{i + 1}"))
        if has_m:
            init_var(kl[i], builder.bvar(f"IsLoad{i + 1}"))
            init_var(ks[i], builder.bvar(f"IsStore{i + 1}"))
    for j in range(k):
        slot = n + j
        init_var(valid[slot], FALSE, record=False)
        init_var(vres[slot], FALSE, record=False)
        init_var(op[slot], builder.tvar(f"FreeOp{j + 1}"), record=False)
        init_var(dest[slot], builder.tvar(f"FreeDest{j + 1}"), record=False)
        init_var(src1[slot], builder.tvar(f"FreeSrc1_{j + 1}"), record=False)
        init_var(src2[slot], builder.tvar(f"FreeSrc2_{j + 1}"), record=False)
        init_var(result[slot], builder.tvar(f"FreeResult{j + 1}"), record=False)
        if has_b:
            init_var(kb[slot], FALSE, record=False)
            init_var(taken[slot], FALSE, record=False)
        if has_m:
            init_var(kl[slot], FALSE, record=False)
            init_var(ks[slot], FALSE, record=False)

    proc.initial_state = initial
    proc.vars = vars_by_name
    circuit.freeze()
    return proc


def _make_exec_fn(slice_index: int, ctx: _Builder) -> Callable:
    """Build the combinational function of one execution slice.

    Inputs (in order): flush, nd_execute, rf, op, src1, src2, valid, vres,
    result, [taken], [dmem], own kind bits, then per preceding entry
    j = 1 .. slice_index-1: (valid_j, vres_j, dest_j, result_j, kinds_j,
    [op_j]).  Outputs: (next_result, next_vres[, next_taken]).
    """
    bug = ctx.bug
    has_b = ctx.has_branches
    has_m = ctx.has_memory
    per_entry = 4 + ctx.kind_arity + (1 if has_m else 0)

    def exec_fn(flush_expr, nd_expr, rf_expr, op_expr, src1_expr, src2_expr,
                valid_expr, vres_expr, result_expr, *extra):
        pos = 0
        taken_expr: Formula = FALSE
        dmem_expr: Optional[Term] = None
        if has_b:
            taken_expr = extra[pos]
            pos += 1
        if has_m:
            dmem_expr = extra[pos]
            pos += 1
        own_kinds = extra[pos : pos + ctx.kind_arity]
        pos += ctx.kind_arity
        preceding = extra[pos:]
        if flush_expr is TRUE:
            if has_b:
                return (result_expr, vres_expr, taken_expr)
            return (result_expr, vres_expr)
        isb, isl, iss = ctx.unpack_kinds(own_kinds)
        raw_entries = [
            tuple(preceding[per_entry * j : per_entry * (j + 1)])
            for j in range(len(preceding) // per_entry)
        ]
        entries = []
        for chunk in raw_entries:
            valid_j, vres_j, dest_j, result_j = chunk[:4]
            kinds_j = chunk[4 : 4 + ctx.kind_arity]
            op_j = chunk[4 + ctx.kind_arity] if has_m else None
            isb_j, isl_j, iss_j = ctx.unpack_kinds(kinds_j)
            entries.append({
                "valid": valid_j,
                "vres": vres_j,
                "dest": dest_j,
                "result": result_j,
                "wrf": writes_reg_file(isb_j, iss_j),
                "iss": iss_j,
                "op": op_j,
            })
        value1, avail1 = _forward_operand(
            rf_expr, src1_expr, entries, slice_index, 1, bug
        )
        value2, avail2 = _forward_operand(
            rf_expr, src2_expr, entries, slice_index, 2, bug
        )
        alu_out = builder.uf(ALU, [op_expr, value1, value2])
        computed = alu_out
        # Kept as separate conjuncts so the flat seed-shaped `ready`
        # conjunction below is the only node interned for non-memory
        # families (the perf baseline counts every built node).
        avail_conjuncts = (avail1, avail2)
        next_taken = taken_expr
        if has_m:
            addr = builder.uf(MEM_ADDR, [op_expr])
            mem_value, mem_avail = _forward_mem(
                dmem_expr, addr, entries, slice_index, bug
            )
            # Loads read no register; stores need only their data operand.
            avail_conjuncts = (builder.ite_formula(
                isl,
                mem_avail,
                builder.ite_formula(
                    iss, avail2, builder.and_(avail1, avail2)
                ),
            ),)
            computed = builder.ite_term(
                isl, mem_value, builder.ite_term(iss, value2, computed)
            )
        if has_b:
            br_taken = builder.up(BRANCH_TAKEN, [op_expr, value1, value2])
            br_target = builder.uf(BRANCH_TARGET, [op_expr, value1, value2])
            computed = builder.ite_term(isb, br_target, computed)
        ready = builder.and_(
            valid_expr, builder.not_(vres_expr), *avail_conjuncts
        )
        executed = builder.and_(nd_expr, ready)
        next_result = builder.ite_term(executed, computed, result_expr)
        next_vres = builder.or_(vres_expr, executed)
        if has_b:
            next_taken = builder.ite_formula(
                executed, builder.and_(isb, br_taken), taken_expr
            )
        results = (
            builder.ite_term(flush_expr, result_expr, next_result),
            builder.ite_formula(flush_expr, vres_expr, next_vres),
        )
        if has_b:
            results += (
                builder.ite_formula(flush_expr, taken_expr, next_taken),
            )
        return results

    return exec_fn


def _forward_operand(
    rf_expr: Term,
    src_expr: Term,
    entries: List[dict],
    slice_index: int,
    operand: int,
    bug: Optional[Bug],
) -> Tuple[Term, Formula]:
    """Forwarding chain for one register operand (paper Sect. 3).

    Scans preceding entries oldest-first, wrapping nearer producers around
    the outside of the ITE chain so the *latest* preceding valid writer of
    the source register takes priority; falls back to a Register-File read.
    Only register-writing producers participate (``wrf``): branches and
    stores never forward.  Returns ``(value, available)``.
    """
    wrong_source = (
        bug is not None
        and bug.kind == BugKind.FORWARD_WRONG_SOURCE
        and bug.entry == slice_index
        and bug.operand == operand
    )
    stale_result = (
        bug is not None
        and bug.kind == BugKind.FORWARD_STALE_RESULT
        and bug.entry == slice_index
        and bug.operand == operand
    )
    ignore_hazard = (
        bug is not None
        and bug.kind == BugKind.EXECUTE_IGNORES_HAZARD
        and bug.entry == slice_index
        and bug.operand == operand
    )

    value = builder.read(rf_expr, src_expr)
    avail: Formula = TRUE
    for j, entry in enumerate(entries):
        compare_with = src_expr
        if wrong_source:
            # The planted defect: the comparator looks at the wrong field,
            # so this producer is never (or wrongly) matched.
            compare_with = builder.uf("wrong$cmp", [src_expr])
        match = builder.and_(
            entry["valid"], entry["wrf"], builder.eq(entry["dest"], compare_with)
        )
        forwarded = entry["result"]
        if stale_result and j > 0:
            forwarded = entries[j - 1]["result"]
        value = builder.ite_term(match, forwarded, value)
        avail = builder.ite_formula(match, entry["vres"], avail)
    if ignore_hazard:
        avail = TRUE
    return value, avail


def _forward_mem(
    dmem_expr: Term,
    addr_expr: Term,
    entries: List[dict],
    slice_index: int,
    bug: Optional[Bug],
) -> Tuple[Term, Formula]:
    """Store-to-load forwarding chain for a load's memory value.

    Mirrors :func:`_forward_operand` over the preceding *stores*: the
    value comes from the latest preceding store to the same address
    (addresses are ``MemAddr(op)``, known at decode), falling back to a
    Data-Memory read; availability requires every matching preceding
    store to have executed (its data sits in its ``Result`` field).
    """
    stale = (
        bug is not None
        and bug.kind == BugKind.STALE_LOAD_FORWARD
        and bug.entry == slice_index
    )
    value = builder.read(dmem_expr, addr_expr)
    avail: Formula = TRUE
    for j, entry in enumerate(entries):
        store_addr = builder.uf(MEM_ADDR, [entry["op"]])
        match = builder.and_(
            entry["valid"], entry["iss"], builder.eq(store_addr, addr_expr)
        )
        forwarded = entry["result"]
        if stale and j > 0:
            # The planted defect: the forwarding mux picks the previous
            # entry's data instead of the latest matching store's.
            forwarded = entries[j - 1]["result"]
        value = builder.ite_term(match, forwarded, value)
        avail = builder.ite_formula(match, entry["vres"], avail)
    return value, avail


def make_simulator(proc: OooProcessor) -> Simulator:
    """A simulator over ``proc`` with symbolic initial state and inputs.

    The nondeterministic scheduling inputs are driven with their Boolean
    variables; ``flush`` and all ``activate_i`` default to false (regular
    operation).  The harness flips them to run the abstraction function.
    """
    sim = Simulator(proc.circuit)
    sim.init_state(proc.initial_state)
    sim.set_input(proc.flush, FALSE)
    for signal in proc.activate:
        sim.set_input(signal, FALSE)
    for i, signal in enumerate(proc.nd_execute):
        sim.set_input(signal, builder.bvar(f"NDExecute{i + 1}"))
    for j, signal in enumerate(proc.nd_fetch):
        sim.set_input(signal, builder.bvar(f"NDFetch{j + 1}"))
    return sim
