"""Workload families: which instruction classes the processor hosts.

The paper's OOO design (Velev, DATE 2002) executes only register–register
ALU instructions.  A *workload family* extends the specification and the
implementation in lock step with realistic control and memory logic:

* ``reg-reg`` — the paper's design, unchanged;
* ``branch`` — adds branch instructions with a speculative (predict
  not-taken) NextPC, misprediction detection at retirement, and ROB-flush
  recovery (wrong-path squash + PC redirect);
* ``mem`` — adds load and store instructions against a data memory
  modeled with uninterpreted ``read``/``write`` functions, with in-order
  store commit at retirement and store-to-load forwarding for loads
  executing out of order;
* ``mixed`` — both extensions together.

Instruction kinds are *symbolic*: uninterpreted predicates of the PC
decide whether a fetched instruction is a branch/load/store, and fresh
Boolean variables play that role for the instructions initially in the
ROB.  The kind predicates are made mutually exclusive by precedence
(branch beats load beats store; an instruction matching none is a
register–register ALU op), so each family's state space strictly contains
the previous one and every ``reg-reg`` theorem remains a special case.

The registry is deliberately closed: family names are part of the
verification verdict's identity (they flow into
:func:`repro.core.keys.canonical_key`), so adding a family is a
cache-invalidating, version-visible event like editing a rewrite rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Family",
    "FAMILIES",
    "DEFAULT_FAMILY",
    "family_names",
    "get_family",
]


@dataclass(frozen=True)
class Family:
    """One workload family: a named set of instruction-class capabilities."""

    name: str
    #: branches with speculative NextPC + retirement-time recovery.
    has_branches: bool
    #: loads/stores against a data memory with store-to-load forwarding.
    has_memory: bool
    description: str
    #: seeded :class:`~repro.processor.bugs.BugKind` values whose defect
    #: logic this family actually exercises (used by campaigns/tests to
    #: drive every family through both PROVED and BUG_FOUND paths).
    bug_kinds: Tuple[str, ...] = ()

    def describe(self) -> str:
        return f"{self.name}: {self.description}"


def _build_registry() -> Dict[str, Family]:
    # Imported lazily at build time to avoid a params <-> bugs cycle.
    from .bugs import BugKind

    base_bugs = (
        BugKind.FORWARD_WRONG_SOURCE,
        BugKind.FORWARD_STALE_RESULT,
        BugKind.EXECUTE_IGNORES_HAZARD,
        BugKind.RETIRE_WITHOUT_RESULT,
        BugKind.RETIRE_OUT_OF_ORDER,
        BugKind.RETIRE_IGNORES_VALID,
        BugKind.PC_SINGLE_INCREMENT,
    )
    branch_bugs = (BugKind.WRONG_PATH_RETIRE, BugKind.DROPPED_FLUSH)
    mem_bugs = (BugKind.STALE_LOAD_FORWARD, BugKind.STORE_ORDER)
    families = (
        Family(
            name="reg-reg",
            has_branches=False,
            has_memory=False,
            description="register-register ALU instructions only "
            "(the paper's design)",
            bug_kinds=base_bugs,
        ),
        Family(
            name="branch",
            has_branches=True,
            has_memory=False,
            description="adds branches: speculative NextPC, misprediction "
            "detected at retirement, ROB-flush recovery",
            bug_kinds=base_bugs + branch_bugs,
        ),
        Family(
            name="mem",
            has_branches=False,
            has_memory=True,
            description="adds loads/stores: uninterpreted data memory, "
            "in-order store commit, store-to-load forwarding",
            bug_kinds=base_bugs + mem_bugs,
        ),
        Family(
            name="mixed",
            has_branches=True,
            has_memory=True,
            description="branches and loads/stores together",
            bug_kinds=base_bugs + branch_bugs + mem_bugs,
        ),
    )
    return {family.name: family for family in families}


FAMILIES: Dict[str, Family] = _build_registry()

DEFAULT_FAMILY = "reg-reg"


def family_names() -> Tuple[str, ...]:
    """All registered family names, in registry order."""
    return tuple(FAMILIES)


def get_family(name: str) -> Family:
    """Look up a family by name; raises :class:`ValueError` when unknown."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload family {name!r}; use one of {tuple(FAMILIES)}"
        ) from None
