"""Injectable design defects for the buggy-processor experiments.

The paper's experiment (Sect. 7.2) plants a bug "in the forwarding logic
for one of the data operands of the 72nd instruction in the ROB" of a
128-entry design and shows the rewriting rules flag the offending
computation slice in seconds, while the Positive-Equality-only flow runs
out of memory.  This module defines that bug plus a family of related
control defects, all of which must be caught by verification.

The branch and load-store workload families
(:mod:`repro.processor.families`) add four defect classes of their own:
wrong-path retirement, a dropped misprediction flush, stale store-to-load
forwarding, and out-of-program-order store commit.  Those kinds only make
sense in a design that actually hosts the corresponding logic, so
:meth:`Bug.check_family` rejects, say, a ``stale-load-forward`` bug in a
``reg-reg`` configuration instead of silently verifying an unbugged
design.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Bug", "BugKind", "forwarding_bug"]


class BugKind:
    """Enumeration of supported defect classes."""

    #: the forwarding comparator of one operand of one entry matches the
    #: wrong source field (the paper's experiment).
    FORWARD_WRONG_SOURCE = "forward-wrong-source"
    #: forwarding of one operand of one entry takes the Result of the
    #: *previous* matching entry instead of the latest one.
    FORWARD_STALE_RESULT = "forward-stale-result"
    #: an entry may execute even when an operand is not yet available,
    #: reading a stale value from the Register File.
    EXECUTE_IGNORES_HAZARD = "execute-ignores-hazard"
    #: the retirement condition omits the ValidResult check, retiring (and
    #: writing back) an uncomputed result.
    RETIRE_WITHOUT_RESULT = "retire-without-result"
    #: retirement is not in program order: the chain condition on earlier
    #: retirements is dropped for one entry.
    RETIRE_OUT_OF_ORDER = "retire-out-of-order"
    #: the Register-File write at retirement ignores the Valid bit.
    RETIRE_IGNORES_VALID = "retire-ignores-valid"
    #: the PC is incremented once regardless of how many instructions were
    #: fetched.
    PC_SINGLE_INCREMENT = "pc-single-increment"
    #: (branch families) one retirement slot drops the wrong-path guard:
    #: the entry retires — and writes back — in the same cycle an older
    #: mispredicted branch retires, even though it sits on the wrong path.
    WRONG_PATH_RETIRE = "wrong-path-retire"
    #: (branch families) the ROB-flush recovery skips one entry: its Valid
    #: bit survives the squash after an older branch retires mispredicted,
    #: so the wrong-path instruction later completes and corrupts state.
    DROPPED_FLUSH = "dropped-flush"
    #: (memory families) the store-to-load forwarding of one load entry
    #: returns the data of the *previous* matching store instead of the
    #: latest preceding one.
    STALE_LOAD_FORWARD = "stale-load-forward"
    #: (memory families) the data-memory commit of one retirement slot is
    #: sequenced before its older neighbor's, letting a younger store
    #: reach memory before an older one to the same address (needs
    #: ``entry >= 2`` and ``retire_width >= entry``).
    STORE_ORDER = "store-order"

    ALL = (
        FORWARD_WRONG_SOURCE,
        FORWARD_STALE_RESULT,
        EXECUTE_IGNORES_HAZARD,
        RETIRE_WITHOUT_RESULT,
        RETIRE_OUT_OF_ORDER,
        RETIRE_IGNORES_VALID,
        PC_SINGLE_INCREMENT,
        WRONG_PATH_RETIRE,
        DROPPED_FLUSH,
        STALE_LOAD_FORWARD,
        STORE_ORDER,
    )

    #: kinds whose defect logic only exists when the family has branches.
    NEEDS_BRANCHES = (WRONG_PATH_RETIRE, DROPPED_FLUSH)
    #: kinds whose defect logic only exists when the family has memory.
    NEEDS_MEMORY = (STALE_LOAD_FORWARD, STORE_ORDER)


@dataclass(frozen=True)
class Bug:
    """A planted defect.

    Attributes:
        kind: one of :class:`BugKind`.
        entry: 1-based ROB entry the defect applies to (where relevant).
        operand: 1 or 2, the data operand affected (forwarding defects).
    """

    kind: str
    entry: int = 1
    operand: int = 1

    def __post_init__(self) -> None:
        if self.kind not in BugKind.ALL:
            raise ValueError(f"unknown bug kind {self.kind!r}")
        if self.entry < 1:
            raise ValueError("bug entry is 1-based")
        if self.operand not in (1, 2):
            raise ValueError("operand must be 1 or 2")

    def check_family(self, family) -> None:
        """Reject a defect the given family's logic cannot express.

        Args:
            family: a :class:`repro.processor.families.Family`.

        Raises:
            ValueError: when the bug targets branch (or memory) logic and
                the family has none — planting it would be a silent no-op
                and the "buggy" design would verify PROVED.
        """
        if self.kind in BugKind.NEEDS_BRANCHES and not family.has_branches:
            raise ValueError(
                f"bug {self.kind!r} targets branch logic, but family "
                f"{family.name!r} has no branches"
            )
        if self.kind in BugKind.NEEDS_MEMORY and not family.has_memory:
            raise ValueError(
                f"bug {self.kind!r} targets load-store logic, but family "
                f"{family.name!r} has no data memory"
            )

    def describe(self) -> str:
        return f"{self.kind} at ROB entry {self.entry}, operand {self.operand}"


def forwarding_bug(entry: int, operand: int = 1) -> Bug:
    """The paper's experiment: broken forwarding for one operand of one
    entry (entry 72 of a 128-entry ROB in the paper)."""
    return Bug(BugKind.FORWARD_WRONG_SOURCE, entry=entry, operand=operand)
