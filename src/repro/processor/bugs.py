"""Injectable design defects for the buggy-processor experiments.

The paper's experiment (Sect. 7.2) plants a bug "in the forwarding logic
for one of the data operands of the 72nd instruction in the ROB" of a
128-entry design and shows the rewriting rules flag the offending
computation slice in seconds, while the Positive-Equality-only flow runs
out of memory.  This module defines that bug plus a family of related
control defects, all of which must be caught by verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Bug", "BugKind", "forwarding_bug"]


class BugKind:
    """Enumeration of supported defect classes."""

    #: the forwarding comparator of one operand of one entry matches the
    #: wrong source field (the paper's experiment).
    FORWARD_WRONG_SOURCE = "forward-wrong-source"
    #: forwarding of one operand of one entry takes the Result of the
    #: *previous* matching entry instead of the latest one.
    FORWARD_STALE_RESULT = "forward-stale-result"
    #: an entry may execute even when an operand is not yet available,
    #: reading a stale value from the Register File.
    EXECUTE_IGNORES_HAZARD = "execute-ignores-hazard"
    #: the retirement condition omits the ValidResult check, retiring (and
    #: writing back) an uncomputed result.
    RETIRE_WITHOUT_RESULT = "retire-without-result"
    #: retirement is not in program order: the chain condition on earlier
    #: retirements is dropped for one entry.
    RETIRE_OUT_OF_ORDER = "retire-out-of-order"
    #: the Register-File write at retirement ignores the Valid bit.
    RETIRE_IGNORES_VALID = "retire-ignores-valid"
    #: the PC is incremented once regardless of how many instructions were
    #: fetched.
    PC_SINGLE_INCREMENT = "pc-single-increment"

    ALL = (
        FORWARD_WRONG_SOURCE,
        FORWARD_STALE_RESULT,
        EXECUTE_IGNORES_HAZARD,
        RETIRE_WITHOUT_RESULT,
        RETIRE_OUT_OF_ORDER,
        RETIRE_IGNORES_VALID,
        PC_SINGLE_INCREMENT,
    )


@dataclass(frozen=True)
class Bug:
    """A planted defect.

    Attributes:
        kind: one of :class:`BugKind`.
        entry: 1-based ROB entry the defect applies to (where relevant).
        operand: 1 or 2, the data operand affected (forwarding defects).
    """

    kind: str
    entry: int = 1
    operand: int = 1

    def __post_init__(self) -> None:
        if self.kind not in BugKind.ALL:
            raise ValueError(f"unknown bug kind {self.kind!r}")
        if self.entry < 1:
            raise ValueError("bug entry is 1-based")
        if self.operand not in (1, 2):
            raise ValueError("operand must be 1 or 2")

    def describe(self) -> str:
        return f"{self.kind} at ROB entry {self.entry}, operand {self.operand}"


def forwarding_bug(entry: int, operand: int = 1) -> Bug:
    """The paper's experiment: broken forwarding for one operand of one
    entry (entry 72 of a 128-entry ROB in the paper)."""
    return Bug(BugKind.FORWARD_WRONG_SOURCE, entry=entry, operand=operand)
