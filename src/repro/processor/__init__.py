"""Processor models: the ISA specification, the abstract out-of-order
implementation with a reorder buffer, the abstraction function, defect
injection, and the Burch–Dill correctness formula."""

from .abstraction import apply_abstraction, flush_range
from .bugs import Bug, BugKind, forwarding_bug
from .correctness import (
    DiagramArtifacts,
    build_correctness_formula,
    run_diagram,
)
from .isa import (
    ALU,
    INSTR_DEST,
    INSTR_OP,
    INSTR_SRC1,
    INSTR_SRC2,
    INSTR_VALID,
    NEXT_PC,
    SpecState,
    fetch_fields,
    spec_step,
    spec_trajectory,
)
from .ooo import OooProcessor, build_ooo_processor, make_simulator
from .params import ProcessorConfig

__all__ = [
    "apply_abstraction",
    "flush_range",
    "Bug",
    "BugKind",
    "forwarding_bug",
    "DiagramArtifacts",
    "build_correctness_formula",
    "run_diagram",
    "ALU",
    "INSTR_DEST",
    "INSTR_OP",
    "INSTR_SRC1",
    "INSTR_SRC2",
    "INSTR_VALID",
    "NEXT_PC",
    "SpecState",
    "fetch_fields",
    "spec_step",
    "spec_trajectory",
    "OooProcessor",
    "build_ooo_processor",
    "make_simulator",
    "ProcessorConfig",
]
