"""Configuration of the out-of-order processor under verification."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ProcessorConfig"]


@dataclass(frozen=True)
class ProcessorConfig:
    """Parameters of the abstract out-of-order design (paper Sect. 3–4).

    Attributes:
        n_rob: number of instructions initially in the reorder buffer (N).
        issue_width: instructions fetched per cycle (k).
        retire_width: instructions retired per cycle (l); the paper assumes
            ``l == k`` throughout and so does the default.
    """

    n_rob: int
    issue_width: int
    retire_width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_rob < 1:
            raise ValueError("the reorder buffer needs at least one entry")
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        if self.issue_width > self.n_rob:
            # Tables 1-4 mark these configurations with a dash.
            raise ValueError(
                "issue/retire width cannot exceed the reorder-buffer size"
            )
        if self.retire_width is None:
            object.__setattr__(self, "retire_width", self.issue_width)
        if self.retire_width < 1 or self.retire_width > self.n_rob:
            raise ValueError("retire width must be in [1, n_rob]")

    @property
    def total_slots(self) -> int:
        """ROB latching capacity: N initial entries plus k fetch slots."""
        return self.n_rob + self.issue_width

    def describe(self) -> str:
        return (
            f"OOO processor: {self.n_rob}-entry ROB, "
            f"issue width {self.issue_width}, retire width {self.retire_width}"
        )
