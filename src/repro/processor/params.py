"""Configuration of the out-of-order processor under verification."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .families import DEFAULT_FAMILY, Family, get_family

__all__ = ["ProcessorConfig"]


@dataclass(frozen=True)
class ProcessorConfig:
    """Parameters of the abstract out-of-order design (paper Sect. 3–4).

    Attributes:
        n_rob: number of instructions initially in the reorder buffer (N).
        issue_width: instructions fetched per cycle (k).
        retire_width: instructions retired per cycle (l); the paper assumes
            ``l == k`` throughout and so does the default.
        family: workload family name (see
            :mod:`repro.processor.families`): ``reg-reg`` (the paper's
            ALU-only design, the default), ``branch``, ``mem`` or
            ``mixed``.
    """

    n_rob: int
    issue_width: int
    retire_width: Optional[int] = None
    family: str = DEFAULT_FAMILY

    def __post_init__(self) -> None:
        if self.n_rob < 1:
            raise ValueError("the reorder buffer needs at least one entry")
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        if self.issue_width > self.n_rob:
            # Tables 1-4 mark these configurations with a dash.
            raise ValueError(
                "issue/retire width cannot exceed the reorder-buffer size"
            )
        if self.retire_width is None:
            object.__setattr__(self, "retire_width", self.issue_width)
        if self.retire_width < 1 or self.retire_width > self.n_rob:
            raise ValueError("retire width must be in [1, n_rob]")
        get_family(self.family)  # raises on unknown names

    @property
    def total_slots(self) -> int:
        """ROB latching capacity: N initial entries plus k fetch slots."""
        return self.n_rob + self.issue_width

    @property
    def family_spec(self) -> Family:
        """The resolved :class:`~repro.processor.families.Family`."""
        return get_family(self.family)

    def describe(self) -> str:
        text = (
            f"OOO processor: {self.n_rob}-entry ROB, "
            f"issue width {self.issue_width}, retire width {self.retire_width}"
        )
        if self.family != DEFAULT_FAMILY:
            text += f", family {self.family}"
        return text
