"""The abstraction function: flushing by completion functions.

Applying the abstraction function sets ``flush`` to true and activates the
computation slices one at a time in program order (paper Sect. 4).  An
activated slice whose ``ValidResult`` bit is true writes its ``Result`` to
the destination register; otherwise the result is computed instantaneously
by the ALU from operands read from the current Register File.  Writes
happen only for valid instructions.
"""

from __future__ import annotations

from typing import Optional

from ..eufm.ast import FALSE, TRUE, Term
from ..tlsim import Simulator
from .ooo import OooProcessor

__all__ = ["apply_abstraction", "flush_range"]


def flush_range(
    sim: Simulator, proc: OooProcessor, first_slot: int, last_slot: int
) -> None:
    """Activate slices ``first_slot..last_slot`` (1-based, inclusive)."""
    if not (1 <= first_slot <= last_slot <= proc.total_slots):
        raise ValueError(
            f"slot range {first_slot}..{last_slot} outside "
            f"1..{proc.total_slots}"
        )
    sim.set_input(proc.flush, TRUE)
    previous = None
    for slot in range(first_slot, last_slot + 1):
        if previous is not None:
            sim.set_input(proc.activate[previous - 1], FALSE)
        sim.set_input(proc.activate[slot - 1], TRUE)
        sim.step()
        previous = slot
    if previous is not None:
        sim.set_input(proc.activate[previous - 1], FALSE)
    sim.set_input(proc.flush, FALSE)


def apply_abstraction(sim: Simulator, proc: OooProcessor) -> Term:
    """Flush every slice in program order; return the final Register File.

    Callers that need the intermediate state between the initial entries
    and the fetch slots (the rewriting engine does) drive
    :func:`flush_range` twice and peek the Register File in between.
    """
    flush_range(sim, proc, 1, proc.total_slots)
    return sim.peek(proc.rf)
