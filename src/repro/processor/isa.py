"""The non-pipelined specification processor (the ISA).

User-visible state: the PC, the Register File and — in the memory
workload families — the Data Memory.  One step fetches the instruction
addressed by the PC from the read-only Instruction Memory, increments the
PC through the ``NextPC`` uninterpreted function, computes the
instruction's result, and writes it to the destination register when the
instruction's Valid bit is true (paper, end of Sect. 3).

The Instruction Memory is read-only and shared with the implementation, so
its fields are modeled as uninterpreted functions of the PC:
``InstrOp``, ``InstrDest``, ``InstrSrc1``, ``InstrSrc2`` and the
uninterpreted predicate ``InstrValid``.

Workload families (:mod:`repro.processor.families`) extend the ISA:

* *branch*: the uninterpreted predicate ``InstrIsBranch`` marks branches.
  A valid taken branch (outcome ``BranchTaken``, an uninterpreted
  predicate of the opcode and both operands) redirects the PC to the
  uninterpreted ``BranchTarget`` instead of the ``NextPC`` fall-through;
  branches write no register.
* *mem*: ``InstrIsLoad`` / ``InstrIsStore`` mark memory operations.  The
  effective address is ``MemAddr(op)`` — an uninterpreted function of the
  opcode field alone, i.e. the address is decoded from the instruction
  (immediate-style addressing), not computed from register operands.  A
  load writes ``read(DMem, addr)`` to its destination register; a store
  writes its second operand to ``write(DMem, addr, ·)`` and no register.

Kind predicates are prioritized (branch beats load beats store;
otherwise the instruction is a register–register ALU op), so the kinds
are mutually exclusive by construction and the ``reg-reg`` semantics is
the all-predicates-false special case of every family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..eufm import builder
from ..eufm.ast import FALSE, Formula, Term
from .families import Family, get_family

__all__ = [
    "ALU",
    "NEXT_PC",
    "INSTR_OP",
    "INSTR_DEST",
    "INSTR_SRC1",
    "INSTR_SRC2",
    "INSTR_VALID",
    "INSTR_IS_BRANCH",
    "INSTR_IS_LOAD",
    "INSTR_IS_STORE",
    "BRANCH_TAKEN",
    "BRANCH_TARGET",
    "MEM_ADDR",
    "SpecState",
    "spec_step",
    "spec_trajectory",
    "fetch_fields",
    "fetch_kinds",
    "kind_precedence",
    "writes_reg_file",
]

#: uninterpreted symbols shared by the specification and implementation.
ALU = "ALU"
NEXT_PC = "NextPC"
INSTR_OP = "InstrOp"
INSTR_DEST = "InstrDest"
INSTR_SRC1 = "InstrSrc1"
INSTR_SRC2 = "InstrSrc2"
INSTR_VALID = "InstrValid"
INSTR_IS_BRANCH = "InstrIsBranch"
INSTR_IS_LOAD = "InstrIsLoad"
INSTR_IS_STORE = "InstrIsStore"
BRANCH_TAKEN = "BranchTaken"
BRANCH_TARGET = "BranchTarget"
MEM_ADDR = "MemAddr"

_REG_REG = get_family("reg-reg")


@dataclass(frozen=True)
class SpecState:
    """The user-visible architectural state.

    ``dmem`` is ``None`` for families without a data memory, keeping the
    ``reg-reg`` state shape (and every formula built from it) identical to
    the seed model.
    """

    pc: Term
    reg_file: Term
    dmem: Optional[Term] = None


def fetch_fields(pc: Term) -> Tuple[Formula, Term, Term, Term, Term]:
    """Decode the instruction at ``pc``: (valid, op, dest, src1, src2)."""
    return (
        builder.up(INSTR_VALID, [pc]),
        builder.uf(INSTR_OP, [pc]),
        builder.uf(INSTR_DEST, [pc]),
        builder.uf(INSTR_SRC1, [pc]),
        builder.uf(INSTR_SRC2, [pc]),
    )


def kind_precedence(
    family: Family,
    is_branch_raw: Formula,
    is_load_raw: Formula,
    is_store_raw: Formula,
) -> Tuple[Formula, Formula, Formula]:
    """Mutually exclusive kind flags (branch, load, store) by precedence.

    Families without a capability pin the corresponding raw flag to
    ``FALSE`` before prioritization, so the flags — and everything built
    from them — collapse structurally to the smaller family's formulas.
    """
    isb = is_branch_raw if family.has_branches else FALSE
    if family.has_memory:
        not_isb = builder.not_(isb)
        isl = builder.and_(not_isb, is_load_raw)
        iss = builder.and_(not_isb, builder.not_(is_load_raw), is_store_raw)
    else:
        isl = FALSE
        iss = FALSE
    return isb, isl, iss


def fetch_kinds(
    pc: Term, family: Family
) -> Tuple[Formula, Formula, Formula]:
    """The prioritized kind flags of the instruction at ``pc``.

    The raw predicates are only applied for capabilities the family has:
    ``kind_precedence`` would discard the others anyway, and interning
    them would make the smaller families build nodes the seed model
    never did (the perf-smoke baseline counts every node).
    """
    isb_raw = (
        builder.up(INSTR_IS_BRANCH, [pc]) if family.has_branches else FALSE
    )
    if family.has_memory:
        isl_raw = builder.up(INSTR_IS_LOAD, [pc])
        iss_raw = builder.up(INSTR_IS_STORE, [pc])
    else:
        isl_raw = FALSE
        iss_raw = FALSE
    return kind_precedence(family, isb_raw, isl_raw, iss_raw)


def writes_reg_file(isb: Formula, iss: Formula) -> Formula:
    """Does an instruction with these kind flags write its Dest register?

    Branches and stores do not; loads and ALU instructions do.  For the
    ``reg-reg`` family both flags are ``FALSE`` and this collapses to
    ``TRUE``, keeping every seed-model context formula unchanged.
    """
    return builder.and_(builder.not_(isb), builder.not_(iss))


def spec_step(state: SpecState, family: Optional[Family] = None) -> SpecState:
    """Execute one architectural instruction symbolically."""
    family = family or _REG_REG
    valid, op, dest, src1, src2 = fetch_fields(state.pc)
    isb, isl, iss = fetch_kinds(state.pc, family)
    operand1 = builder.read(state.reg_file, src1)
    operand2 = builder.read(state.reg_file, src2)
    result = builder.uf(ALU, [op, operand1, operand2])

    data = result
    next_dmem = state.dmem
    if family.has_memory:
        if state.dmem is None:
            raise ValueError(
                f"family {family.name!r} needs a data memory in SpecState"
            )
        addr = builder.uf(MEM_ADDR, [op])
        data = builder.ite_term(isl, builder.read(state.dmem, addr), result)
        next_dmem = builder.ite_term(
            builder.and_(valid, iss),
            builder.write(state.dmem, addr, operand2),
            state.dmem,
        )

    next_rf = builder.ite_term(
        builder.and_(valid, writes_reg_file(isb, iss)),
        builder.write(state.reg_file, dest, data),
        state.reg_file,
    )

    next_pc = builder.uf(NEXT_PC, [state.pc])
    if family.has_branches:
        taken = builder.up(BRANCH_TAKEN, [op, operand1, operand2])
        target = builder.uf(BRANCH_TARGET, [op, operand1, operand2])
        next_pc = builder.ite_term(
            builder.and_(valid, isb, taken), target, next_pc
        )
    return SpecState(pc=next_pc, reg_file=next_rf, dmem=next_dmem)


def spec_trajectory(
    initial: SpecState, steps: int, family: Optional[Family] = None
) -> List[SpecState]:
    """States after 0, 1, .., ``steps`` architectural instructions."""
    states = [initial]
    for _ in range(steps):
        states.append(spec_step(states[-1], family))
    return states
