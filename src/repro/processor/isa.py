"""The non-pipelined specification processor (the ISA).

User-visible state: the PC and the Register File.  One step fetches the
instruction addressed by the PC from the read-only Instruction Memory,
increments the PC through the ``NextPC`` uninterpreted function, computes
the ALU result of the two source operands, and writes it to the
destination register when the instruction's Valid bit is true
(paper, end of Sect. 3).

The Instruction Memory is read-only and shared with the implementation, so
its fields are modeled as uninterpreted functions of the PC:
``InstrOp``, ``InstrDest``, ``InstrSrc1``, ``InstrSrc2`` and the
uninterpreted predicate ``InstrValid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..eufm import builder
from ..eufm.ast import Formula, Term

__all__ = [
    "ALU",
    "NEXT_PC",
    "INSTR_OP",
    "INSTR_DEST",
    "INSTR_SRC1",
    "INSTR_SRC2",
    "INSTR_VALID",
    "SpecState",
    "spec_step",
    "spec_trajectory",
    "fetch_fields",
]

#: uninterpreted symbols shared by the specification and implementation.
ALU = "ALU"
NEXT_PC = "NextPC"
INSTR_OP = "InstrOp"
INSTR_DEST = "InstrDest"
INSTR_SRC1 = "InstrSrc1"
INSTR_SRC2 = "InstrSrc2"
INSTR_VALID = "InstrValid"


@dataclass(frozen=True)
class SpecState:
    """The user-visible architectural state."""

    pc: Term
    reg_file: Term


def fetch_fields(pc: Term) -> Tuple[Formula, Term, Term, Term, Term]:
    """Decode the instruction at ``pc``: (valid, op, dest, src1, src2)."""
    return (
        builder.up(INSTR_VALID, [pc]),
        builder.uf(INSTR_OP, [pc]),
        builder.uf(INSTR_DEST, [pc]),
        builder.uf(INSTR_SRC1, [pc]),
        builder.uf(INSTR_SRC2, [pc]),
    )


def spec_step(state: SpecState) -> SpecState:
    """Execute one architectural instruction symbolically."""
    valid, op, dest, src1, src2 = fetch_fields(state.pc)
    operand1 = builder.read(state.reg_file, src1)
    operand2 = builder.read(state.reg_file, src2)
    result = builder.uf(ALU, [op, operand1, operand2])
    next_rf = builder.ite_term(
        valid, builder.write(state.reg_file, dest, result), state.reg_file
    )
    next_pc = builder.uf(NEXT_PC, [state.pc])
    return SpecState(pc=next_pc, reg_file=next_rf)


def spec_trajectory(initial: SpecState, steps: int) -> List[SpecState]:
    """States after 0, 1, .., ``steps`` architectural instructions."""
    states = [initial]
    for _ in range(steps):
        states.append(spec_step(states[-1]))
    return states
