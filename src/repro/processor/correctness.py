"""The Burch–Dill commutative diagram and the EUFM correctness formula.

Implementation side: one step of regular operation of the implementation,
followed by the abstraction function (flushing by completion functions).
Specification side: the abstraction function applied to the *initial*
implementation state, followed by 0..k steps of the specification.

The correctness criterion (paper Sect. 5) states that the user-visible
state — the PC, the Register File and, in the memory workload families,
the Data Memory — is updated in sync by 0, 1, ... or k instructions:

    OR_{m=0..k}  equal_PC,m  AND  equal_RegFile,m  [AND equal_DMem,m]

A stronger fetch-count case-split criterion is available as
``criterion="case_split"``: for each m, *if* exactly m instructions were
fetched *then* the m-instruction equalities must hold.  Both criteria are
valid for the register-register and memory families; for the *branch*
families only the disjunction is sound — a fetched instruction may be a
squashed wrong-path one (or a taken branch redirecting the PC away from
the fall-through chain), so "m instructions fetched" no longer implies
the m-step equality, and :func:`build_correctness_formula` rejects the
combination instead of producing a falsifiable formula for a correct
design.

In the branch families both the implementation-side and the
specification-side PC are observed *after* the abstraction function has
run: flushing completes the in-flight taken branches and redirects the PC
accordingly (for ``reg-reg`` flushing never touches the PC, so the
observation points coincide with the seed model's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..eufm import builder
from ..eufm.ast import FALSE, TRUE, Formula, Term, interned_count
from ..obs.tracer import current_tracer
from ..tlsim import Simulator
from .abstraction import flush_range
from .bugs import Bug
from .isa import SpecState, spec_trajectory
from .ooo import OooProcessor, build_ooo_processor, make_simulator
from .params import ProcessorConfig

__all__ = ["DiagramArtifacts", "build_correctness_formula", "run_diagram"]

CRITERIA = ("disjunction", "case_split")


@dataclass
class DiagramArtifacts:
    """Everything produced by symbolically simulating the diagram."""

    config: ProcessorConfig
    proc: OooProcessor
    #: implementation side: PC and Register File after one step of regular
    #: operation followed by the abstraction function.
    pc_impl: Term = None
    rf_impl: Term = None
    #: implementation-side Register File after the initial entries (slots
    #: 1..N) completed but before the fetch slots completed — the seam the
    #: rewriting engine replaces with a fresh variable.
    rf_impl_mid: Term = None
    #: implementation-side Data Memory states at the same two observation
    #: points (memory families; ``None`` otherwise).
    dmem_impl: Optional[Term] = None
    dmem_impl_mid: Optional[Term] = None
    #: specification side: states after the abstraction function and after
    #: each of 0..k specification steps.
    spec_states: List[SpecState] = field(default_factory=list)
    #: monotone fetch signals fetch_1 .. fetch_k as formulas.
    fetch_conditions: List[Formula] = field(default_factory=list)
    #: wall-clock seconds spent in symbolic simulation.
    simulate_seconds: float = 0.0

    @property
    def initial_pc(self) -> Term:
        return self.proc.initial_state[self.proc.pc]

    @property
    def initial_rf(self) -> Term:
        return self.proc.initial_state[self.proc.rf]

    @property
    def initial_dmem(self) -> Optional[Term]:
        if self.proc.dmem is None:
            return None
        return self.proc.initial_state[self.proc.dmem]


def run_diagram(
    config: ProcessorConfig, bug: Optional[Bug] = None
) -> DiagramArtifacts:
    """Symbolically simulate both sides of the commutative diagram.

    Recorded as a ``"simulate"`` span on the ambient tracer, carrying the
    TLSim work counters (cycles, component evaluations, nodes built).
    """
    start = time.perf_counter()
    with current_tracer().span("simulate") as span:
        nodes_before = interned_count()
        proc = build_ooo_processor(config, bug=bug)
        artifacts = DiagramArtifacts(config=config, proc=proc)

        n = config.n_rob
        k = config.issue_width
        family = config.family_spec
        has_mem = family.has_memory

        # Implementation side: one regular step, then flush in program order.
        impl_sim = make_simulator(proc)
        impl_sim.step()
        flush_range(impl_sim, proc, 1, n)
        artifacts.rf_impl_mid = impl_sim.peek(proc.rf)
        if has_mem:
            artifacts.dmem_impl_mid = impl_sim.peek(proc.dmem)
        flush_range(impl_sim, proc, n + 1, n + k)
        # The PC is observed after the abstraction function: for branch
        # families flushing redirects it past in-flight taken branches
        # (a no-op for the other families, where the peeks coincide with
        # the seed model's post-step observation).
        artifacts.pc_impl = impl_sim.peek(proc.pc)
        artifacts.rf_impl = impl_sim.peek(proc.rf)
        if has_mem:
            artifacts.dmem_impl = impl_sim.peek(proc.dmem)

        # Specification side: flush the initial state, then run the ISA.
        spec_sim = make_simulator(proc)
        flush_range(spec_sim, proc, 1, n + k)
        spec0 = SpecState(
            pc=spec_sim.peek(proc.pc),
            reg_file=spec_sim.peek(proc.rf),
            dmem=spec_sim.peek(proc.dmem) if has_mem else None,
        )
        artifacts.spec_states = spec_trajectory(spec0, k, family)

        nd_fetch = [builder.bvar(f"NDFetch{j + 1}") for j in range(k)]
        artifacts.fetch_conditions = [
            builder.and_(*nd_fetch[: j + 1]) for j in range(k)
        ]

        impl_sim.publish_counters()
        spec_sim.publish_counters()
        span.add("tlsim.nodes_built", interned_count() - nodes_before)

    artifacts.simulate_seconds = time.perf_counter() - start
    return artifacts


def build_correctness_formula(
    artifacts: DiagramArtifacts, criterion: str = "disjunction"
) -> Formula:
    """The EUFM correctness formula for the simulated diagram."""
    if criterion not in CRITERIA:
        raise ValueError(f"unknown criterion {criterion!r}; use one of {CRITERIA}")
    family = artifacts.config.family_spec
    if criterion == "case_split" and family.has_branches:
        raise ValueError(
            "the case_split criterion is unsound for branch families: a "
            "fetched instruction may be wrong-path (or a taken branch), so "
            "fetch counts do not determine the specification step count; "
            "use criterion='disjunction'"
        )
    k = artifacts.config.issue_width
    conjuncts = []
    for m, spec_state in enumerate(artifacts.spec_states):
        equal_pc = builder.eq(artifacts.pc_impl, spec_state.pc)
        equal_rf = builder.eq(artifacts.rf_impl, spec_state.reg_file)
        parts = [equal_pc, equal_rf]
        if family.has_memory:
            parts.append(builder.eq(artifacts.dmem_impl, spec_state.dmem))
        conjuncts.append(builder.and_(*parts))

    if criterion == "disjunction":
        return builder.or_(*conjuncts)

    fetch = artifacts.fetch_conditions
    cases = []
    for m in range(k + 1):
        fetched_at_least_m = TRUE if m == 0 else fetch[m - 1]
        fetched_more = fetch[m] if m < k else FALSE
        exactly_m = builder.and_(fetched_at_least_m, builder.not_(fetched_more))
        cases.append(builder.implies(exactly_m, conjuncts[m]))
    return builder.and_(*cases)
