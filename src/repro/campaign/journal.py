"""Crash-safe append-only JSONL journal for campaign progress.

Every record is one line::

    {"crc": 2774120735, "data": {"event": "finish", ...}}

where ``crc`` is the CRC-32 of the canonical JSON serialization of
``data``.  Appends are flushed and fsync'ed, so after a crash the journal
contains every completed record plus at most one torn line at the tail.
The loader therefore tolerates exactly the corruption a crash can
produce — a truncated or garbled *final* line — silently, and skips (but
counts) corrupt lines elsewhere; ``strict=True`` turns mid-file
corruption into a :class:`~repro.errors.JournalError` instead.

Event vocabulary written by the runner:

* ``enqueue`` — the job spec, journaled once so a campaign can resume
  from the journal alone;
* ``start`` — one attempt began (job id, attempt number, method, budget);
* ``attempt_failed`` — the attempt ended without a verdict (budget
  exhausted, injected fault, a worker process that died mid-job —
  error ``WorkerCrashed``, ...), and why;
* ``finish`` — the job reached a terminal state; the full
  :class:`~repro.campaign.jobs.JobResult` payload;
* ``callback_error`` — the user's ``on_result`` callback raised; the
  exception was contained and the campaign continued.

A job with a ``start`` but no ``finish`` was in flight when the process
died and is re-run on resume; a job with a ``finish`` is never re-run.

The journal has exactly one writer.  In parallel campaigns
(``CampaignRunner(..., workers=N)``) the worker processes stream their
would-be records to the parent over a result queue and the parent alone
appends them, so records of concurrent jobs interleave but every per-job
subsequence reads exactly like a sequential run's.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import JournalError

__all__ = ["Journal", "JournalReplay", "JournalTailer"]


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


class Journal:
    """Append-only writer; see the module docstring for the format."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def append(self, data: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync)."""
        payload = _canonical(data)
        line = json.dumps({"crc": _checksum(payload), "data": data},
                          sort_keys=True)
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- fault-injection seam -------------------------------------------

    def corrupt_tail(self, nbytes: int = 24) -> None:
        """Overwrite the last ``nbytes`` with garbage (simulates a torn
        write at crash time; used by the fault harness and tests)."""
        self._file.flush()
        with open(self.path, "r+b") as raw:
            raw.seek(0, os.SEEK_END)
            size = raw.tell()
            raw.seek(max(0, size - nbytes))
            raw.write(b"\x00garbage\x00" * (nbytes // 9 + 1))
            raw.truncate(size)

    # -- loading ---------------------------------------------------------

    @staticmethod
    def load(path: str, strict: bool = False) -> "JournalReplay":
        """Replay a journal, tolerating crash-shaped corruption."""
        records: List[Dict[str, Any]] = []
        corrupt: List[Tuple[int, str]] = []
        if not os.path.exists(path):
            return JournalReplay(records=records, corrupt_lines=0,
                                 torn_tail=False)
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().splitlines()
        last_content = -1
        for index, line in enumerate(lines):
            if line.strip():
                last_content = index
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            data = _decode_line(line)
            if data is None:
                corrupt.append((index + 1, line[:80]))
                continue
            records.append(data)
        torn_tail = bool(corrupt) and corrupt[-1][0] == last_content + 1
        mid_file = corrupt[:-1] if torn_tail else corrupt
        if strict and mid_file:
            lineno, snippet = mid_file[0]
            raise JournalError(
                f"{path}:{lineno}: corrupt journal record {snippet!r}"
            )
        return JournalReplay(
            records=records,
            corrupt_lines=len(mid_file),
            torn_tail=torn_tail,
        )


def _decode_line(line: str) -> Optional[Dict[str, Any]]:
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if not isinstance(wrapper, dict) or "data" not in wrapper:
        return None
    data = wrapper["data"]
    if not isinstance(data, dict):
        return None
    if wrapper.get("crc") != _checksum(_canonical(data)):
        return None
    return data


class JournalReplay:
    """Parsed journal contents plus derived campaign state."""

    def __init__(self, records: List[Dict[str, Any]], corrupt_lines: int,
                 torn_tail: bool) -> None:
        self.records = records
        #: mid-file corrupt lines that were skipped (not the torn tail).
        self.corrupt_lines = corrupt_lines
        #: True when the final line was torn (the crash signature).
        self.torn_tail = torn_tail

    def events(self, kind: str) -> Iterator[Dict[str, Any]]:
        return (rec for rec in self.records if rec.get("event") == kind)

    def job_specs(self) -> Dict[str, Dict[str, Any]]:
        """Job specs journaled by ``enqueue`` events, in order."""
        specs: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("enqueue"):
            job = rec.get("job", {})
            if "job_id" in job:
                specs.setdefault(job["job_id"], job)
        return specs

    def finished(self) -> Dict[str, Dict[str, Any]]:
        """Terminal results by job id (later records win)."""
        done: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("finish"):
            if "job_id" in rec:
                done[rec["job_id"]] = rec
        return done

    def failed_attempts(self) -> Dict[Tuple[str, str], int]:
        """Count of recorded failed attempts per (job_id, method).

        Resume semantics: an attempt with a ``start`` but neither
        ``attempt_failed`` nor ``finish`` was in flight at the crash and
        is *re-run* with the same escalated budget, so only explicitly
        failed attempts advance the escalation schedule.
        """
        counts: Dict[Tuple[str, str], int] = {}
        for rec in self.events("attempt_failed"):
            key = (rec.get("job_id", ""), rec.get("method", ""))
            counts[key] = counts.get(key, 0) + 1
        return counts

    def callback_errors(self) -> List[Dict[str, Any]]:
        """``callback_error`` records, in journal order."""
        return list(self.events("callback_error"))

    def in_flight(self) -> Dict[str, Dict[str, Any]]:
        """Jobs that started but never reached a terminal state."""
        finished = self.finished()
        open_jobs: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("start"):
            job_id = rec.get("job_id")
            if job_id and job_id not in finished:
                open_jobs[job_id] = rec
        return open_jobs


class JournalTailer:
    """Incremental journal reader safe to run *while the writer appends*.

    :meth:`Journal.load` is replay-time machinery: it reads the whole
    file once, after the writer is gone, and classifies a bad final line
    as the crash's torn tail.  A live reader has a harder problem — the
    single writer appends ``line + "\\n"`` and then flushes, so a reader
    polling mid-append can observe a *prefix* of the final line (no
    newline yet, or a newline-terminated line whose CRC does not check
    out on a filesystem that exposes partial writes).  That torn tail is
    transient: the very next poll (after the writer's flush completes)
    sees the full line.

    The tailer therefore never consumes the tail until it is provably
    complete:

    * only newline-terminated lines are even considered — a trailing
      fragment stays in the file (the offset does not advance past it);
    * a *final* newline-terminated line that fails CRC/decode is held
      back too, and re-read on the next poll, because it may still be
      mid-flush; it is surfaced only once a *later* line supersedes it
      (at which point it is genuine corruption, counted in
      :attr:`corrupt_lines` like replay does);
    * mid-file garbage (a previous crash's torn tail that the writer has
      since appended past) is skipped and counted, never returned.

    Use one tailer per reader; it keeps a private byte offset.  Polling
    is cheap (one ``seek`` + incremental read), so status endpoints can
    poll at sub-second intervals.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._offset = 0
        #: decoded-and-rejected lines that were superseded by later
        #: records (mid-file corruption; never the live tail).
        self.corrupt_lines = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Every record durably appended since the last poll.

        Returns an empty list when the journal does not exist yet, has
        not grown, or has grown only by an incomplete tail.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        # Consume only up to the last newline: anything after it is a
        # fragment the writer is still flushing.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        raw_lines = chunk[: cut + 1].split(b"\n")[:-1]
        records: List[Dict[str, Any]] = []
        consumed = 0       # bytes of validated territory to advance past
        held_bytes = 0     # bytes of trailing bad lines held back
        pending_bad = 0    # bad lines not yet superseded by a later one
        for raw in raw_lines:
            nbytes = len(raw) + 1
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                consumed += held_bytes + nbytes
                self.corrupt_lines += pending_bad
                held_bytes = pending_bad = 0
                continue
            data = _decode_line(line)
            if data is None:
                # Maybe mid-flush: hold back unless a later line exists.
                pending_bad += 1
                held_bytes += nbytes
                continue
            self.corrupt_lines += pending_bad
            pending_bad = 0
            records.append(data)
            consumed += held_bytes + nbytes
            held_bytes = 0
        # The offset advances only past fully-validated territory; held
        # back bad tail lines are re-read (and re-validated) next poll.
        self._offset += consumed
        return records
