"""Crash-safe append-only JSONL journal for campaign progress.

Every record is one line::

    {"crc": 2774120735, "data": {"event": "finish", ...}}

where ``crc`` is the CRC-32 of the canonical JSON serialization of
``data``.  Appends are flushed and fsync'ed, so after a crash the journal
contains every completed record plus at most one torn line at the tail.
The loader therefore tolerates exactly the corruption a crash can
produce — a truncated or garbled *final* line — silently, and skips (but
counts) corrupt lines elsewhere; ``strict=True`` turns mid-file
corruption into a :class:`~repro.errors.JournalError` instead.

Event vocabulary written by the runner:

* ``enqueue`` — the job spec, journaled once so a campaign can resume
  from the journal alone;
* ``start`` — one attempt began (job id, attempt number, method, budget);
* ``attempt_failed`` — the attempt ended without a verdict (budget
  exhausted, injected fault, a worker process that died mid-job —
  error ``WorkerCrashed``, ...), and why;
* ``finish`` — the job reached a terminal state; the full
  :class:`~repro.campaign.jobs.JobResult` payload;
* ``callback_error`` — the user's ``on_result`` callback raised; the
  exception was contained and the campaign continued.

A job with a ``start`` but no ``finish`` was in flight when the process
died and is re-run on resume; a job with a ``finish`` is never re-run.

The journal has exactly one writer.  In parallel campaigns
(``CampaignRunner(..., workers=N)``) the worker processes stream their
would-be records to the parent over a result queue and the parent alone
appends them, so records of concurrent jobs interleave but every per-job
subsequence reads exactly like a sequential run's.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import JournalError

__all__ = ["Journal", "JournalReplay"]


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


class Journal:
    """Append-only writer; see the module docstring for the format."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def append(self, data: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync)."""
        payload = _canonical(data)
        line = json.dumps({"crc": _checksum(payload), "data": data},
                          sort_keys=True)
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- fault-injection seam -------------------------------------------

    def corrupt_tail(self, nbytes: int = 24) -> None:
        """Overwrite the last ``nbytes`` with garbage (simulates a torn
        write at crash time; used by the fault harness and tests)."""
        self._file.flush()
        with open(self.path, "r+b") as raw:
            raw.seek(0, os.SEEK_END)
            size = raw.tell()
            raw.seek(max(0, size - nbytes))
            raw.write(b"\x00garbage\x00" * (nbytes // 9 + 1))
            raw.truncate(size)

    # -- loading ---------------------------------------------------------

    @staticmethod
    def load(path: str, strict: bool = False) -> "JournalReplay":
        """Replay a journal, tolerating crash-shaped corruption."""
        records: List[Dict[str, Any]] = []
        corrupt: List[Tuple[int, str]] = []
        if not os.path.exists(path):
            return JournalReplay(records=records, corrupt_lines=0,
                                 torn_tail=False)
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().splitlines()
        last_content = -1
        for index, line in enumerate(lines):
            if line.strip():
                last_content = index
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            data = _decode_line(line)
            if data is None:
                corrupt.append((index + 1, line[:80]))
                continue
            records.append(data)
        torn_tail = bool(corrupt) and corrupt[-1][0] == last_content + 1
        mid_file = corrupt[:-1] if torn_tail else corrupt
        if strict and mid_file:
            lineno, snippet = mid_file[0]
            raise JournalError(
                f"{path}:{lineno}: corrupt journal record {snippet!r}"
            )
        return JournalReplay(
            records=records,
            corrupt_lines=len(mid_file),
            torn_tail=torn_tail,
        )


def _decode_line(line: str) -> Optional[Dict[str, Any]]:
    try:
        wrapper = json.loads(line)
    except ValueError:
        return None
    if not isinstance(wrapper, dict) or "data" not in wrapper:
        return None
    data = wrapper["data"]
    if not isinstance(data, dict):
        return None
    if wrapper.get("crc") != _checksum(_canonical(data)):
        return None
    return data


class JournalReplay:
    """Parsed journal contents plus derived campaign state."""

    def __init__(self, records: List[Dict[str, Any]], corrupt_lines: int,
                 torn_tail: bool) -> None:
        self.records = records
        #: mid-file corrupt lines that were skipped (not the torn tail).
        self.corrupt_lines = corrupt_lines
        #: True when the final line was torn (the crash signature).
        self.torn_tail = torn_tail

    def events(self, kind: str) -> Iterator[Dict[str, Any]]:
        return (rec for rec in self.records if rec.get("event") == kind)

    def job_specs(self) -> Dict[str, Dict[str, Any]]:
        """Job specs journaled by ``enqueue`` events, in order."""
        specs: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("enqueue"):
            job = rec.get("job", {})
            if "job_id" in job:
                specs.setdefault(job["job_id"], job)
        return specs

    def finished(self) -> Dict[str, Dict[str, Any]]:
        """Terminal results by job id (later records win)."""
        done: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("finish"):
            if "job_id" in rec:
                done[rec["job_id"]] = rec
        return done

    def failed_attempts(self) -> Dict[Tuple[str, str], int]:
        """Count of recorded failed attempts per (job_id, method).

        Resume semantics: an attempt with a ``start`` but neither
        ``attempt_failed`` nor ``finish`` was in flight at the crash and
        is *re-run* with the same escalated budget, so only explicitly
        failed attempts advance the escalation schedule.
        """
        counts: Dict[Tuple[str, str], int] = {}
        for rec in self.events("attempt_failed"):
            key = (rec.get("job_id", ""), rec.get("method", ""))
            counts[key] = counts.get(key, 0) + 1
        return counts

    def callback_errors(self) -> List[Dict[str, Any]]:
        """``callback_error`` records, in journal order."""
        return list(self.events("callback_error"))

    def in_flight(self) -> Dict[str, Dict[str, Any]]:
        """Jobs that started but never reached a terminal state."""
        finished = self.finished()
        open_jobs: Dict[str, Dict[str, Any]] = {}
        for rec in self.events("start"):
            job_id = rec.get("job_id")
            if job_id and job_id not in finished:
                open_jobs[job_id] = rec
        return open_jobs
