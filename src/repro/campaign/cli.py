"""``python -m repro campaign`` — run or resume a verification campaign.

Job sources (combine freely; at least one is required unless resuming):

* ``--spec jobs.json`` — a JSON list of job dicts
  (see :meth:`repro.campaign.jobs.Job.to_dict`);
* ``--grid "8x2,16x4"`` — generate one job per ``NxK`` configuration
  using the shared ``--method``/``--criterion``/``--bug`` options;
* neither — resume the jobs recorded in the journal.

The journal (``--journal``) makes the campaign crash-safe: re-running the
same command after an interruption re-runs only unfinished jobs.  Exit
status: 0 when every job is ``PROVED``, 1 when any job is ``BUG_FOUND``,
4 when any job is ``INCONCLUSIVE``, 2 on a campaign setup error.

``--workers N`` fans jobs out to N worker processes; the parent stays
the single journal writer, so resume semantics are identical to a
sequential run.  ``--inject KIND@JOB_ID[:ATTEMPT]`` plants a
deterministic fault (for smoke-testing the recovery paths, e.g. in CI).

Examples::

    python -m repro campaign --journal camp.jsonl --grid 4x2,8x2,8x4
    python -m repro campaign --journal camp.jsonl --spec jobs.json \
        --max-attempts 4 --escalation 2.0
    python -m repro campaign --journal camp.jsonl --grid 8x2 --workers 4
    python -m repro campaign --journal camp.jsonl        # resume
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..errors import CampaignError, JournalError, SolverError
from ..processor.bugs import BugKind
from ..processor.families import family_names
from .faults import Fault, FaultPlan
from .jobs import Job
from .runner import CampaignRunner, DegradePolicy, RetryPolicy

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Run a batch of verification jobs with retries, budget "
            "escalation, graceful degradation and a crash-safe journal."
        ),
    )
    parser.add_argument(
        "--journal",
        required=True,
        metavar="PATH",
        help="JSONL journal; existing journals are resumed, not re-run",
    )
    parser.add_argument(
        "--spec",
        metavar="FILE",
        help="JSON file holding a list of job dicts",
    )
    parser.add_argument(
        "--grid",
        metavar="N1xK1,N2xK2,...",
        help="generate jobs for the given ROB-size x issue-width configs",
    )
    parser.add_argument(
        "--method",
        choices=("rewriting", "positive_equality"),
        default="rewriting",
        help="method for --grid jobs (default: rewriting)",
    )
    parser.add_argument(
        "--criterion",
        choices=("disjunction", "case_split"),
        default="disjunction",
        help="correctness criterion for --grid jobs",
    )
    parser.add_argument(
        "--family",
        choices=family_names(),
        default="reg-reg",
        help="workload family for --grid jobs (default: reg-reg)",
    )
    parser.add_argument(
        "--bug",
        choices=BugKind.ALL,
        default=None,
        help="plant this defect in every --grid job",
    )
    parser.add_argument(
        "--entry", type=int, default=1, help="ROB entry for --bug"
    )
    parser.add_argument(
        "--max-conflicts",
        type=int,
        default=None,
        metavar="N",
        help="base per-attempt conflict budget (escalated on retries)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="base per-attempt wall-clock budget (escalated on retries)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="base per-attempt pipeline-wide deadline in seconds, "
        "enforced at every stage and escalated on retries "
        "(unlike --max-seconds, which only the SAT solver honors)",
    )
    parser.add_argument(
        "--max-memory",
        type=float,
        default=None,
        metavar="MB",
        help="base per-attempt memory budget in MiB (escalated on "
        "retries); exhaustion is retried like the paper's 4 GB kills",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="A",
        help="attempts per method before degrading (default 3)",
    )
    parser.add_argument(
        "--escalation",
        type=float,
        default=2.0,
        metavar="F",
        help="budget multiplier between attempts (default 2.0)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="record INCONCLUSIVE instead of falling back to "
        "positive_equality when rewriting exhausts its retries",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing journal and start over",
    )
    parser.add_argument(
        "--strict-journal",
        action="store_true",
        help="fail on mid-file journal corruption instead of skipping it",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the soundness analyzers on every job and record their "
        "findings in the journal",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="certify every verdict (DRUP proof check / counterexample "
        "replay) and record the witness digest in the journal",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan jobs out to N worker processes (default: the machine's "
        "CPU count — more buys nothing for this CPU-bound workload and "
        "journals an oversubscription warning); the parent remains the "
        "single journal writer",
    )
    parser.add_argument(
        "--sat-backend",
        default=None,
        metavar="NAME",
        help="SAT backend for every verification: reference (in-tree "
        "CDCL, default), pysat, dimacs, or auto (first available); "
        "verdicts are backend-independent by contract",
    )
    parser.add_argument(
        "--no-incremental-sat",
        action="store_true",
        help="solve every CNF cold instead of resuming same-digest SAT "
        "sessions (learned clauses, activities) across jobs and retries",
    )
    parser.add_argument(
        "--breaker",
        type=int,
        default=None,
        metavar="K",
        help="open a per-config-group circuit (same method/criterion/"
        "width/workload family) after K consecutive INCONCLUSIVE "
        "results; the group's remaining jobs short-circuit instead of "
        "burning their budgets (default: off)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="with --workers: kill workers silent for S seconds and "
        "re-queue their job as a WorkerHung failed attempt (default 30)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="with --workers: seconds between worker heartbeats "
        "(default 1.0; keep well under --hang-timeout)",
    )
    parser.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="KIND[:ARG[:ARG]]@JOB_ID[:ATTEMPT|*]",
        help="plant a deterministic fault (repeatable), e.g. "
        "solver-timeout@rw-N4-k2:1, hang@rw-N3-k1:* (every attempt), "
        "memory-bloat:64@rw-N4-k2, slow:sat:0.5@rw-N4-k2; "
        "see repro.campaign.faults for kinds",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    return parser


def _parse_grid(grid: str) -> List[tuple]:
    configs = []
    for chunk in grid.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            n_text, k_text = chunk.lower().split("x", 1)
            configs.append((int(n_text), int(k_text)))
        except ValueError:
            raise CampaignError(
                f"bad --grid entry {chunk!r}; expected the form NxK (e.g. 8x2)"
            )
    if not configs:
        raise CampaignError("--grid names no configurations")
    return configs


def _collect_jobs(args: argparse.Namespace) -> Optional[List[Job]]:
    jobs: List[Job] = []
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, list):
            raise CampaignError(
                f"{args.spec}: expected a JSON list of job dicts"
            )
        jobs.extend(Job.from_dict(item) for item in payload)
    if args.grid:
        for n_rob, width in _parse_grid(args.grid):
            jobs.append(
                Job.build(
                    n_rob,
                    width,
                    family=args.family,
                    method=args.method,
                    criterion=args.criterion,
                    bug_kind=args.bug,
                    bug_entry=args.entry,
                    max_conflicts=args.max_conflicts,
                    max_seconds=args.max_seconds,
                    max_wall_seconds=args.deadline,
                    max_memory_mb=args.max_memory,
                )
            )
    return jobs or None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = (lambda message: None) if args.quiet else print
    try:
        jobs = _collect_jobs(args)
        if args.fresh and os.path.exists(args.journal):
            os.remove(args.journal)
        fault_plan = None
        if args.inject:
            fault_plan = FaultPlan(Fault.parse(text) for text in args.inject)
        runner = CampaignRunner(
            args.journal,
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                escalation=args.escalation,
                base_conflicts=args.max_conflicts
                if args.max_conflicts is not None
                else RetryPolicy.base_conflicts,
                base_seconds=args.max_seconds,
                base_wall_seconds=args.deadline,
                base_memory_mb=args.max_memory,
            ),
            degrade=DegradePolicy(
                fallback_method=None if args.no_degrade else "positive_equality"
            ),
            fault_plan=fault_plan,
            log=log,
            strict_journal=args.strict_journal,
            analyze=args.analyze,
            certify=args.certify,
            workers=args.workers
            if args.workers is not None
            else (os.cpu_count() or 1),
            breaker_threshold=args.breaker,
            hang_timeout=args.hang_timeout,
            heartbeat_interval=args.heartbeat_interval,
            sat_backend=args.sat_backend,
            incremental_sat=not args.no_incremental_sat,
        )
        report = runner.run(jobs)
    except (CampaignError, JournalError, SolverError, OSError) as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.summary())
    return report.exit_code()
