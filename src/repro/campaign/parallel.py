"""Process-parallel campaign execution with a single-writer journal.

Topology: the parent process owns the journal and a pool of
:mod:`multiprocessing` workers.  Each worker runs whole jobs (the full
retry/degrade loop of :class:`~repro.campaign.executor.JobExecutor`) and
streams the records the sequential runner would journal — ``start``,
``attempt_failed``, finally ``done`` with the serialized
:class:`~repro.campaign.jobs.JobResult` — over one shared result queue.
Only the parent ever appends to the journal, so crash-resume, torn-tail
tolerance, and replay semantics are byte-for-byte those of a sequential
run; the records of concurrent jobs merely interleave, which the replay
logic (keyed by job id) never cared about.

Durability: the result queue is a ``SimpleQueue``, whose ``put`` writes
synchronously to the pipe under a lock — no feeder thread, so every event
a worker emitted before dying is readable by the parent.  A worker that
dies mid-job (an :class:`~repro.campaign.faults.InjectedCrash`, a
segfault, an OOM kill) is detected by process liveness; the parent
journals the in-flight attempt as ``attempt_failed`` with error
``WorkerCrashed``, re-queues the job — whose escalation schedule resumes
from the journaled failure counts, exactly like a campaign-level resume —
and spawns a replacement worker.  A job that crashes its worker on every
attempt therefore converges to ``INCONCLUSIVE`` instead of looping.

Liveness: a crashed worker is visible to process polling, but a *wedged*
one — livelocked in a C extension, swapping, deadlocked — stays alive and
silent forever.  Every worker therefore installs an ambient heartbeat
:class:`~repro.guard.Deadline` around each job: the pipeline's own
deadline check sites double as heartbeat emitters, streaming throttled
``heartbeat`` events (never journaled) over the result queue.  A busy
worker silent for ``hang_timeout`` seconds is declared hung; the parent
drains the queue once more (a beat may be in flight), then escalates
``terminate()`` → ``kill()``, journals the in-flight attempt as
``attempt_failed`` with error ``WorkerHung``, re-queues the job, and
spawns a replacement — so a permanently hanging job converges to
``INCONCLUSIVE`` through the same escalation schedule as a crashing one.

Each worker installs its own ambient :class:`~repro.obs.tracer.Tracer`
(the ``obs`` ContextVar is per-process state) and ships per-job wall/CPU
seconds back for parent-side merging into the campaign metrics registry.
Fault plans are partitioned deterministically by job id
(:meth:`FaultPlan.for_job`), so ``workers=N`` fires the same injected
faults as a sequential run of the same plan.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import CampaignError
from ..guard.breaker import CircuitBreaker
from .executor import JobExecutor
from .faults import Fault, FaultPlan, InjectedCrash
from .jobs import Job, JobResult
from .journal import Journal

__all__ = [
    "ParallelCampaignExecutor",
    "WORKER_CRASH_ERROR",
    "WORKER_HUNG_ERROR",
]

#: ``error`` value journaled for attempts whose worker process died.
WORKER_CRASH_ERROR = "WorkerCrashed"

#: ``error`` value journaled for attempts whose worker went silent past
#: the hang timeout and had to be killed by the parent.
WORKER_HUNG_ERROR = "WorkerHung"

#: Exit status a worker uses to simulate process death on InjectedCrash
#: (os._exit: no cleanup, no queue flushing — as close to kill -9 as a
#: Python exception can get).
_CRASH_EXIT_CODE = 70


def _campaign_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (cheap, inherits verify_fn closures);
    spawn otherwise — worker task messages are picklable either way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_main(
    worker_id: int, inbox: Any, outbox: Any, options: Dict[str, Any]
) -> None:
    """Worker entry: install per-process ambients, then pull job tasks."""
    from contextlib import ExitStack

    from ..sat.backend import resolve_backend, use_backend
    from ..sat.incremental import SessionPool, use_session_pool

    verify_fn = options.get("verify_fn")
    if verify_fn is None:
        from ..core.verifier import verify as verify_fn

    with ExitStack() as ambient:
        # Backend selection and the incremental session pool are
        # per-process state, installed once OUTSIDE the task loop: the
        # pool only pays off if it survives from one job to the next.
        backend_name = options.get("sat_backend")
        if backend_name is not None:
            ambient.enter_context(
                use_backend(resolve_backend(backend_name))
            )
        if options.get("incremental_sat", True):
            ambient.enter_context(use_session_pool(SessionPool()))
        _worker_loop(worker_id, inbox, outbox, options, verify_fn)


def _worker_loop(
    worker_id: int,
    inbox: Any,
    outbox: Any,
    options: Dict[str, Any],
    verify_fn: Callable,
) -> None:
    """Pull job tasks until the ``None`` shutdown sentinel."""
    from ..guard.deadline import Deadline, use_deadline
    from ..obs.tracer import Tracer, use_tracer

    while True:
        task = inbox.get()
        if task is None:
            return
        job = Job.from_dict(task["job"])
        faults = [Fault.from_dict(spec) for spec in task["faults"]]
        failed_attempts = {
            (job.job_id, method): count
            for method, count in task["failed_attempts"].items()
        }
        executor = JobExecutor(
            verify_fn,
            options["retry"],
            options["degrade"],
            fault_plan=FaultPlan(faults) if faults else None,
            analyze=options["analyze"],
            certify=options.get("certify", False),
            log=lambda text: outbox.put({"event": "log", "text": text}),
            # Workers never hold the journal: the single-writer invariant.
            fault_journal=None,
        )
        # A fresh ambient tracer per process: the obs ContextVar is
        # per-process state, so worker spans never mix with the parent's.
        tracer = Tracer()
        # The heartbeat deadline (no budgets of its own): every deadline
        # check site anywhere in the pipeline now doubles as a liveness
        # beat to the parent, throttled to one per heartbeat_interval.
        # Attempt-scoped supervision budgets derive from it in the
        # executor, inheriting the sink — a supervised attempt needs no
        # extra wiring to stay observable.
        heartbeat = Deadline(
            heartbeat=lambda stage: outbox.put({
                "event": "heartbeat",
                "worker": worker_id,
                "job_id": job.job_id,
                "stage": stage,
            }),
            heartbeat_interval=options.get("heartbeat_interval", 1.0),
        )
        try:
            with use_deadline(heartbeat), use_tracer(tracer):
                with tracer.span("campaign.job"):
                    result = executor.run_job(job, outbox.put, failed_attempts)
        except InjectedCrash:
            os._exit(_CRASH_EXIT_CODE)
        result.worker = worker_id
        span = tracer.root
        outbox.put({
            "event": "done",
            "job_id": job.job_id,
            "result": result.to_dict(),
            "worker_metrics": {
                "campaign.jobs_run": 1.0,
                "campaign.job_seconds": span.wall_seconds,
                "campaign.job_cpu_seconds": span.cpu_seconds,
            },
        })


def _escalate_stop(process, grace: float = 1.0) -> str:
    """Stop a worker process: ``terminate()``, then ``kill()`` if it
    survives the grace period (a wedged worker can ignore SIGTERM —
    blocked in uninterruptible I/O, or swapping too hard to schedule).
    Returns how the process actually died: ``"terminated"`` or
    ``"killed"``."""
    process.terminate()
    process.join(timeout=grace)
    if not process.is_alive():
        return "terminated"
    process.kill()
    process.join(timeout=5.0)
    return "killed"


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("worker_id", "process", "inbox", "job", "last_beat")

    def __init__(self, worker_id: int, process, inbox) -> None:
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        self.job: Optional[Job] = None
        #: monotonic time of the last sign of life (any queue message or
        #: a job assignment); the hang detector measures silence from it.
        self.last_beat = time.monotonic()


class ParallelCampaignExecutor:
    """Fans jobs out to worker processes; the parent is the sole journal
    writer.  See the module docstring for the protocol."""

    def __init__(
        self,
        *,
        workers: int,
        retry,
        degrade,
        analyze: bool,
        verify_fn: Optional[Callable],
        certify: bool = False,
        fault_plan: Optional[FaultPlan],
        journal: Journal,
        log: Callable[[str], None],
        failed_attempts: Dict[Tuple[str, str], int],
        on_finish: Callable[[Job, JobResult], None],
        merge_metrics: Callable[[Dict[str, float]], None],
        breaker: Optional[CircuitBreaker] = None,
        short_circuit: Optional[Callable[[Job], JobResult]] = None,
        hang_timeout: float = 30.0,
        heartbeat_interval: float = 1.0,
        sat_backend: Optional[str] = None,
        incremental_sat: bool = True,
    ) -> None:
        if workers < 1:
            raise CampaignError("workers must be at least 1")
        if hang_timeout <= heartbeat_interval:
            raise CampaignError(
                "hang_timeout must exceed heartbeat_interval, or every "
                "healthy worker reads as hung between beats"
            )
        self.workers = workers
        self._options = {
            "retry": retry,
            "degrade": degrade,
            "analyze": analyze,
            "certify": certify,
            "verify_fn": verify_fn,
            "heartbeat_interval": heartbeat_interval,
            "sat_backend": sat_backend,
            "incremental_sat": incremental_sat,
        }
        self._fault_plan = fault_plan
        self._journal = journal
        self._log = log
        self._failed = failed_attempts
        self._on_finish = on_finish
        self._merge_metrics = merge_metrics
        self._breaker = breaker
        self._short_circuit = short_circuit
        self._hang_timeout = hang_timeout
        self._ctx = _campaign_context()
        #: worker processes that died mid-job (each journaled + retried).
        self.worker_crashes = 0
        #: worker processes the hang detector had to kill.
        self.worker_hangs = 0
        self._outbox = self._ctx.SimpleQueue()
        self._pool: List[_WorkerHandle] = []
        self._next_worker_id = 0
        #: (attempt, method) of the event-confirmed in-flight attempt.
        self._in_flight: Dict[str, Tuple[int, str]] = {}
        #: last method a job was seen starting (survives attempt_failed).
        self._last_method: Dict[str, str] = {}

    # -- lifecycle -------------------------------------------------------

    def run(self, jobs: List[Job]) -> None:
        """Run every job to a terminal state; returns when all finished."""
        self._pending = deque(jobs)
        self._jobs_by_id = {job.job_id: job for job in jobs}
        remaining = len(jobs)
        for _ in range(min(self.workers, remaining)):
            self._spawn_worker()
        try:
            while remaining > 0:
                remaining -= self._dispatch()
                if self._poll(0.2):
                    remaining -= self._handle(self._outbox.get())
                # Reap every iteration, not only on poll timeouts: steady
                # heartbeat traffic keeps the poll returning True, which
                # must not starve crash/hang detection.
                remaining -= self._reap_dead_workers()
                remaining -= self._reap_hung_workers()
        finally:
            self._shutdown()

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        inbox = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, self._outbox, self._options),
            name=f"campaign-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(worker_id, process, inbox)
        self._pool.append(handle)
        return handle

    def _shutdown(self) -> None:
        for handle in self._pool:
            if handle.process.is_alive():
                try:
                    handle.inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover - racing exit
                    pass
        for handle in self._pool:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                # A worker too wedged for the sentinel is likely too
                # wedged for SIGTERM; escalate to SIGKILL rather than
                # leak the process past campaign shutdown.
                how = _escalate_stop(handle.process)
                self._log(
                    f"worker {handle.worker_id}: ignored the shutdown "
                    f"sentinel; {how} (exit code "
                    f"{handle.process.exitcode})"
                )

    # -- scheduling ------------------------------------------------------

    def _dispatch(self) -> int:
        """Hand pending jobs to idle workers (one job per worker).

        Returns the number of jobs finished *without* running — pending
        jobs whose config family's circuit breaker opened are drained to
        short-circuit ``INCONCLUSIVE`` results here, before they can
        claim a worker.
        """
        finished = 0
        if self._breaker is not None and self._short_circuit is not None \
                and self._pending:
            kept: deque = deque()
            while self._pending:
                job = self._pending.popleft()
                if self._breaker.is_open(job.breaker_key()):
                    self._on_finish(job, self._short_circuit(job))
                    finished += 1
                else:
                    kept.append(job)
            self._pending = kept
        for handle in self._pool:
            if not self._pending:
                return finished
            if handle.job is not None or not handle.process.is_alive():
                continue
            job = self._pending.popleft()
            faults = (
                self._fault_plan.for_job(job.job_id)
                if self._fault_plan is not None
                else ()
            )
            handle.inbox.put({
                "job": job.to_dict(),
                "failed_attempts": {
                    method: count
                    for (job_id, method), count in self._failed.items()
                    if job_id == job.job_id
                },
                "faults": [fault.to_dict() for fault in faults],
            })
            handle.job = job
            handle.last_beat = time.monotonic()
        return finished

    def _poll(self, timeout: float) -> bool:
        """True when a result-queue message is ready within ``timeout``."""
        reader = getattr(self._outbox, "_reader", None)
        if reader is not None:
            return reader.poll(timeout)
        if timeout:  # pragma: no cover - SimpleQueue always has _reader
            time.sleep(timeout)
        return not self._outbox.empty()  # pragma: no cover

    # -- event handling --------------------------------------------------

    def _handle(self, message: Dict[str, Any]) -> int:
        """Process one worker message; returns 1 when a job finished."""
        event = message.get("event")
        if event == "heartbeat":
            # Liveness only — never journaled (hundreds per job would
            # bury the records replay actually reads).
            for handle in self._pool:
                if handle.worker_id == message.get("worker"):
                    handle.last_beat = time.monotonic()
                    break
            return 0
        if event == "log":
            self._log(message.get("text", ""))
            return 0
        if event == "start":
            job_id = message["job_id"]
            self._touch_worker(job_id)
            self._in_flight[job_id] = (message["attempt"], message["method"])
            self._last_method[job_id] = message["method"]
            self._journal.append(message)
            return 0
        if event == "attempt_failed":
            key = (message["job_id"], message["method"])
            self._touch_worker(message["job_id"])
            self._failed[key] = self._failed.get(key, 0) + 1
            self._in_flight.pop(message["job_id"], None)
            self._journal.append(message)
            return 0
        if event == "done":
            job_id = message["job_id"]
            self._in_flight.pop(job_id, None)
            self._last_method.pop(job_id, None)
            for handle in self._pool:
                if handle.job is not None and handle.job.job_id == job_id:
                    handle.job = None
                    break
            self._merge_metrics(message.get("worker_metrics", {}))
            result = JobResult.from_dict(message["result"])
            self._on_finish(self._jobs_by_id[job_id], result)
            return 1
        raise CampaignError(  # pragma: no cover - protocol guard
            f"unknown worker message {event!r}"
        )

    def _touch_worker(self, job_id: str) -> None:
        """Refresh the liveness stamp of the worker running ``job_id`` —
        every protocol message is proof of life, not just heartbeats."""
        for handle in self._pool:
            if handle.job is not None and handle.job.job_id == job_id:
                handle.last_beat = time.monotonic()
                return

    def _reap_dead_workers(self) -> int:
        """Detect crashed workers; journal + requeue their in-flight jobs.

        Returns the number of jobs completed by messages that were still
        queued from a worker that has since exited.
        """
        completed = 0
        dead = [h for h in self._pool if not h.process.is_alive()]
        if not dead:
            return 0
        # Drain everything the dead workers managed to send first — a
        # worker that finished its job and then exited is not a crash.
        while self._poll(0):
            completed += self._handle(self._outbox.get())
        for handle in dead:
            self._pool.remove(handle)
            job = handle.job
            if job is None:
                continue
            exitcode = handle.process.exitcode
            attempt, method = self._in_flight.pop(
                job.job_id,
                (None, self._last_method.get(job.job_id, job.method)),
            )
            if attempt is None:
                attempt = self._failed.get((job.job_id, method), 0) + 1
            self._journal.append({
                "event": "attempt_failed",
                "job_id": job.job_id,
                "attempt": attempt,
                "method": method,
                "error": WORKER_CRASH_ERROR,
                "detail": (
                    f"worker {handle.worker_id} exited with code {exitcode} "
                    f"mid-attempt; job re-queued"
                ),
            })
            self._failed[(job.job_id, method)] = (
                self._failed.get((job.job_id, method), 0) + 1
            )
            self.worker_crashes += 1
            self._log(
                f"{job.job_id}: worker {handle.worker_id} crashed "
                f"(exit {exitcode}); journaled failed attempt {attempt} "
                f"and re-queued"
            )
            self._pending.appendleft(job)
        self._replenish_pool()
        return completed

    def _reap_hung_workers(self) -> int:
        """Detect, kill, journal and requeue silently wedged workers.

        A busy worker whose last sign of life predates the hang timeout
        is suspect.  The queue is drained first — its beat may be queued
        behind slower messages — and only workers *still* silent after
        the drain are escalated ``terminate()`` → ``kill()`` and their
        in-flight attempt journaled as ``WorkerHung``.  Returns the
        number of jobs completed by messages found during the drain.
        """
        now = time.monotonic()
        suspects = [
            h for h in self._pool
            if h.job is not None
            and h.process.is_alive()
            and now - h.last_beat > self._hang_timeout
        ]
        if not suspects:
            return 0
        completed = 0
        while self._poll(0):
            completed += self._handle(self._outbox.get())
        now = time.monotonic()
        for handle in suspects:
            if handle not in self._pool:
                continue  # the drain completed or crashed it
            if handle.job is None or not handle.process.is_alive():
                continue
            if now - handle.last_beat <= self._hang_timeout:
                continue  # the drain surfaced a beat after all
            job = handle.job
            silence = now - handle.last_beat
            how = _escalate_stop(handle.process)
            # Remove before the dead-worker reaper runs, or the kill
            # would be double-journaled as a crash.
            self._pool.remove(handle)
            attempt, method = self._in_flight.pop(
                job.job_id,
                (None, self._last_method.get(job.job_id, job.method)),
            )
            if attempt is None:
                attempt = self._failed.get((job.job_id, method), 0) + 1
            self._journal.append({
                "event": "attempt_failed",
                "job_id": job.job_id,
                "attempt": attempt,
                "method": method,
                "error": WORKER_HUNG_ERROR,
                "detail": (
                    f"worker {handle.worker_id} sent no heartbeat for "
                    f"{silence:.1f}s (timeout {self._hang_timeout:g}s); "
                    f"{how} (exit code {handle.process.exitcode}); "
                    "job re-queued"
                ),
            })
            self._failed[(job.job_id, method)] = (
                self._failed.get((job.job_id, method), 0) + 1
            )
            self.worker_hangs += 1
            self._log(
                f"{job.job_id}: worker {handle.worker_id} hung "
                f"(silent {silence:.1f}s, {how}); journaled failed "
                f"attempt {attempt} and re-queued"
            )
            self._pending.appendleft(job)
        self._replenish_pool()
        return completed

    def _replenish_pool(self) -> None:
        """Keep the pool sized to the remaining work."""
        alive = sum(1 for h in self._pool if h.process.is_alive())
        busy = sum(1 for h in self._pool if h.job is not None)
        want = min(self.workers, busy + len(self._pending))
        while alive < want:
            self._spawn_worker()
            alive += 1
