"""Deterministic fault injection for campaign robustness testing.

The runner's recovery paths — retry with budget escalation, graceful
degradation, journal resume — only earn trust if they can be exercised on
demand.  A :class:`FaultPlan` maps ``(job_id, attempt)`` (optionally
narrowed to a method) to a synthetic failure that fires exactly once, at
the seam where the runner hands a job to :func:`repro.core.verify`:

* ``solver-timeout`` — raises :class:`~repro.errors.BudgetExhausted`, the
  exact exception a real SAT budget blow-up produces;
* ``rewrite-failure`` — raises :class:`~repro.errors.RewriteFailed`, as
  when the diagram lacks the structure the rewriting rules assume;
* ``oom`` — raises :class:`MemoryError`, simulating the paper's 4 GB
  memory-limit kills;
* ``crash`` — raises :class:`InjectedCrash` (a ``BaseException``), which
  no recovery path may catch: it unwinds the whole campaign exactly like
  ``kill -9`` mid-run, leaving the journal with an in-flight job;
* ``journal-corrupt`` — garbles the tail of the journal *and then*
  crashes, simulating a torn write at the moment the machine died;
* ``hang`` — stops emitting heartbeats and sleeps (forever by default,
  or for ``amount`` seconds), the wedge a livelocked solver produces; in
  a parallel campaign the parent's hang detector must kill the worker;
* ``memory-bloat`` — allocates ``amount`` MiB in 1 MiB chunks, charging
  the ambient :class:`repro.guard.MemoryBudget` so a configured budget
  trips :class:`~repro.errors.MemoryBudgetExhausted`; without a budget
  it degrades to a plain :class:`MemoryError`;
* ``slow`` — injects a per-check delay into one pipeline stage via
  :meth:`repro.guard.Deadline.add_stage_delay`, turning a fast job into
  a deadline-limited one without touching the pipeline.

Because injected failures use the same exception types as real ones, the
runner cannot distinguish drill from emergency — the recovery machinery
under test is the production machinery.

Parallel campaigns (``CampaignRunner(..., workers=N)``) partition a plan
deterministically by job id: each worker receives exactly the faults of
the job it is about to run (:meth:`FaultPlan.for_job`), so ``--workers N``
reproduces the same injected faults as a sequential run regardless of
which worker a job lands on.  Two kinds change scope in a worker:
``crash`` kills only that worker process (the parent journals a failed
attempt and retries the job), and ``journal-corrupt`` degrades to a plain
crash — workers hold no journal handle, which is the single-writer
invariant itself, so there is no tail for them to tear.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import BudgetExhausted, CampaignError, RewriteFailed
from ..guard.deadline import current_deadline
from .journal import Journal

__all__ = ["FaultKind", "Fault", "FaultPlan", "InjectedCrash"]


class InjectedCrash(BaseException):
    """Simulated process death.

    Deliberately a ``BaseException``: the runner's ``except ReproError``
    recovery handlers must not (and cannot) swallow it, mirroring a real
    SIGKILL which no handler sees.
    """


class FaultKind:
    """Supported synthetic failure classes."""

    SOLVER_TIMEOUT = "solver-timeout"
    REWRITE_FAILURE = "rewrite-failure"
    OOM = "oom"
    CRASH = "crash"
    JOURNAL_CORRUPT = "journal-corrupt"
    HANG = "hang"
    MEMORY_BLOAT = "memory-bloat"
    SLOW = "slow"

    ALL = (
        SOLVER_TIMEOUT,
        REWRITE_FAILURE,
        OOM,
        CRASH,
        JOURNAL_CORRUPT,
        HANG,
        MEMORY_BLOAT,
        SLOW,
    )


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    Attributes:
        kind: one of :class:`FaultKind`.
        job_id: the job the fault applies to.
        attempt: 1-based attempt number that triggers it, or ``0`` as a
            wildcard — the fault fires on *every* attempt of the job
            (the way to model a *permanent* hang that survives retries).
        method: restrict to a method phase (``None`` = any method).
        detail: free-form text carried into the raised exception.
        stage: for ``slow``, the pipeline stage to delay (``"*"`` = all).
        amount: kind-specific magnitude — seconds for ``hang``/``slow``,
            MiB for ``memory-bloat``.
    """

    kind: str
    job_id: str
    attempt: int = 1
    method: Optional[str] = None
    detail: str = ""
    stage: Optional[str] = None
    amount: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise CampaignError(
                f"unknown fault kind {self.kind!r}; use one of {FaultKind.ALL}"
            )
        if self.attempt < 0:
            raise CampaignError(
                "fault attempt numbers are 1-based (0 = every attempt)"
            )
        if self.kind == FaultKind.SLOW and self.amount is None:
            raise CampaignError(
                "slow faults need a delay: slow[:STAGE]:SECONDS@JOB"
            )
        if self.kind == FaultKind.MEMORY_BLOAT and self.amount is None:
            raise CampaignError(
                "memory-bloat faults need a size: memory-bloat:MIB@JOB"
            )

    def to_dict(self) -> Dict[str, object]:
        """Picklable/JSON form (the shape worker task messages carry)."""
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "method": self.method,
            "detail": self.detail,
            "stage": self.stage,
            "amount": self.amount,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fault":
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "Fault":
        """Parse the CLI form ``KIND[:ARG[:ARG]]@JOB_ID[:ATTEMPT|*]``.

        Examples: ``solver-timeout@rw-N4-k2`` (attempt 1),
        ``oom@rw-N8-k2:2`` (attempt 2), ``hang@rw-N3-k1:*`` (a permanent
        hang firing on every attempt), ``hang:10@rw-N3-k1`` (hang for
        10 s), ``memory-bloat:64@rw-N4-k2`` (allocate 64 MiB), and
        ``slow:sat:0.5@rw-N4-k2`` (0.5 s delay at every SAT-stage
        deadline check; omit the stage — ``slow:0.5@...`` — to slow
        every stage).
        """
        if "@" not in text:
            raise CampaignError(
                f"bad fault spec {text!r}; expected "
                "KIND[:ARG[:ARG]]@JOB_ID[:ATTEMPT|*]"
            )
        head, _, target = text.partition("@")
        parts = [part.strip() for part in head.split(":")]
        kind, args = parts[0], parts[1:]
        stage: Optional[str] = None
        amount: Optional[float] = None

        def as_amount(word: str) -> float:
            try:
                return float(word)
            except ValueError:
                raise CampaignError(
                    f"bad fault spec {text!r}; {word!r} is not a number"
                )

        if kind == FaultKind.SLOW and len(args) == 2:
            stage, amount = args[0], as_amount(args[1])
        elif kind in (
            FaultKind.SLOW, FaultKind.HANG, FaultKind.MEMORY_BLOAT
        ) and len(args) == 1:
            amount = as_amount(args[0])
        elif args:
            raise CampaignError(
                f"bad fault spec {text!r}; unexpected argument(s) "
                f"{args} for fault kind {kind!r}"
            )
        job_id, _, attempt_text = target.rpartition(":")
        if not job_id:
            job_id, attempt_text = target, ""
        if attempt_text == "*":
            attempt = 0
        else:
            try:
                attempt = int(attempt_text) if attempt_text else 1
            except ValueError:
                raise CampaignError(
                    f"bad fault spec {text!r}; attempt {attempt_text!r} "
                    "is not an integer or '*'"
                )
        return cls(
            kind=kind, job_id=job_id, attempt=attempt,
            stage=stage, amount=amount,
        )


class FaultPlan:
    """A deterministic schedule of faults.

    Exact-attempt faults fire at most once.  Wildcard faults
    (``attempt=0``) fire on *every* attempt of their job — the shape a
    permanent wedge has, where retrying cannot help.  An exact fault
    shadows the wildcard on its attempt.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._by_key: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            key = (fault.job_id, fault.attempt)
            if key in self._by_key:
                raise CampaignError(
                    f"duplicate fault for job {fault.job_id!r} "
                    f"attempt {fault.attempt}"
                )
            self._by_key[key] = fault
        self._fired: Set[Tuple[str, int]] = set()
        self._wildcard_fires = 0

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def fired(self) -> int:
        return len(self._fired) + self._wildcard_fires

    def for_job(self, job_id: str) -> Tuple[Fault, ...]:
        """This job's faults — the deterministic per-job partition that a
        parallel worker receives, ordered by attempt number."""
        return tuple(
            fault
            for (fid, _), fault in sorted(self._by_key.items())
            if fid == job_id
        )

    def fire(
        self, job_id: str, attempt: int, method: str,
        journal: Optional[Journal] = None,
    ) -> None:
        """Raise the planned fault for this attempt, if any."""
        key = (job_id, attempt)
        fault = self._by_key.get(key)
        wildcard = False
        if fault is None or key in self._fired:
            fault, wildcard = self._by_key.get((job_id, 0)), True
            if fault is None:
                return
        if fault.method is not None and fault.method != method:
            return
        if wildcard:
            self._wildcard_fires += 1
        else:
            self._fired.add(key)
        where = f"job {job_id!r} attempt {attempt} ({method})"
        detail = fault.detail or f"injected at {where}"
        if fault.kind == FaultKind.SOLVER_TIMEOUT:
            raise BudgetExhausted(
                f"injected solver timeout: {detail}",
                conflicts=0,
                seconds=0.0,
            )
        if fault.kind == FaultKind.REWRITE_FAILURE:
            raise RewriteFailed(
                f"injected rewrite failure: {detail}", stage="injected"
            )
        if fault.kind == FaultKind.OOM:
            raise MemoryError(f"injected out-of-memory: {detail}")
        if fault.kind == FaultKind.JOURNAL_CORRUPT:
            if journal is not None:
                journal.corrupt_tail()
            raise InjectedCrash(f"injected torn-write crash: {detail}")
        if fault.kind == FaultKind.HANG:
            _hang(fault.amount, detail)
        if fault.kind == FaultKind.MEMORY_BLOAT:
            _bloat_memory(float(fault.amount or 0.0), detail)
        if fault.kind == FaultKind.SLOW:
            current_deadline().add_stage_delay(
                fault.stage or "*", float(fault.amount or 0.0)
            )
            return
        raise InjectedCrash(f"injected crash: {detail}")


def _hang(seconds: Optional[float], detail: str) -> None:
    """Go silent: sleep without heartbeats, checks, or progress.

    Unbounded (``seconds=None``) hangs mimic a true livelock and only
    end when the parent's hang detector kills the worker.  Bounded hangs
    eventually raise :class:`~repro.errors.BudgetExhausted` — a
    sequential-safe wedge the executor treats as a recoverable failure.
    """
    if seconds is None:
        while True:  # pragma: no cover - only ends via SIGTERM/SIGKILL
            time.sleep(60.0)
    time.sleep(seconds)
    raise BudgetExhausted(
        f"injected hang expired: {detail}",
        budget_kind="wall",
        seconds=seconds,
        stage="injected-hang",
    )


def _bloat_memory(mib: float, detail: str) -> None:
    """Allocate ``mib`` MiB in 1 MiB chunks, charging the ambient budget.

    With a :class:`repro.guard.MemoryBudget` ambient, the charge trips
    :class:`~repro.errors.MemoryBudgetExhausted` deterministically
    before the allocation finishes; without one, the allocation
    completes and a plain :class:`MemoryError` is raised — recoverable
    through the executor's OOM path either way.
    """
    deadline = current_deadline()
    hoard: List[bytearray] = []
    chunk = 1 << 20
    for _ in range(max(1, int(mib))):
        hoard.append(bytearray(chunk))
        deadline.charge(bytes_=chunk)
        deadline.check("memory-bloat")
    del hoard
    raise MemoryError(f"injected memory bloat ({mib:g} MiB): {detail}")
