"""Deterministic fault injection for campaign robustness testing.

The runner's recovery paths — retry with budget escalation, graceful
degradation, journal resume — only earn trust if they can be exercised on
demand.  A :class:`FaultPlan` maps ``(job_id, attempt)`` (optionally
narrowed to a method) to a synthetic failure that fires exactly once, at
the seam where the runner hands a job to :func:`repro.core.verify`:

* ``solver-timeout`` — raises :class:`~repro.errors.BudgetExhausted`, the
  exact exception a real SAT budget blow-up produces;
* ``rewrite-failure`` — raises :class:`~repro.errors.RewriteFailed`, as
  when the diagram lacks the structure the rewriting rules assume;
* ``oom`` — raises :class:`MemoryError`, simulating the paper's 4 GB
  memory-limit kills;
* ``crash`` — raises :class:`InjectedCrash` (a ``BaseException``), which
  no recovery path may catch: it unwinds the whole campaign exactly like
  ``kill -9`` mid-run, leaving the journal with an in-flight job;
* ``journal-corrupt`` — garbles the tail of the journal *and then*
  crashes, simulating a torn write at the moment the machine died.

Because injected failures use the same exception types as real ones, the
runner cannot distinguish drill from emergency — the recovery machinery
under test is the production machinery.

Parallel campaigns (``CampaignRunner(..., workers=N)``) partition a plan
deterministically by job id: each worker receives exactly the faults of
the job it is about to run (:meth:`FaultPlan.for_job`), so ``--workers N``
reproduces the same injected faults as a sequential run regardless of
which worker a job lands on.  Two kinds change scope in a worker:
``crash`` kills only that worker process (the parent journals a failed
attempt and retries the job), and ``journal-corrupt`` degrades to a plain
crash — workers hold no journal handle, which is the single-writer
invariant itself, so there is no tail for them to tear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from ..errors import BudgetExhausted, CampaignError, RewriteFailed
from .journal import Journal

__all__ = ["FaultKind", "Fault", "FaultPlan", "InjectedCrash"]


class InjectedCrash(BaseException):
    """Simulated process death.

    Deliberately a ``BaseException``: the runner's ``except ReproError``
    recovery handlers must not (and cannot) swallow it, mirroring a real
    SIGKILL which no handler sees.
    """


class FaultKind:
    """Supported synthetic failure classes."""

    SOLVER_TIMEOUT = "solver-timeout"
    REWRITE_FAILURE = "rewrite-failure"
    OOM = "oom"
    CRASH = "crash"
    JOURNAL_CORRUPT = "journal-corrupt"

    ALL = (SOLVER_TIMEOUT, REWRITE_FAILURE, OOM, CRASH, JOURNAL_CORRUPT)


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    Attributes:
        kind: one of :class:`FaultKind`.
        job_id: the job the fault applies to.
        attempt: 1-based attempt number that triggers it.
        method: restrict to a method phase (``None`` = any method).
        detail: free-form text carried into the raised exception.
    """

    kind: str
    job_id: str
    attempt: int = 1
    method: Optional[str] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise CampaignError(
                f"unknown fault kind {self.kind!r}; use one of {FaultKind.ALL}"
            )
        if self.attempt < 1:
            raise CampaignError("fault attempt numbers are 1-based")

    def to_dict(self) -> Dict[str, object]:
        """Picklable/JSON form (the shape worker task messages carry)."""
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "method": self.method,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fault":
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "Fault":
        """Parse the CLI form ``KIND@JOB_ID[:ATTEMPT]``.

        Examples: ``solver-timeout@rw-N4-k2`` (attempt 1),
        ``oom@rw-N8-k2:2`` (attempt 2).
        """
        if "@" not in text:
            raise CampaignError(
                f"bad fault spec {text!r}; expected KIND@JOB_ID[:ATTEMPT]"
            )
        kind, _, target = text.partition("@")
        job_id, _, attempt_text = target.rpartition(":")
        if not job_id:
            job_id, attempt_text = target, ""
        try:
            attempt = int(attempt_text) if attempt_text else 1
        except ValueError:
            raise CampaignError(
                f"bad fault spec {text!r}; attempt {attempt_text!r} "
                "is not an integer"
            )
        return cls(kind=kind.strip(), job_id=job_id, attempt=attempt)


class FaultPlan:
    """A deterministic, one-shot schedule of faults."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._by_key: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            key = (fault.job_id, fault.attempt)
            if key in self._by_key:
                raise CampaignError(
                    f"duplicate fault for job {fault.job_id!r} "
                    f"attempt {fault.attempt}"
                )
            self._by_key[key] = fault
        self._fired: Set[Tuple[str, int]] = set()

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def fired(self) -> int:
        return len(self._fired)

    def for_job(self, job_id: str) -> Tuple[Fault, ...]:
        """This job's faults — the deterministic per-job partition that a
        parallel worker receives, ordered by attempt number."""
        return tuple(
            fault
            for (fid, _), fault in sorted(self._by_key.items())
            if fid == job_id
        )

    def fire(
        self, job_id: str, attempt: int, method: str,
        journal: Optional[Journal] = None,
    ) -> None:
        """Raise the planned fault for this attempt, if any (once)."""
        key = (job_id, attempt)
        fault = self._by_key.get(key)
        if fault is None or key in self._fired:
            return
        if fault.method is not None and fault.method != method:
            return
        self._fired.add(key)
        where = f"job {job_id!r} attempt {attempt} ({method})"
        detail = fault.detail or f"injected at {where}"
        if fault.kind == FaultKind.SOLVER_TIMEOUT:
            raise BudgetExhausted(
                f"injected solver timeout: {detail}",
                conflicts=0,
                seconds=0.0,
            )
        if fault.kind == FaultKind.REWRITE_FAILURE:
            raise RewriteFailed(
                f"injected rewrite failure: {detail}", stage="injected"
            )
        if fault.kind == FaultKind.OOM:
            raise MemoryError(f"injected out-of-memory: {detail}")
        if fault.kind == FaultKind.JOURNAL_CORRUPT:
            if journal is not None:
                journal.corrupt_tail()
            raise InjectedCrash(f"injected torn-write crash: {detail}")
        raise InjectedCrash(f"injected crash: {detail}")
