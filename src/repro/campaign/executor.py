"""The per-job attempt loop, shared by the sequential and parallel paths.

A :class:`JobExecutor` drives exactly one job to a terminal state:
retries with exponential budget escalation, graceful degradation to the
fallback method, and a structured ``INCONCLUSIVE`` when everything is
exhausted.  It is deliberately journal-agnostic: every record it would
journal is handed to an ``emit`` callable instead, so the same code runs

* inline in :class:`~repro.campaign.runner.CampaignRunner` (``emit``
  appends to the journal directly), and
* inside a :mod:`multiprocessing` worker (``emit`` ships the record over
  the result queue to the parent, which is the only journal writer).

The only journal-shaped dependency left is the ``journal-corrupt`` fault
seam: corrupting the journal's tail needs a file handle, so the optional
``fault_journal`` is forwarded to :meth:`FaultPlan.fire`.  Workers pass
``None`` — they hold no journal handle, which is precisely the
single-writer invariant — and the fault degrades to a plain crash.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import BudgetExhausted, ReproError
from ..guard.deadline import current_deadline, use_deadline
from ..guard.memory import MemoryBudget
from .faults import FaultPlan
from .jobs import Job, JobResult
from .journal import Journal

__all__ = ["JobExecutor"]

#: Event dict sink; receives exactly what the journal would record.
EmitFn = Callable[[Dict[str, object]], None]


class JobExecutor:
    """Runs one job's attempts; see the module docstring."""

    def __init__(
        self,
        verify_fn: Callable,
        retry,
        degrade,
        fault_plan: Optional[FaultPlan] = None,
        analyze: bool = False,
        certify: bool = False,
        log: Optional[Callable[[str], None]] = None,
        fault_journal: Optional[Journal] = None,
    ) -> None:
        self.verify_fn = verify_fn
        self.retry = retry
        self.degrade = degrade
        self.fault_plan = fault_plan
        self.analyze = analyze
        self.certify = certify
        self._log = log or (lambda message: None)
        self.fault_journal = fault_journal

    # ------------------------------------------------------------------

    def run_job(
        self,
        job: Job,
        emit: EmitFn,
        failed_attempts: Dict[Tuple[str, str], int],
    ) -> JobResult:
        """Drive one job to a terminal state (never raises ReproError)."""
        method = job.method
        tried: List[str] = []
        total_attempts = 0
        last_detail = ""
        while True:
            result, used, detail = self._try_method(
                job, method, emit, failed_attempts
            )
            total_attempts += used
            if result is not None:
                result.attempts = total_attempts
                return result
            last_detail = detail or last_detail
            tried.append(method)
            fallback = self.degrade.fallback_method
            if (
                method == "rewriting"
                and fallback is not None
                and fallback not in tried
            ):
                self._log(
                    f"{job.job_id}: rewriting exhausted "
                    f"({last_detail or 'no attempts left'}); "
                    f"degrading to {fallback}"
                )
                method = fallback
                continue
            return JobResult(
                job_id=job.job_id,
                status="INCONCLUSIVE",
                method=method,
                attempts=total_attempts,
                detail=last_detail or "all budgets and fallbacks exhausted",
            )

    def _try_method(
        self,
        job: Job,
        method: str,
        emit: EmitFn,
        failed_attempts: Dict[Tuple[str, str], int],
    ) -> Tuple[Optional[JobResult], int, str]:
        """All attempts of one method; ``(None, n, why)`` when exhausted."""
        start_attempt = failed_attempts.get((job.job_id, method), 0) + 1
        used = 0
        last_detail = ""
        for attempt in range(start_attempt, self.retry.max_attempts + 1):
            max_conflicts, max_seconds = self.retry.budget_for(job, attempt)
            max_wall, max_memory = self.retry.guard_budget_for(job, attempt)
            start_event: Dict[str, object] = {
                "event": "start",
                "job_id": job.job_id,
                "attempt": attempt,
                "method": method,
                "max_conflicts": max_conflicts,
                "max_seconds": max_seconds,
            }
            # Guard budgets ride in the start record only when enforced,
            # so journals of unsupervised campaigns keep their old shape.
            if max_wall is not None:
                start_event["max_wall_seconds"] = max_wall
            if max_memory is not None:
                start_event["max_memory_mb"] = max_memory
            emit(start_event)
            used += 1
            # The attempt-scoped supervision deadline: derived from the
            # ambient one (inheriting a worker's heartbeat sink), capped
            # by its remaining allowance, and installed around *both* the
            # fault seam and the verify call, so injected hangs, bloat
            # and slowdowns compose with the budgets that should catch
            # them.  Unset budgets keep the ambient deadline untouched.
            guard_scope = nullcontext()
            if max_wall is not None or max_memory is not None:
                guard_scope = use_deadline(current_deadline().derive(
                    max_wall_seconds=max_wall,
                    memory=(
                        MemoryBudget.from_mb(max_memory)
                        if max_memory is not None else None
                    ),
                ))
            try:
                with guard_scope:
                    if self.fault_plan is not None:
                        self.fault_plan.fire(
                            job.job_id, attempt, method, self.fault_journal
                        )
                    # Only forward opt-in kwargs when they are on, so
                    # custom verify_fn overrides keep their narrower
                    # signature.
                    extra: Dict[str, object] = {}
                    if self.analyze:
                        extra["analyze"] = True
                    if self.certify:
                        extra["certify"] = True
                    result = self.verify_fn(
                        job.config(),
                        method=method,
                        bug=job.bug(),
                        criterion=job.criterion,
                        max_conflicts=max_conflicts,
                        max_seconds=max_seconds,
                        **extra,
                    )
            except (BudgetExhausted, MemoryError) as exc:
                # Recoverable: the next attempt gets an escalated budget
                # (the paper's protocol: rerun the 4 GB kills bigger).
                last_detail = f"{type(exc).__name__}: {exc}"
                emit({
                    "event": "attempt_failed",
                    "job_id": job.job_id,
                    "attempt": attempt,
                    "method": method,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                })
                self._log(
                    f"{job.job_id}: attempt {attempt}/{self.retry.max_attempts}"
                    f" ({method}) failed — {last_detail}"
                )
                continue
            except (ReproError, ValueError) as exc:
                # Structural: a bigger budget cannot help this method.
                last_detail = f"{type(exc).__name__}: {exc}"
                emit({
                    "event": "attempt_failed",
                    "job_id": job.job_id,
                    "attempt": attempt,
                    "method": method,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                })
                return None, used, last_detail
            return (
                JobResult.from_verification(job, method, used, result),
                used,
                "",
            )
        return None, used, last_detail
