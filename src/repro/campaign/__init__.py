"""Crash-safe verification campaigns.

The paper's experimental sections (Tables 1–5, the scaling study up to
N=1,500, the buggy 72nd-slice hunt) are *campaigns*: batches of
``(config, method, bug)`` verification jobs in which individual runs can
blow their SAT budget — the paper's Positive-Equality baseline dies at
N=16 — while the campaign as a whole must still produce a complete,
trustworthy table.  This package supplies the surrounding experiment
infrastructure the paper assumes but never ships:

* :class:`~repro.campaign.jobs.Job` — a serializable verification job;
* :class:`~repro.campaign.journal.Journal` — an append-only,
  checksummed JSONL journal that survives crashes and torn writes;
* :class:`~repro.campaign.runner.CampaignRunner` — executes jobs with
  per-attempt budgets, retry with exponential budget escalation, journal
  resume, and graceful degradation to Positive Equality or a structured
  ``INCONCLUSIVE`` outcome;
* :mod:`~repro.campaign.executor` — the per-job attempt loop, shared by
  the sequential path and the parallel workers;
* :mod:`~repro.campaign.parallel` — process-parallel execution
  (``CampaignRunner(..., workers=N)``); workers stream their would-be
  journal records to the parent, which stays the single journal writer;
* :mod:`~repro.campaign.faults` — a deterministic fault-injection
  harness so the recovery paths are themselves testable.

Command-line entry point: ``python -m repro campaign`` (see
:mod:`repro.campaign.cli`).
"""

from .faults import Fault, FaultKind, FaultPlan, InjectedCrash
from .jobs import TERMINAL_STATES, Job, JobResult
from .journal import Journal, JournalReplay
from .runner import CampaignReport, CampaignRunner, DegradePolicy, RetryPolicy

__all__ = [
    "TERMINAL_STATES",
    "Job",
    "JobResult",
    "Journal",
    "JournalReplay",
    "CampaignReport",
    "CampaignRunner",
    "DegradePolicy",
    "RetryPolicy",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "InjectedCrash",
]
