"""The campaign runner: budgeted, retrying, crash-safe job execution.

Execution model (per job):

1. run ``verify()`` under the attempt's budget — the job's base budget
   scaled by :attr:`RetryPolicy.escalation` raised to the attempt number
   (exponential budget escalation, capped);
2. on :class:`~repro.errors.BudgetExhausted` / :class:`MemoryError`,
   journal the failed attempt and retry with the next, larger budget;
3. when a ``rewriting`` job exhausts its attempts — or the rewrite engine
   itself fails structurally — degrade gracefully: re-run the job under
   :attr:`DegradePolicy.fallback_method` (Positive Equality on the full
   formula) with a fresh attempt schedule;
4. when every fallback is exhausted too, record a structured
   ``INCONCLUSIVE`` outcome instead of crashing the batch — the campaign
   analogue of the paper's out-of-memory table entries.

Every transition is appended to a :class:`~repro.campaign.journal.Journal`
before/after it happens, so a killed campaign resumes exactly where it
left off: finished jobs are never re-run, recorded failed attempts keep
their place in the escalation schedule, and the attempt that was in
flight at the kill is re-run at the same budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import BudgetExhausted, CampaignError, ReproError
from .faults import FaultPlan
from .jobs import Job, JobResult
from .journal import Journal

__all__ = ["RetryPolicy", "DegradePolicy", "CampaignRunner", "CampaignReport"]


@dataclass(frozen=True)
class RetryPolicy:
    """Budget and escalation schedule for verification attempts.

    Attempt ``a`` (1-based) runs with ``base * escalation**(a - 1)``
    conflicts/seconds, capped.  The base comes from the job when set,
    otherwise from this policy; a base of ``None`` means unbounded (no
    budget of that kind is enforced).
    """

    max_attempts: int = 3
    escalation: float = 2.0
    base_conflicts: Optional[int] = 100_000
    conflicts_cap: int = 2_000_000
    base_seconds: Optional[float] = None
    seconds_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be at least 1")
        if self.escalation < 1.0:
            raise CampaignError("escalation factor must be >= 1")

    def budget_for(
        self, job: Job, attempt: int
    ) -> Tuple[Optional[int], Optional[float]]:
        """The (max_conflicts, max_seconds) budget of one attempt."""
        factor = self.escalation ** (attempt - 1)
        base_c = job.max_conflicts if job.max_conflicts is not None \
            else self.base_conflicts
        conflicts = None
        if base_c is not None:
            conflicts = min(int(base_c * factor), self.conflicts_cap)
        base_s = job.max_seconds if job.max_seconds is not None \
            else self.base_seconds
        seconds = None
        if base_s is not None:
            seconds = base_s * factor
            if self.seconds_cap is not None:
                seconds = min(seconds, self.seconds_cap)
        return conflicts, seconds


@dataclass(frozen=True)
class DegradePolicy:
    """What to do when a method exhausts its retries.

    ``fallback_method`` re-queues failed ``rewriting`` jobs under the
    Positive-Equality baseline (the full, un-rewritten formula); set it to
    ``None`` to go straight to ``INCONCLUSIVE``.
    """

    fallback_method: Optional[str] = "positive_equality"


@dataclass
class CampaignReport:
    """Aggregate outcome of a campaign run."""

    results: Dict[str, JobResult]
    #: jobs whose finish was replayed from the journal (not re-run).
    replayed: int = 0
    #: mid-file corrupt journal lines that were skipped on load.
    corrupt_lines: int = 0
    #: True when the journal ended in a torn line (crash signature).
    torn_tail: bool = False

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results.values():
            tally[result.status] = tally.get(result.status, 0) + 1
        return tally

    def exit_code(self) -> int:
        """0 = all proved; 1 = a bug was found; 4 = inconclusive jobs."""
        counts = self.counts()
        if counts.get("BUG_FOUND"):
            return 1
        if counts.get("INCONCLUSIVE"):
            return 4
        return 0

    def summary(self) -> str:
        header = (
            f"{'job':<28} {'status':<13} {'method':<18} "
            f"{'tries':>5} {'total':>8}"
        )
        lines = [header, "-" * len(header)]
        for result in self.results.values():
            total = result.timings.get("total", 0.0)
            note = " (journal)" if result.from_journal else ""
            detail = f"  [{result.detail}]" if result.detail else ""
            lines.append(
                f"{result.job_id:<28} {result.status:<13} "
                f"{result.method:<18} {result.attempts:>5} "
                f"{total:>7.2f}s{note}{detail}"
            )
        tally = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        )
        lines.append(f"{len(self.results)} job(s): {tally}"
                     f" ({self.replayed} replayed from journal)")
        if self.corrupt_lines:
            lines.append(
                f"warning: skipped {self.corrupt_lines} corrupt journal line(s)"
            )
        return "\n".join(lines)


class CampaignRunner:
    """Executes a batch of jobs against a crash-safe journal.

    Args:
        journal_path: JSONL journal; created if missing, resumed if not.
        retry: budget/escalation schedule (:class:`RetryPolicy`).
        degrade: fallback behaviour (:class:`DegradePolicy`).
        verify_fn: override for :func:`repro.core.verify` (tests/monitors).
        fault_plan: optional :class:`~repro.campaign.faults.FaultPlan`
            consulted at the verify seam on every attempt.
        on_result: callback invoked with ``(job, result)`` after every job
            reaches a terminal state (including journal replays).
        log: line sink for progress messages (e.g. ``print``).
        analyze: run the :mod:`repro.analysis` soundness analyzers on
            every verification; their findings ride in
            :attr:`JobResult.diagnostics` and the journal's finish
            records, so they survive crash-and-resume.
    """

    def __init__(
        self,
        journal_path: str,
        retry: Optional[RetryPolicy] = None,
        degrade: Optional[DegradePolicy] = None,
        verify_fn: Optional[Callable] = None,
        fault_plan: Optional[FaultPlan] = None,
        on_result: Optional[Callable[[Job, JobResult], None]] = None,
        log: Optional[Callable[[str], None]] = None,
        strict_journal: bool = False,
        analyze: bool = False,
    ) -> None:
        if verify_fn is None:
            from ..core.verifier import verify as verify_fn
        self.journal_path = journal_path
        self.retry = retry or RetryPolicy()
        self.degrade = degrade or DegradePolicy()
        self.verify_fn = verify_fn
        self.fault_plan = fault_plan
        self.on_result = on_result
        self._log = log or (lambda message: None)
        self.strict_journal = strict_journal
        self.analyze = analyze

    # ------------------------------------------------------------------

    def run(self, jobs: Optional[Iterable[Job]] = None) -> CampaignReport:
        """Run (or resume) the campaign; returns when every job is terminal.

        With ``jobs=None`` the job list is recovered from the journal's
        ``enqueue`` records, so ``CampaignRunner(path).run()`` resumes an
        interrupted campaign without re-supplying the spec.
        """
        replay = Journal.load(self.journal_path, strict=self.strict_journal)
        known_specs = replay.job_specs()
        if jobs is None:
            if not known_specs:
                raise CampaignError(
                    f"no jobs supplied and journal {self.journal_path!r} "
                    "records none to resume"
                )
            job_list = [Job.from_dict(spec) for spec in known_specs.values()]
        else:
            job_list = list(jobs)
        if not job_list:
            raise CampaignError("the campaign has no jobs")
        seen = set()
        for job in job_list:
            if job.job_id in seen:
                raise CampaignError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)

        finished = replay.finished()
        failed_attempts = replay.failed_attempts()
        results: Dict[str, JobResult] = {}
        replayed = 0

        with Journal(self.journal_path) as journal:
            for job in job_list:
                if job.job_id not in known_specs:
                    journal.append({"event": "enqueue", "job": job.to_dict()})
            for job in job_list:
                if job.job_id in finished:
                    result = JobResult.from_dict(finished[job.job_id])
                    result.from_journal = True
                    results[job.job_id] = result
                    replayed += 1
                    self._log(f"{job.job_id}: {result.status} (from journal)")
                else:
                    result = self._run_job(job, journal, failed_attempts)
                    journal.append({"event": "finish", **result.to_dict()})
                    results[job.job_id] = result
                    self._log(
                        f"{job.job_id}: {result.status} after "
                        f"{result.attempts} attempt(s) via {result.method}"
                    )
                if self.on_result is not None:
                    self.on_result(job, result)

        return CampaignReport(
            results=results,
            replayed=replayed,
            corrupt_lines=replay.corrupt_lines,
            torn_tail=replay.torn_tail,
        )

    # ------------------------------------------------------------------

    def _run_job(
        self,
        job: Job,
        journal: Journal,
        failed_attempts: Dict[Tuple[str, str], int],
    ) -> JobResult:
        """Drive one job to a terminal state (never raises ReproError)."""
        method = job.method
        tried: List[str] = []
        total_attempts = 0
        last_detail = ""
        while True:
            result, used, detail = self._try_method(
                job, method, journal, failed_attempts
            )
            total_attempts += used
            if result is not None:
                result.attempts = total_attempts
                return result
            last_detail = detail or last_detail
            tried.append(method)
            fallback = self.degrade.fallback_method
            if (
                method == "rewriting"
                and fallback is not None
                and fallback not in tried
            ):
                self._log(
                    f"{job.job_id}: rewriting exhausted "
                    f"({last_detail or 'no attempts left'}); "
                    f"degrading to {fallback}"
                )
                method = fallback
                continue
            return JobResult(
                job_id=job.job_id,
                status="INCONCLUSIVE",
                method=method,
                attempts=total_attempts,
                detail=last_detail or "all budgets and fallbacks exhausted",
            )

    def _try_method(
        self,
        job: Job,
        method: str,
        journal: Journal,
        failed_attempts: Dict[Tuple[str, str], int],
    ) -> Tuple[Optional[JobResult], int, str]:
        """All attempts of one method; ``(None, n, why)`` when exhausted."""
        start_attempt = failed_attempts.get((job.job_id, method), 0) + 1
        used = 0
        last_detail = ""
        for attempt in range(start_attempt, self.retry.max_attempts + 1):
            max_conflicts, max_seconds = self.retry.budget_for(job, attempt)
            journal.append({
                "event": "start",
                "job_id": job.job_id,
                "attempt": attempt,
                "method": method,
                "max_conflicts": max_conflicts,
                "max_seconds": max_seconds,
            })
            used += 1
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire(job.job_id, attempt, method, journal)
                # Only forward the analyze kwarg when it is on, so custom
                # verify_fn overrides keep their narrower signature.
                extra = {"analyze": True} if self.analyze else {}
                result = self.verify_fn(
                    job.config(),
                    method=method,
                    bug=job.bug(),
                    criterion=job.criterion,
                    max_conflicts=max_conflicts,
                    max_seconds=max_seconds,
                    **extra,
                )
            except (BudgetExhausted, MemoryError) as exc:
                # Recoverable: the next attempt gets an escalated budget
                # (the paper's protocol: rerun the 4 GB kills bigger).
                last_detail = f"{type(exc).__name__}: {exc}"
                journal.append({
                    "event": "attempt_failed",
                    "job_id": job.job_id,
                    "attempt": attempt,
                    "method": method,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                })
                self._log(
                    f"{job.job_id}: attempt {attempt}/{self.retry.max_attempts}"
                    f" ({method}) failed — {last_detail}"
                )
                continue
            except (ReproError, ValueError) as exc:
                # Structural: a bigger budget cannot help this method.
                last_detail = f"{type(exc).__name__}: {exc}"
                journal.append({
                    "event": "attempt_failed",
                    "job_id": job.job_id,
                    "attempt": attempt,
                    "method": method,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                })
                return None, used, last_detail
            return (
                JobResult.from_verification(job, method, used, result),
                used,
                "",
            )
        return None, used, last_detail
