"""The campaign runner: budgeted, retrying, crash-safe job execution.

Execution model (per job):

1. run ``verify()`` under the attempt's budget — the job's base budget
   scaled by :attr:`RetryPolicy.escalation` raised to the attempt number
   (exponential budget escalation, capped);
2. on :class:`~repro.errors.BudgetExhausted` / :class:`MemoryError`,
   journal the failed attempt and retry with the next, larger budget;
3. when a ``rewriting`` job exhausts its attempts — or the rewrite engine
   itself fails structurally — degrade gracefully: re-run the job under
   :attr:`DegradePolicy.fallback_method` (Positive Equality on the full
   formula) with a fresh attempt schedule;
4. when every fallback is exhausted too, record a structured
   ``INCONCLUSIVE`` outcome instead of crashing the batch — the campaign
   analogue of the paper's out-of-memory table entries.

Every transition is appended to a :class:`~repro.campaign.journal.Journal`
before/after it happens, so a killed campaign resumes exactly where it
left off: finished jobs are never re-run, recorded failed attempts keep
their place in the escalation schedule, and the attempt that was in
flight at the kill is re-run at the same budget.

With ``workers > 1`` jobs fan out to a :mod:`multiprocessing` pool
(:mod:`repro.campaign.parallel`).  The parent process remains the single
journal writer — workers stream their would-be journal records back over
a result queue — so every journal and resume property above is
unchanged; a worker that dies mid-job is journaled as a failed attempt
(error ``WorkerCrashed``) and the job is retried under the same
:class:`RetryPolicy` schedule.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import CampaignError
from ..guard.breaker import SHORT_CIRCUIT_PREFIX, CircuitBreaker
from ..guard.deadline import Deadline, use_deadline
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, use_tracer
from ..sat.backend import resolve_backend, use_backend
from ..sat.incremental import SessionPool, use_session_pool
from .executor import JobExecutor
from .faults import FaultPlan
from .jobs import Job, JobResult
from .journal import Journal

__all__ = ["RetryPolicy", "DegradePolicy", "CampaignRunner", "CampaignReport"]


@dataclass(frozen=True)
class RetryPolicy:
    """Budget and escalation schedule for verification attempts.

    Attempt ``a`` (1-based) runs with ``base * escalation**(a - 1)``
    conflicts/seconds, capped.  The base comes from the job when set,
    otherwise from this policy; a base of ``None`` means unbounded (no
    budget of that kind is enforced).
    """

    max_attempts: int = 3
    escalation: float = 2.0
    base_conflicts: Optional[int] = 100_000
    conflicts_cap: int = 2_000_000
    base_seconds: Optional[float] = None
    seconds_cap: Optional[float] = None
    #: supervision budgets (see :mod:`repro.guard`): a pipeline-wide wall
    #: deadline and memory ceiling per attempt, escalated and capped like
    #: the SAT budgets.  ``None`` (the default) enforces neither.
    base_wall_seconds: Optional[float] = None
    wall_cap: Optional[float] = None
    base_memory_mb: Optional[float] = None
    memory_cap_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be at least 1")
        if self.escalation < 1.0:
            raise CampaignError("escalation factor must be >= 1")

    def budget_for(
        self, job: Job, attempt: int
    ) -> Tuple[Optional[int], Optional[float]]:
        """The (max_conflicts, max_seconds) budget of one attempt."""
        factor = self.escalation ** (attempt - 1)
        base_c = job.max_conflicts if job.max_conflicts is not None \
            else self.base_conflicts
        conflicts = None
        if base_c is not None:
            conflicts = min(int(base_c * factor), self.conflicts_cap)
        base_s = job.max_seconds if job.max_seconds is not None \
            else self.base_seconds
        seconds = None
        if base_s is not None:
            seconds = base_s * factor
            if self.seconds_cap is not None:
                seconds = min(seconds, self.seconds_cap)
        return conflicts, seconds

    def guard_budget_for(
        self, job: Job, attempt: int
    ) -> Tuple[Optional[float], Optional[float]]:
        """The (max_wall_seconds, max_memory_mb) supervision budget of one
        attempt — escalated exactly like the SAT budget, so a wall-clock
        or memory kill retries bigger, the paper's 4 GB-limit protocol."""
        factor = self.escalation ** (attempt - 1)
        base_w = job.max_wall_seconds if job.max_wall_seconds is not None \
            else self.base_wall_seconds
        wall = None
        if base_w is not None:
            wall = base_w * factor
            if self.wall_cap is not None:
                wall = min(wall, self.wall_cap)
        base_m = job.max_memory_mb if job.max_memory_mb is not None \
            else self.base_memory_mb
        memory = None
        if base_m is not None:
            memory = base_m * factor
            if self.memory_cap_mb is not None:
                memory = min(memory, self.memory_cap_mb)
        return wall, memory


@dataclass(frozen=True)
class DegradePolicy:
    """What to do when a method exhausts its retries.

    ``fallback_method`` re-queues failed ``rewriting`` jobs under the
    Positive-Equality baseline (the full, un-rewritten formula); set it to
    ``None`` to go straight to ``INCONCLUSIVE``.
    """

    fallback_method: Optional[str] = "positive_equality"


@dataclass
class CampaignReport:
    """Aggregate outcome of a campaign run."""

    results: Dict[str, JobResult]
    #: jobs whose finish was replayed from the journal (not re-run).
    replayed: int = 0
    #: mid-file corrupt journal lines that were skipped on load.
    corrupt_lines: int = 0
    #: True when the journal ended in a torn line (crash signature).
    torn_tail: bool = False
    #: worker processes the campaign ran with (1 = in-process).
    workers: int = 1
    #: wall-clock seconds of this run (excludes replayed work).
    wall_seconds: float = 0.0
    #: ``on_result`` callback invocations that raised (and were contained).
    callback_errors: int = 0
    #: campaign-wide metrics: per-job verification metrics summed across
    #: jobs plus ``campaign.*`` scheduling counters (jobs run, per-job
    #: wall/CPU seconds, worker crashes).
    metrics: Dict[str, float] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results.values():
            tally[result.status] = tally.get(result.status, 0) + 1
        return tally

    def exit_code(self) -> int:
        """0 = all proved; 1 = a bug was found; 4 = inconclusive jobs."""
        counts = self.counts()
        if counts.get("BUG_FOUND"):
            return 1
        if counts.get("INCONCLUSIVE"):
            return 4
        return 0

    def summary(self) -> str:
        header = (
            f"{'job':<28} {'status':<13} {'method':<18} "
            f"{'tries':>5} {'total':>8}"
        )
        lines = [header, "-" * len(header)]
        for result in self.results.values():
            total = result.timings.get("total", 0.0)
            note = " (journal)" if result.from_journal else ""
            detail = f"  [{result.detail}]" if result.detail else ""
            lines.append(
                f"{result.job_id:<28} {result.status:<13} "
                f"{result.method:<18} {result.attempts:>5} "
                f"{total:>7.2f}s{note}{detail}"
            )
        tally = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        )
        workers = f", {self.workers} workers" if self.workers > 1 else ""
        lines.append(
            f"{len(self.results)} job(s): {tally}"
            f" ({self.replayed} replayed from journal"
            f"{workers}, {self.wall_seconds:.2f}s wall)"
        )
        if self.callback_errors:
            lines.append(
                f"warning: {self.callback_errors} on_result callback "
                "error(s) were journaled and skipped"
            )
        if self.corrupt_lines:
            lines.append(
                f"warning: skipped {self.corrupt_lines} corrupt journal line(s)"
            )
        return "\n".join(lines)


class CampaignRunner:
    """Executes a batch of jobs against a crash-safe journal.

    Args:
        journal_path: JSONL journal; created if missing, resumed if not.
        retry: budget/escalation schedule (:class:`RetryPolicy`).
        degrade: fallback behaviour (:class:`DegradePolicy`).
        verify_fn: override for :func:`repro.core.verify` (tests/monitors).
        fault_plan: optional :class:`~repro.campaign.faults.FaultPlan`
            consulted at the verify seam on every attempt.
        on_result: callback invoked with ``(job, result)`` after every job
            reaches a terminal state (including journal replays).  An
            exception it raises is journaled as a ``callback_error`` event
            and the campaign continues; it does not abort the batch.
        log: line sink for progress messages (e.g. ``print``).
        analyze: run the :mod:`repro.analysis` soundness analyzers on
            every verification; their findings ride in
            :attr:`JobResult.diagnostics` and the journal's finish
            records, so they survive crash-and-resume.
        certify: certify every verdict (``verify(certify=True)``): DRUP
            proofs are checked for PROVED jobs, counterexamples replayed
            and minimized for BUG_FOUND ones.  The witness digest summary
            rides in :attr:`JobResult.witness` and the journal's finish
            records, so it survives crash-and-resume.
        workers: worker processes to fan jobs out to; ``1`` (the default)
            runs everything in this process.  The parent stays the single
            journal writer either way (see :mod:`repro.campaign.parallel`).
        breaker_threshold: open a per-config-family circuit after this
            many *consecutive* ``INCONCLUSIVE`` outcomes in the family
            (see :meth:`repro.campaign.jobs.Job.breaker_key`); the family's
            remaining jobs short-circuit to ``INCONCLUSIVE`` without
            running and one ``circuit_open`` event is journaled.
            ``None`` (the default) disables the breaker.
        hang_timeout: parallel runs only — seconds of heartbeat silence
            after which a busy worker is declared hung, escalated
            terminate→kill, journaled as a ``WorkerHung`` failed attempt,
            and its job re-queued.
        heartbeat_interval: parallel runs only — seconds between worker
            heartbeats (emitted from the pipeline's deadline check
            sites).  Keep well under ``hang_timeout``.
        sat_backend: SAT backend name for every verification in the
            campaign (:mod:`repro.sat.backend`); ``None`` keeps the
            ambient/environment selection.  Validated eagerly.
        incremental_sat: keep a per-process
            :class:`~repro.sat.incremental.SessionPool` alive across the
            campaign's jobs (default on): same-digest CNFs — adjacent
            grid points whose rewritten formulas coincide, and budget-
            escalation retries — resume a live solver with its learned
            clauses instead of solving cold.  Only effective with the
            reference backend.
    """

    def __init__(
        self,
        journal_path: str,
        retry: Optional[RetryPolicy] = None,
        degrade: Optional[DegradePolicy] = None,
        verify_fn: Optional[Callable] = None,
        fault_plan: Optional[FaultPlan] = None,
        on_result: Optional[Callable[[Job, JobResult], None]] = None,
        log: Optional[Callable[[str], None]] = None,
        strict_journal: bool = False,
        analyze: bool = False,
        certify: bool = False,
        workers: int = 1,
        breaker_threshold: Optional[int] = None,
        hang_timeout: float = 30.0,
        heartbeat_interval: float = 1.0,
        sat_backend: Optional[str] = None,
        incremental_sat: bool = True,
    ) -> None:
        self._verify_is_default = verify_fn is None
        if verify_fn is None:
            from ..core.verifier import verify as verify_fn
        if workers < 1:
            raise CampaignError("workers must be at least 1")
        self.journal_path = journal_path
        self.retry = retry or RetryPolicy()
        self.degrade = degrade or DegradePolicy()
        self.verify_fn = verify_fn
        self.fault_plan = fault_plan
        self.on_result = on_result
        self._log = log or (lambda message: None)
        self.strict_journal = strict_journal
        self.analyze = analyze
        self.certify = certify
        self.workers = workers
        self.hang_timeout = hang_timeout
        self.heartbeat_interval = heartbeat_interval
        self.sat_backend = sat_backend
        if sat_backend is not None:
            # Fail fast on a misspelled/unavailable backend, before any
            # journal is opened or worker spawned.
            resolve_backend(sat_backend)
        self.incremental_sat = incremental_sat
        self._breaker = (
            CircuitBreaker(breaker_threshold)
            if breaker_threshold is not None else None
        )

    # ------------------------------------------------------------------

    def run(self, jobs: Optional[Iterable[Job]] = None) -> CampaignReport:
        """Run (or resume) the campaign; returns when every job is terminal.

        With ``jobs=None`` the job list is recovered from the journal's
        ``enqueue`` records, so ``CampaignRunner(path).run()`` resumes an
        interrupted campaign without re-supplying the spec.  When ``jobs``
        *is* supplied on resume, each job is checked against the journaled
        spec of the same id; any drift raises :class:`CampaignError`
        naming the fields, instead of silently running one spec while the
        journal records another.
        """
        started = time.perf_counter()
        replay = Journal.load(self.journal_path, strict=self.strict_journal)
        known_specs = replay.job_specs()
        if jobs is None:
            if not known_specs:
                raise CampaignError(
                    f"no jobs supplied and journal {self.journal_path!r} "
                    "records none to resume"
                )
            job_list = [Job.from_dict(spec) for spec in known_specs.values()]
        else:
            job_list = list(jobs)
        if not job_list:
            raise CampaignError("the campaign has no jobs")
        seen = set()
        for job in job_list:
            if job.job_id in seen:
                raise CampaignError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
            if jobs is not None and job.job_id in known_specs:
                self._check_spec_drift(job, known_specs[job.job_id])

        finished = replay.finished()
        failed_attempts = replay.failed_attempts()
        results: Dict[str, JobResult] = {}
        replayed = 0
        self._registry = MetricsRegistry()
        self._callback_errors = 0

        with Journal(self.journal_path) as journal:
            for job in job_list:
                if job.job_id not in known_specs:
                    journal.append({"event": "enqueue", "job": job.to_dict()})
            to_run: List[Job] = []
            for job in job_list:
                if job.job_id in finished:
                    result = JobResult.from_dict(finished[job.job_id])
                    result.from_journal = True
                    results[job.job_id] = result
                    replayed += 1
                    self._log(f"{job.job_id}: {result.status} (from journal)")
                    # Re-seed the breaker so a resumed campaign reaches
                    # the same short-circuit decisions (the open
                    # transition was journaled live; don't re-journal).
                    self._record_breaker(job, result, journal=None)
                    self._invoke_callback(job, result, journal)
                else:
                    to_run.append(job)
            if to_run:
                cpu_count = os.cpu_count() or 1
                if self.workers > cpu_count:
                    # Oversubscription is pure scheduling overhead for
                    # this CPU-bound workload (the proximate cause of the
                    # old parallel bench's 0.87x "speedup" — 4 workers on
                    # a 1-CPU box).  Honour the user's choice, but leave
                    # a durable mark.
                    journal.append({
                        "event": "oversubscribed_workers",
                        "workers": self.workers,
                        "cpu_count": cpu_count,
                    })
                    self._log(
                        f"warning: {self.workers} workers on a "
                        f"{cpu_count}-CPU machine — CPU-bound jobs gain "
                        "nothing from oversubscription"
                    )
                if self.workers > 1 and len(to_run) > 1:
                    self._run_parallel(
                        to_run, journal, failed_attempts, results
                    )
                else:
                    self._run_sequential(
                        to_run, journal, failed_attempts, results
                    )

        return CampaignReport(
            results={job.job_id: results[job.job_id] for job in job_list},
            replayed=replayed,
            corrupt_lines=replay.corrupt_lines,
            torn_tail=replay.torn_tail,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            callback_errors=self._callback_errors,
            metrics=self._registry.values(),
        )

    # ------------------------------------------------------------------

    def _check_spec_drift(self, job: Job, journaled: Dict[str, object]) -> None:
        """Raise when a supplied job disagrees with its journaled spec."""
        try:
            recorded = Job.from_dict(journaled).to_dict()
        except CampaignError:
            # A spec this build cannot even parse would be replaced
            # wholesale; the drift check only guards silent divergence.
            return
        current = job.to_dict()
        drifted = sorted(
            name for name in current if current[name] != recorded.get(name)
        )
        if drifted:
            details = ", ".join(
                f"{name}: journal={recorded.get(name)!r} "
                f"supplied={current[name]!r}"
                for name in drifted
            )
            raise CampaignError(
                f"job {job.job_id!r} spec drifted from the journal "
                f"({details}); use a fresh journal or re-supply the "
                "journaled spec"
            )

    def _invoke_callback(
        self, job: Job, result: JobResult, journal: Journal
    ) -> None:
        """Run ``on_result``, containing (and journaling) its exceptions."""
        if self.on_result is None:
            return
        try:
            self.on_result(job, result)
        except Exception as exc:
            self._callback_errors += 1
            journal.append({
                "event": "callback_error",
                "job_id": job.job_id,
                "error": type(exc).__name__,
                "detail": str(exc),
            })
            self._log(
                f"{job.job_id}: on_result callback raised "
                f"{type(exc).__name__}: {exc} (journaled; campaign continues)"
            )

    def _finish_job(
        self, job: Job, result: JobResult, journal: Journal,
        results: Dict[str, JobResult],
    ) -> None:
        """Journal one terminal result (the single-writer append path)."""
        journal.append({"event": "finish", **result.to_dict()})
        results[job.job_id] = result
        self._registry.merge(result.metrics)
        self._record_breaker(job, result, journal)
        self._log(
            f"{job.job_id}: {result.status} after "
            f"{result.attempts} attempt(s) via {result.method}"
        )
        self._invoke_callback(job, result, journal)

    def _record_breaker(
        self, job: Job, result: JobResult, journal: Optional[Journal]
    ) -> None:
        """Feed one terminal outcome to the circuit breaker.

        Short-circuited results (the breaker's own decisions, marked by
        their detail prefix) are never recorded — they would keep a
        family's failure streak alive without new evidence.  The open
        transition is journaled once, live (``journal=None`` on replay).
        """
        if self._breaker is None:
            return
        if result.detail.startswith(SHORT_CIRCUIT_PREFIX):
            return
        family = job.breaker_key()
        opened = self._breaker.record(
            family, result.status == "INCONCLUSIVE"
        )
        if opened:
            if journal is not None:
                journal.append({
                    "event": "circuit_open",
                    "family": family,
                    "job_id": job.job_id,
                    "threshold": self._breaker.threshold,
                })
            self._log(
                f"circuit breaker OPEN for family {family!r} after "
                f"{self._breaker.threshold} consecutive INCONCLUSIVE "
                "result(s); its remaining jobs will short-circuit"
            )

    def _short_circuit_result(self, job: Job) -> JobResult:
        """The INCONCLUSIVE outcome of a job the breaker refused to run."""
        return JobResult(
            job_id=job.job_id,
            status="INCONCLUSIVE",
            method=job.method,
            attempts=0,
            detail=f"{SHORT_CIRCUIT_PREFIX} for family {job.breaker_key()!r}",
        )

    def _run_sequential(
        self,
        to_run: List[Job],
        journal: Journal,
        failed_attempts: Dict[Tuple[str, str], int],
        results: Dict[str, JobResult],
    ) -> None:
        executor = JobExecutor(
            self.verify_fn,
            self.retry,
            self.degrade,
            fault_plan=self.fault_plan,
            analyze=self.analyze,
            certify=self.certify,
            log=self._log,
            fault_journal=journal,
        )
        with ExitStack() as ambient:
            # One backend selection and one live session pool for the
            # whole batch: same-digest CNFs across jobs (and across a
            # job's escalation retries) resume incrementally.
            if self.sat_backend is not None:
                ambient.enter_context(
                    use_backend(resolve_backend(self.sat_backend))
                )
            if self.incremental_sat:
                ambient.enter_context(use_session_pool(SessionPool()))
            self._run_jobs_inline(
                executor, to_run, journal, failed_attempts, results
            )

    def _run_jobs_inline(
        self,
        executor: JobExecutor,
        to_run: List[Job],
        journal: Journal,
        failed_attempts: Dict[Tuple[str, str], int],
        results: Dict[str, JobResult],
    ) -> None:
        for job in to_run:
            if self._breaker is not None and self._breaker.is_open(
                job.breaker_key()
            ):
                self._finish_job(
                    job, self._short_circuit_result(job), journal, results
                )
                continue
            tracer = Tracer()
            # A per-job ambient deadline (no budgets of its own): the
            # anchor `slow` faults attach their stage delays to, and the
            # parent the executor's attempt-scoped budgets derive from —
            # mirroring the heartbeat deadline a parallel worker installs.
            with use_deadline(Deadline()), use_tracer(tracer):
                with tracer.span("campaign.job"):
                    result = executor.run_job(
                        job, journal.append, failed_attempts
                    )
            span = tracer.root
            self._registry.merge({
                "campaign.jobs_run": 1.0,
                "campaign.job_seconds": span.wall_seconds,
                "campaign.job_cpu_seconds": span.cpu_seconds,
            })
            self._finish_job(job, result, journal, results)

    def _run_parallel(
        self,
        to_run: List[Job],
        journal: Journal,
        failed_attempts: Dict[Tuple[str, str], int],
        results: Dict[str, JobResult],
    ) -> None:
        from .parallel import ParallelCampaignExecutor

        def merge(metrics: Dict[str, float]) -> None:
            self._registry.merge(metrics)

        executor = ParallelCampaignExecutor(
            workers=min(self.workers, len(to_run)),
            retry=self.retry,
            degrade=self.degrade,
            analyze=self.analyze,
            certify=self.certify,
            # The default verify is importable in every worker; only a
            # custom verify_fn needs to cross the process boundary.
            verify_fn=None if self._verify_is_default else self.verify_fn,
            fault_plan=self.fault_plan,
            journal=journal,
            log=self._log,
            failed_attempts=failed_attempts,
            on_finish=lambda job, result: self._finish_job(
                job, result, journal, results
            ),
            merge_metrics=merge,
            breaker=self._breaker,
            short_circuit=self._short_circuit_result,
            hang_timeout=self.hang_timeout,
            heartbeat_interval=self.heartbeat_interval,
            sat_backend=self.sat_backend,
            incremental_sat=self.incremental_sat,
        )
        executor.run(to_run)
        crashes = executor.worker_crashes
        if crashes:
            self._registry.merge({"campaign.worker_crashes": float(crashes)})
        hangs = executor.worker_hangs
        if hangs:
            self._registry.merge({"campaign.worker_hangs": float(hangs)})
