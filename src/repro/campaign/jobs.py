"""Job and outcome records for verification campaigns.

A :class:`Job` is a fully serializable description of one verification
run — processor configuration, method, optional planted bug, and the
*base* SAT budget of the first attempt (the runner escalates it on
retries).  A :class:`JobResult` is the terminal record the campaign
produces for every job; its ``status`` is always one of
:data:`TERMINAL_STATES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.results import VerificationResult
from ..errors import CampaignError
from ..processor.bugs import Bug
from ..processor.params import ProcessorConfig

__all__ = ["TERMINAL_STATES", "Job", "JobResult"]

#: Every job ends in exactly one of these states.  ``PROVED`` — the design
#: satisfies the Burch–Dill criterion; ``BUG_FOUND`` — verification
#: produced a counterexample or the rewriting rules flagged a slice;
#: ``INCONCLUSIVE`` — every budget/fallback was exhausted without a
#: verdict (the campaign analogue of the paper's out-of-memory entries).
TERMINAL_STATES = ("PROVED", "BUG_FOUND", "INCONCLUSIVE")


@dataclass(frozen=True)
class Job:
    """One verification job in a campaign."""

    job_id: str
    n_rob: int
    issue_width: int
    retire_width: Optional[int] = None
    #: workload family (see :mod:`repro.processor.families`).
    family: str = "reg-reg"
    method: str = "rewriting"
    criterion: str = "disjunction"
    bug_kind: Optional[str] = None
    bug_entry: int = 1
    bug_operand: int = 1
    #: base budgets of attempt 1; ``None`` defers to the runner's policy.
    max_conflicts: Optional[int] = None
    max_seconds: Optional[float] = None
    #: base *supervision* budgets of attempt 1 — a pipeline-wide wall
    #: deadline and memory ceiling (see :mod:`repro.guard`); ``None``
    #: defers to the runner's policy, which may also leave them unset.
    max_wall_seconds: Optional[float] = None
    max_memory_mb: Optional[float] = None

    def config(self) -> ProcessorConfig:
        return ProcessorConfig(
            n_rob=self.n_rob,
            issue_width=self.issue_width,
            retire_width=self.retire_width,
            family=self.family,
        )

    def bug(self) -> Optional[Bug]:
        if self.bug_kind is None:
            return None
        return Bug(self.bug_kind, entry=self.bug_entry, operand=self.bug_operand)

    def breaker_key(self) -> str:
        """Config-sibling key for the circuit breaker.

        Jobs sharing one key differ only in reorder-buffer size — the
        axis the paper's scaling tables sweep.  When K siblings in a row
        end INCONCLUSIVE, the larger configurations in the group are
        hopeless too (cost grows monotonically with ``n_rob``), so the
        breaker short-circuits them instead of burning their budgets.
        """
        parts = [self.method, f"k{self.issue_width}", self.criterion]
        if self.family != "reg-reg":
            parts.append(self.family)
        if self.retire_width is not None:
            parts.append(f"l{self.retire_width}")
        if self.bug_kind is not None:
            parts.append(f"{self.bug_kind}@{self.bug_entry}.{self.bug_operand}")
        return "/".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "n_rob": self.n_rob,
            "issue_width": self.issue_width,
            "retire_width": self.retire_width,
            "family": self.family,
            "method": self.method,
            "criterion": self.criterion,
            "bug_kind": self.bug_kind,
            "bug_entry": self.bug_entry,
            "bug_operand": self.bug_operand,
            "max_conflicts": self.max_conflicts,
            "max_seconds": self.max_seconds,
            "max_wall_seconds": self.max_wall_seconds,
            "max_memory_mb": self.max_memory_mb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise CampaignError(
                f"job spec has unknown field(s): {sorted(unknown)}"
            )
        if "job_id" not in data:
            raise CampaignError("job spec is missing 'job_id'")
        return cls(**data)

    @classmethod
    def build(
        cls,
        n_rob: int,
        issue_width: int,
        *,
        job_id: Optional[str] = None,
        **kwargs: Any,
    ) -> "Job":
        """Construct a job, deriving a readable id when none is given."""
        if job_id is None:
            method = kwargs.get("method", "rewriting")
            abbrev = "rw" if method == "rewriting" else "pe"
            job_id = f"{abbrev}-N{n_rob}-k{issue_width}"
            retire = kwargs.get("retire_width")
            if retire is not None and retire != issue_width:
                job_id += f"-l{retire}"
            family = kwargs.get("family", "reg-reg")
            if family != "reg-reg":
                job_id += f"-{family}"
            bug_kind = kwargs.get("bug_kind")
            if bug_kind is not None:
                job_id += f"-{bug_kind}@{kwargs.get('bug_entry', 1)}"
        return cls(job_id=job_id, n_rob=n_rob, issue_width=issue_width, **kwargs)


@dataclass
class JobResult:
    """Terminal outcome of one campaign job."""

    job_id: str
    status: str  # one of TERMINAL_STATES
    #: the method that produced the verdict (may differ from the job's
    #: requested method after graceful degradation).
    method: str
    #: total verify attempts across all methods, including failed ones.
    attempts: int
    detail: str = ""
    suspected_entry: Optional[int] = None
    timings: Dict[str, float] = field(default_factory=dict)
    #: CNF statistics of the deciding run (Tables 3/5 layout), if any.
    stats: Dict[str, float] = field(default_factory=dict)
    #: serialized soundness findings of the deciding run (dicts in the
    #: :meth:`repro.analysis.diagnostics.Diagnostic.to_dict` layout);
    #: populated when the campaign runs with ``analyze=True`` and
    #: journaled with the finish record so they survive crash-and-resume.
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    #: flat perf metrics of the deciding run, in the
    #: :func:`repro.obs.metrics.snapshot_from_result` layout
    #: (``timings.*``, ``sat.*``, ``rewrite.*``, ``trace.*``, ...);
    #: journaled with the finish record so they survive crash-and-resume.
    metrics: Dict[str, float] = field(default_factory=dict)
    #: witness digest summary of the deciding run, in the
    #: :meth:`repro.witness.types.Witness.summary_dict` layout; populated
    #: when the campaign runs with ``certify=True`` and journaled with
    #: the finish record so the certification verdict (proof digest,
    #: minimized-counterexample size, validation status) survives
    #: crash-and-resume without re-running the checker.
    witness: Optional[Dict[str, Any]] = None
    #: id of the worker process that produced this result under
    #: ``CampaignRunner(..., workers=N)``; ``None`` for in-process runs.
    worker: Optional[int] = None
    #: True when this result was replayed from the journal, not re-run.
    from_journal: bool = False

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATES:
            raise CampaignError(
                f"{self.status!r} is not a terminal state {TERMINAL_STATES}"
            )

    @classmethod
    def from_verification(
        cls, job: Job, method: str, attempts: int, result: VerificationResult
    ) -> "JobResult":
        if result.correct:
            status, detail = "PROVED", ""
        else:
            status = "BUG_FOUND"
            detail = result.failure_detail or "SAT counterexample"
        stats = result.encoding_stats
        diagnostics = [
            diag.to_dict() if hasattr(diag, "to_dict") else dict(diag)
            for diag in getattr(result, "diagnostics", []) or []
        ]
        from ..obs.metrics import snapshot_from_result

        metrics = snapshot_from_result(result).metrics
        witness = (
            result.witness.summary_dict()
            if getattr(result, "witness", None) is not None
            else None
        )
        return cls(
            job_id=job.job_id,
            status=status,
            method=method,
            attempts=attempts,
            detail=detail,
            suspected_entry=result.suspected_entry,
            timings=dict(result.timings),
            stats=dict(stats.as_row()) if stats is not None else {},
            diagnostics=diagnostics,
            metrics=metrics,
            witness=witness,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "method": self.method,
            "attempts": self.attempts,
            "detail": self.detail,
            "suspected_entry": self.suspected_entry,
            "timings": self.timings,
            "stats": self.stats,
            "diagnostics": self.diagnostics,
            "metrics": self.metrics,
            "witness": self.witness,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(
            job_id=data["job_id"],
            status=data["status"],
            method=data.get("method", "rewriting"),
            attempts=int(data.get("attempts", 1)),
            detail=data.get("detail", ""),
            suspected_entry=data.get("suspected_entry"),
            timings=dict(data.get("timings", {})),
            stats=dict(data.get("stats", {})),
            diagnostics=list(data.get("diagnostics", [])),
            metrics=dict(data.get("metrics", {})),
            witness=data.get("witness"),
            worker=data.get("worker"),
        )
