"""Term-level counterexample reconstruction for SAT verdicts.

A SAT model of the encoded validity problem is a flat Boolean assignment
over primary inputs: original Boolean variables, the fresh ``vp!`` Boolean
variables of predicate elimination, and the ``e_ij`` equality variables
(including transitivity fill edges).  This module lifts it back through
the encoding layers of :mod:`repro.encode` into a concrete EUFM
interpretation — the counterexample the paper's debugging story needs:

1. **equivalence classes** — union-find over the term variables, merging
   every pair whose ``e_ij`` variable the model set true; the transitivity
   constraints of the CNF guarantee the closure is consistent with the
   false edges, and p-variables (maximal diversity) are never merged
   because no ``e_ij`` edge exists for them;
2. **domain values** — one distinct value per class, so equality of
   values coincides with the model's equality relation;
3. **function tables** — each fresh ``vc!``/``vp!`` variable carries its
   ``(symbol, argument-terms)`` provenance from UF elimination; evaluating
   the (UF-free) argument terms under the interpretation built so far
   yields concrete argument tuples, and first-occurrence-wins matches the
   nested-ITE semantics of the encoding exactly;
4. **replay** — the memory-free correctness formula is evaluated under
   the synthesized interpretation through :mod:`repro.eufm.evaluator`;
   a genuine counterexample must evaluate to ``False``;
5. **minimization** — greedily drop assignment variables that are
   don't-cares (replay still falsifies under either value, with the other
   variables held fixed and already-dropped ones at their deterministic
   defaults).

The replay target is :attr:`~repro.encode.evc.EncodedValidity.memory_free`
— the exact formula the SAT instance decided.  Under the precise memory
mode that formula is equivalid with the original correctness formula;
under the conservative abstraction (``mem_read$``/``mem_write$`` as
general UFs) the counterexample falsifies the *abstraction*, which the
rendered diagnosis states explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..encode.evc import EncodedValidity
from ..errors import WitnessError
from ..eufm.ast import Eq, Expr, TermVar
from ..eufm.evaluator import Interpretation, _eval_node, infer_memory_sorts
from ..eufm.polarity import NEG
from ..eufm.printer import to_sexpr
from ..eufm.traversal import iter_dag, term_variables
from ..guard.deadline import current_deadline
from ..obs.tracer import current_tracer

__all__ = ["TermCounterexample", "reconstruct_counterexample", "replay_assignment"]


@dataclass
class TermCounterexample:
    """A reconstructed, replayed, minimized term-level counterexample."""

    #: the decoded SAT model (``None`` values are solver don't-cares).
    raw_assignment: Dict[str, Optional[bool]]
    #: equivalence classes of term-variable names (non-singletons first).
    classes: List[List[str]]
    #: concrete domain value of every term variable.
    term_values: Dict[str, int]
    #: concrete values of the original Boolean variables.
    bool_values: Dict[str, bool]
    #: synthesized UF tables: symbol -> [(argument values, result)].
    uf_tables: Dict[str, List[Tuple[Tuple[int, ...], int]]]
    #: synthesized UP tables: symbol -> [(argument values, result)].
    up_tables: Dict[str, List[Tuple[Tuple[int, ...], bool]]]
    domain_size: int
    #: value of the correctness formula under the interpretation; a
    #: genuine counterexample replays to ``False``.
    replay_value: Optional[bool] = None
    #: the minimized assignment (don't-care variables dropped).
    minimized: Dict[str, bool] = field(default_factory=dict)
    #: value of the formula under the minimized assignment alone.
    minimized_replay_value: Optional[bool] = None
    #: ``"precise"`` or ``"conservative"`` (which memory story the
    #: replayed formula lives under).
    memory_mode: str = "precise"
    #: positively-occurring equations the interpretation falsifies —
    #: the spec/impl disagreements, rendered as s-expressions.
    disagreements: List[str] = field(default_factory=list)

    @property
    def raw_size(self) -> int:
        """Number of variables the SAT model actually decided."""
        return sum(1 for value in self.raw_assignment.values() if value is not None)

    @property
    def minimized_size(self) -> int:
        return len(self.minimized)

    @property
    def replayed_false(self) -> bool:
        return self.replay_value is False and self.minimized_replay_value is False

    def render(self, max_disagreements: int = 8) -> str:
        """Human-readable diagnosis of the counterexample."""
        lines = [
            f"counterexample over a {self.domain_size}-value domain "
            f"({self.memory_mode} memory mode); formula replays to "
            f"{self.replay_value}",
            f"  assignment: {self.raw_size} model variables, "
            f"{self.minimized_size} after don't-care minimization",
        ]
        merged = [group for group in self.classes if len(group) > 1]
        if merged:
            lines.append("  equal term classes:")
            for group in merged:
                value = self.term_values[group[0]]
                lines.append(f"    {{{', '.join(group)}}} = {value}")
        keep = sorted(self.minimized.items())
        if keep:
            shown = ", ".join(f"{name}={value}" for name, value in keep[:12])
            more = f", ... ({len(keep) - 12} more)" if len(keep) > 12 else ""
            lines.append(f"  minimized assignment: {shown}{more}")
        for symbol, entries in sorted(self.uf_tables.items()):
            rows = ", ".join(
                f"{symbol}{list(args)} = {value}" for args, value in entries[:6]
            )
            more = f", ... ({len(entries) - 6} more)" if len(entries) > 6 else ""
            lines.append(f"  UF {symbol}: {rows}{more}")
        for symbol, entries in sorted(self.up_tables.items()):
            rows = ", ".join(
                f"{symbol}{list(args)} = {value}" for args, value in entries[:6]
            )
            more = f", ... ({len(entries) - 6} more)" if len(entries) > 6 else ""
            lines.append(f"  UP {symbol}: {rows}{more}")
        if self.disagreements:
            lines.append("  falsified spec equalities (positive occurrences):")
            for text in self.disagreements[:max_disagreements]:
                lines.append(f"    {text}")
            hidden = len(self.disagreements) - max_disagreements
            if hidden > 0:
                lines.append(f"    ... ({hidden} more)")
        if self.memory_mode == "conservative":
            lines.append(
                "  note: memories are abstracted as general UFs here; the "
                "assignment falsifies the abstracted formula"
            )
        return "\n".join(lines)

    def summary_dict(self) -> Dict[str, object]:
        """Compact journal-safe summary (no full tables or assignments)."""
        return {
            "raw_size": self.raw_size,
            "minimized_size": self.minimized_size,
            "domain_size": self.domain_size,
            "classes": len(self.classes),
            "merged_classes": sum(1 for c in self.classes if len(c) > 1),
            "replay_value": self.replay_value,
            "minimized_replay_value": self.minimized_replay_value,
            "memory_mode": self.memory_mode,
            "disagreements": len(self.disagreements),
        }


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, name: str) -> None:
        self._parent.setdefault(name, name)

    def find(self, name: str) -> str:
        parent = self._parent
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:  # path compression
            parent[name], name = root, parent[name]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic orientation: the lexicographically smaller
            # name wins, so class roots are stable across runs.
            low, high = sorted((root_a, root_b))
            self._parent[high] = low

    def classes(self) -> List[List[str]]:
        groups: Dict[str, List[str]] = {}
        for name in self._parent:
            groups.setdefault(self.find(name), []).append(name)
        ordered = [sorted(members) for members in groups.values()]
        ordered.sort(key=lambda members: (-len(members), members[0]))
        return ordered


def _term_universe(encoded: EncodedValidity) -> List[TermVar]:
    """Every term variable the interpretation must value: the variables
    of the memory-free formula plus the fresh ``vc!`` variables (which
    appear only in the post-elimination artifacts)."""
    if encoded.memory_free is None:
        raise WitnessError(
            "encoding artifacts carry no memory-free formula; "
            "cannot reconstruct a counterexample"
        )
    universe: Dict[str, TermVar] = {
        var.name: var for var in term_variables(encoded.memory_free)
    }
    if encoded.uf_elim is not None:
        for var in encoded.uf_elim.fresh_term_vars:
            universe.setdefault(var.name, var)
    return [universe[name] for name in sorted(universe)]


def _eij_pairs(encoded: EncodedValidity):
    """All (pair, eij variable) edges: primary encoding plus chordal fill."""
    pairs = {}
    if encoded.eij is not None:
        pairs.update(encoded.eij.eij_vars)
    if encoded.transitivity is not None:
        pairs.update(encoded.transitivity.fill_vars)
    return pairs


def build_interpretation(
    encoded: EncodedValidity, assignment: Dict[str, Optional[bool]]
) -> Tuple[Interpretation, List[List[str]]]:
    """Synthesize a concrete EUFM interpretation from a named assignment.

    Returns the interpretation and the term-variable equivalence classes
    (transitivity closure of the true ``e_ij`` edges).
    """
    union = _UnionFind()
    variables = _term_universe(encoded)
    for var in variables:
        union.add(var.name)
    for pair, eij_var in _eij_pairs(encoded).items():
        if assignment.get(eij_var.name) is True:
            a, b = tuple(pair)
            union.union(a.name, b.name)

    classes = union.classes()
    # One distinct domain value per class: value equality coincides with
    # the model's equality relation.  Maximal diversity for p-variables
    # holds automatically — they sit in no e_ij edge, so they keep
    # singleton classes and therefore unique values.
    term_values: Dict[str, int] = {}
    for value, members in enumerate(classes):
        for name in members:
            term_values[name] = value
    domain_size = max(len(classes), 1)

    interp = Interpretation(domain_size=domain_size, term_values=term_values)

    # Original Boolean variables and the fresh vp! predicate variables.
    for name, value in assignment.items():
        if name.startswith("eij!") or value is None:
            continue
        interp.set_bool(name, value)

    # Function/predicate tables from the provenance of UF elimination.
    # Provenance argument terms are in the post-elimination language
    # (UF-free: variables and ITEs only), so they evaluate directly under
    # the term values fixed above.  First occurrence wins, matching the
    # nested-ITE chain ITE(args=args_1, vc_1, ...) of the encoding.
    if encoded.uf_elim is not None:
        prov = encoded.uf_elim.provenance
        for fresh in encoded.uf_elim.fresh_term_vars:
            symbol, args = prov[fresh]
            arg_values = tuple(_evaluate(arg, interp) for arg in args)
            if arg_values not in interp.uf_table(symbol):
                interp.set_uf(symbol, arg_values, interp.term_value(fresh.name))
        for fresh in encoded.uf_elim.fresh_bool_vars:
            symbol, args = prov[fresh]
            arg_values = tuple(_evaluate(arg, interp) for arg in args)
            if arg_values not in interp.up_table(symbol):
                value = assignment.get(fresh.name)
                if value is None:
                    value = interp.bool_value(fresh.name)
                interp.set_up(symbol, arg_values, value)
    return interp, classes


def _evaluate(root: Expr, interp: Interpretation):
    """Evaluate ``root`` and memoize per-node values (shared DAG walk)."""
    memory_sorted = infer_memory_sorts(root)
    values: Dict[Expr, object] = {}
    for node in iter_dag(root):
        values[node] = _eval_node(node, values, interp, memory_sorted)
    return values[root]


def _evaluate_with_values(
    root: Expr, interp: Interpretation
) -> Tuple[object, Dict[Expr, object]]:
    memory_sorted = infer_memory_sorts(root)
    values: Dict[Expr, object] = {}
    for node in iter_dag(root):
        values[node] = _eval_node(node, values, interp, memory_sorted)
    return values[root], values


def replay_assignment(
    encoded: EncodedValidity, assignment: Dict[str, Optional[bool]]
) -> bool:
    """Value of the memory-free correctness formula under ``assignment``.

    Builds a fresh interpretation (classes, tables and all) from the
    assignment and evaluates; a counterexample is genuine exactly when
    this returns ``False``.
    """
    interp, _ = build_interpretation(encoded, assignment)
    value = _evaluate(encoded.memory_free, interp)
    if not isinstance(value, bool):  # pragma: no cover - formula root
        raise WitnessError("replay target did not evaluate to a Boolean")
    return value


def _minimize(
    encoded: EncodedValidity, assignment: Dict[str, Optional[bool]]
) -> Dict[str, bool]:
    """Greedy don't-care elimination: drop a variable when the formula
    still replays false under *both* of its values (other variables held
    fixed; dropped ones at their deterministic seed defaults)."""
    current: Dict[str, bool] = {
        name: value for name, value in assignment.items() if value is not None
    }
    deadline = current_deadline()
    for name in sorted(current):
        deadline.check("witness")
        kept = current.pop(name)
        still_false = True
        for candidate in (True, False):
            trial = dict(current)
            trial[name] = candidate
            if replay_assignment(encoded, trial):
                still_false = False
                break
        if not still_false:
            current[name] = kept
    return current


def _find_disagreements(
    encoded: EncodedValidity, interp: Interpretation
) -> List[str]:
    """Positively-occurring equations the interpretation falsifies.

    These are the equalities the correctness formula *asserts* (spec
    state = implementation state after the Burch–Dill diagram) and the
    counterexample breaks — the most useful lines of the diagnosis.
    """
    if encoded.polarity is None:
        return []
    _, values = _evaluate_with_values(encoded.memory_free, interp)
    found: List[str] = []
    seen: Set[Expr] = set()
    for node, mask in encoded.polarity.polarity.items():
        if not isinstance(node, Eq) or node in seen:
            continue
        seen.add(node)
        if mask & NEG:
            continue  # general occurrence: not a pure assertion
        if node in values and values[node] is False:
            text = to_sexpr(node)
            if len(text) > 120:
                text = text[:117] + "..."
            found.append(text)
    found.sort()
    return found


def reconstruct_counterexample(
    encoded: EncodedValidity,
    assignment: Dict[str, Optional[bool]],
    minimize: bool = True,
) -> TermCounterexample:
    """Lift a decoded SAT model to a :class:`TermCounterexample`.

    Builds the interpretation, replays the formula, optionally minimizes
    the assignment, and collects the diagnosis.  Raises
    :class:`~repro.errors.WitnessError` when the encoding artifacts
    needed for reconstruction are missing (constant collapse).
    """
    tracer = current_tracer()
    current_deadline().check("witness")
    with tracer.span("witness.reconstruct"):
        interp, classes = build_interpretation(encoded, assignment)
        uf_tables = {}
        up_tables = {}
        if encoded.uf_elim is not None:
            symbols = {s for s, _ in encoded.uf_elim.provenance.values()}
            for symbol in sorted(symbols):
                table = interp.uf_table(symbol)
                if table:
                    uf_tables[symbol] = sorted(table.items())
                ptable = interp.up_table(symbol)
                if ptable:
                    up_tables[symbol] = sorted(ptable.items())
        replay_value = _evaluate(encoded.memory_free, interp)
        cex = TermCounterexample(
            raw_assignment=dict(assignment),
            classes=classes,
            term_values={
                var.name: interp.term_value(var.name)
                for var in _term_universe(encoded)
            },
            bool_values={
                name: value
                for name, value in assignment.items()
                if value is not None and not name.startswith("eij!")
            },
            uf_tables=uf_tables,
            up_tables=up_tables,
            domain_size=interp.domain_size,
            replay_value=replay_value,
            memory_mode="precise" if encoded.memory is not None else "conservative",
        )
        tracer.add("witness.classes", len(classes))
        tracer.add(
            "witness.merged_classes",
            sum(1 for group in classes if len(group) > 1),
        )

    with tracer.span("witness.diagnose"):
        cex.disagreements = _find_disagreements(encoded, interp)

    if minimize and replay_value is False:
        with tracer.span("witness.minimize") as span:
            cex.minimized = _minimize(encoded, assignment)
            cex.minimized_replay_value = replay_assignment(
                encoded, dict(cex.minimized)
            )
            span.add("witness.raw_vars", cex.raw_size)
            span.add("witness.minimized_vars", cex.minimized_size)
            span.add(
                "witness.dropped_vars", cex.raw_size - cex.minimized_size
            )
    return cex
