"""DRUP clause proofs and an independent reverse-unit-propagation checker.

A DRUP proof (Delete Reverse Unit Propagation; Heule, Hunt & Wetzler) is
the standard certificate format for CDCL UNSAT verdicts: an ordered log of
clause *additions* (each of which must be RUP with respect to the clause
database accumulated so far) and clause *deletions*, ending in the empty
clause.  A clause ``C`` is RUP when assuming the negation of every literal
of ``C`` and running unit propagation over the database yields a conflict;
every first-UIP learned clause of a CDCL solver has this property, so the
solver's learned-clause log *is* a proof.

Independence is the whole point of this module: :func:`check_drup` shares
**no code** with :class:`repro.sat.solver.Solver`.  The solver uses
two-watched-literal propagation over mutable clause objects; the checker
here uses counting-based propagation over immutable literal tuples with
occurrence lists, rebuilt per proof step from the checker's own clause
database.  A bug in the solver's propagation, conflict analysis or clause
minimization therefore cannot silently certify its own bogus proof.

The proof is certified against the exact CNF handed to the solver — the
post-``dedupe()``, post-Tseitin clause list of
:attr:`repro.encode.evc.EncodedValidity.cnf` — not against any earlier
pipeline artifact.

Text format (one step per line, DIMACS-style, 0-terminated)::

    1 -3 4 0        clause addition
    d 1 -3 0        clause deletion
    0               the empty clause (must be the final addition)
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import WitnessError
from ..guard.deadline import current_deadline
from ..sat.cnf import Cnf

__all__ = [
    "DrupStep",
    "DrupProof",
    "DrupCheckResult",
    "check_drup",
    "cnf_with_assumptions",
]


@dataclass(frozen=True)
class DrupStep:
    """One proof step: a clause addition or deletion."""

    delete: bool
    literals: Tuple[int, ...]

    def to_line(self) -> str:
        body = " ".join(str(lit) for lit in self.literals)
        prefix = "d " if self.delete else ""
        return f"{prefix}{body} 0".replace("  ", " ").strip()


@dataclass
class DrupProof:
    """An ordered DRUP step sequence with (de)serialization helpers."""

    steps: List[DrupStep] = field(default_factory=list)

    @property
    def additions(self) -> int:
        return sum(1 for step in self.steps if not step.delete)

    @property
    def deletions(self) -> int:
        return sum(1 for step in self.steps if step.delete)

    @property
    def ends_with_empty_clause(self) -> bool:
        return any(
            not step.delete and not step.literals for step in self.steps
        )

    @classmethod
    def from_solver_steps(
        cls, raw: Sequence[Tuple[str, Tuple[int, ...]]]
    ) -> "DrupProof":
        """Wrap the raw ``("a"|"d", literals)`` log of the CDCL solver."""
        steps = []
        for op, literals in raw:
            if op not in ("a", "d"):
                raise WitnessError(f"unknown proof step op {op!r}")
            steps.append(DrupStep(delete=(op == "d"), literals=tuple(literals)))
        return cls(steps=steps)

    def to_text(self) -> str:
        return "\n".join(step.to_line() for step in self.steps) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "DrupProof":
        steps: List[DrupStep] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            delete = line.startswith("d ") or line == "d 0"
            body = line[1:].strip() if delete else line
            try:
                numbers = [int(token) for token in body.split()]
            except ValueError:
                raise WitnessError(
                    f"proof line {lineno} is not a DRUP step: {line!r}"
                )
            if not numbers or numbers[-1] != 0:
                raise WitnessError(
                    f"proof line {lineno} is not 0-terminated: {line!r}"
                )
            if any(number == 0 for number in numbers[:-1]):
                raise WitnessError(
                    f"proof line {lineno} has an interior 0: {line!r}"
                )
            steps.append(DrupStep(delete=delete, literals=tuple(numbers[:-1])))
        return cls(steps=steps)

    def digest(self) -> str:
        """Content digest of the canonical text form (sha256 prefix)."""
        return hashlib.sha256(self.to_text().encode()).hexdigest()[:16]


@dataclass
class DrupCheckResult:
    """Outcome of checking one proof against one CNF."""

    ok: bool
    steps_checked: int = 0
    additions: int = 0
    deletions: int = 0
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class _ClauseDb:
    """The checker's clause database: immutable literal tuples with
    occurrence lists, a unit index, and set-keyed deletion (the solver
    reorders watched literals in place, so deletions must match clauses
    as literal *sets*, not sequences)."""

    def __init__(self) -> None:
        self._clauses: Dict[int, Tuple[int, ...]] = {}
        self._by_key: Dict[FrozenSet[int], List[int]] = {}
        self._occ: Dict[int, Set[int]] = {}
        self._units: Dict[int, int] = {}
        self._next_id = 0

    def add(self, literals: Tuple[int, ...]) -> None:
        cid = self._next_id
        self._next_id += 1
        self._clauses[cid] = literals
        self._by_key.setdefault(frozenset(literals), []).append(cid)
        for lit in literals:
            self._occ.setdefault(lit, set()).add(cid)
        if len(set(literals)) == 1:
            self._units[cid] = literals[0]

    def delete(self, literals: Tuple[int, ...]) -> bool:
        """Remove one clause equal (as a set) to ``literals``."""
        bucket = self._by_key.get(frozenset(literals))
        if not bucket:
            return False
        cid = bucket.pop()
        clause = self._clauses.pop(cid)
        for lit in clause:
            self._occ[lit].discard(cid)
        self._units.pop(cid, None)
        return True

    def propagates_to_conflict(self, assumed_false: Tuple[int, ...]) -> bool:
        """Assume every literal of ``assumed_false`` is false, unit
        propagate the database, and report whether a conflict arises.

        Counting-free BFS: each newly assigned literal visits the clauses
        containing its negation; a clause with no unassigned literal and
        no true literal is a conflict, one with exactly one unassigned
        literal and no true literal propagates it.
        """
        assigns: Dict[int, int] = {}  # var -> +1 / -1
        pending: Deque[int] = deque()

        def assign(lit: int) -> bool:
            """Make ``lit`` true; False when it contradicts the state."""
            var = abs(lit)
            sign = 1 if lit > 0 else -1
            current = assigns.get(var, 0)
            if current == 0:
                assigns[var] = sign
                pending.append(lit)
                return True
            return current == sign

        for lit in assumed_false:
            if not assign(-lit):
                return True  # the negated clause is itself contradictory
        for lit in self._units.values():
            if not assign(lit):
                return True
        deadline = current_deadline()
        while pending:
            deadline.tick("witness")
            lit = pending.popleft()
            for cid in tuple(self._occ.get(-lit, ())):
                clause = self._clauses.get(cid)
                if clause is None:  # pragma: no cover - deleted mid-walk
                    continue
                unassigned: Optional[int] = None
                satisfied = False
                for other in clause:
                    value = assigns.get(abs(other), 0)
                    if value == 0:
                        if unassigned is not None and unassigned != other:
                            unassigned = 0  # two unassigned: nothing to do
                            break
                        unassigned = other
                    elif value == (1 if other > 0 else -1):
                        satisfied = True
                        break
                if satisfied or unassigned == 0:
                    continue
                if unassigned is None:
                    return True  # every literal false: conflict
                if not assign(unassigned):
                    return True
        return False


def cnf_with_assumptions(cnf: Cnf, assumptions: Sequence[int]) -> Cnf:
    """``cnf`` plus one unit clause per assumption literal.

    An assumption-UNSAT verdict from the incremental solver
    (:class:`repro.sat.incremental.IncrementalSolver`) certifies against
    this formula, not against ``cnf`` alone: the solver's proof ends with
    the failed-assumption core clause, which is RUP only once the
    assumptions are available as units.  Learned clauses never resolve on
    assumptions, so the same journal prefix stays valid for every call.
    """
    clauses = list(cnf.clauses) + [(literal,) for literal in assumptions]
    return Cnf(num_vars=cnf.num_vars, clauses=clauses)


def check_drup(cnf: Cnf, proof: DrupProof) -> DrupCheckResult:
    """Forward-check ``proof`` against ``cnf``; see the module docstring.

    Every addition must be RUP w.r.t. the current database; deletions must
    name a present clause (the solver only deletes clauses it added, so a
    miss indicates a corrupted proof).  The check succeeds exactly when
    the empty clause is derived; steps after it are ignored.
    """
    db = _ClauseDb()
    for clause in cnf.clauses:
        db.add(tuple(clause))

    result = DrupCheckResult(ok=False)
    for index, step in enumerate(proof.steps):
        result.steps_checked = index + 1
        if step.delete:
            if not db.delete(step.literals):
                result.detail = (
                    f"step {index + 1}: deletion of a clause not in the "
                    f"database: {list(step.literals)}"
                )
                return result
            result.deletions += 1
            continue
        if not db.propagates_to_conflict(step.literals):
            label = (
                "the empty clause" if not step.literals
                else f"clause {list(step.literals)}"
            )
            result.detail = (
                f"step {index + 1}: {label} is not reverse-unit-propagation "
                "derivable from the current clause database"
            )
            return result
        result.additions += 1
        if not step.literals:
            result.ok = True
            result.detail = (
                f"empty clause derived after {result.additions} addition(s) "
                f"and {result.deletions} deletion(s)"
            )
            return result
        db.add(step.literals)
    result.detail = (
        "proof exhausted without deriving the empty clause "
        f"({result.additions} addition(s) checked)"
    )
    return result
