"""Verdict witnesses: DRUP proof certification and counterexample replay.

The subsystem that stops the repository from trusting its own solver:

* :mod:`repro.witness.drup` — DRUP proof format, writer/parser, and an
  *independent* reverse-unit-propagation checker (no code shared with
  :mod:`repro.sat.solver`) for UNSAT verdicts;
* :mod:`repro.witness.reconstruct` — lifts SAT models back through the
  encoding layers into concrete EUFM interpretations, replays them
  through the evaluator, and minimizes them;
* :mod:`repro.witness.certify` — builds the right :class:`Witness` for a
  finished run (``verify(certify=True)`` calls this);
* :mod:`repro.witness.cli` — ``python -m repro witness`` (certify /
  explain / check), exit-coded for CI.
"""

from .certify import certify_result
from .drup import (
    DrupCheckResult,
    DrupProof,
    DrupStep,
    check_drup,
    cnf_with_assumptions,
)
from .reconstruct import (
    TermCounterexample,
    reconstruct_counterexample,
    replay_assignment,
)
from .types import WITNESS_KINDS, Witness

__all__ = [
    "WITNESS_KINDS",
    "Witness",
    "DrupStep",
    "DrupProof",
    "DrupCheckResult",
    "check_drup",
    "cnf_with_assumptions",
    "TermCounterexample",
    "reconstruct_counterexample",
    "replay_assignment",
    "certify_result",
]
