"""``python -m repro witness`` — certify verdicts and check stored proofs.

Subcommands::

    witness certify --rob 4 --width 2 [--proof-out p.drup --cnf-out f.cnf]
    witness explain --rob 4 --width 2 --bug pc-single-increment
    witness check --cnf formula.cnf --proof proof.drup

``certify`` runs one verification with ``certify=True`` and reports the
witness: for a correct design the solver's DRUP proof is re-checked by
the independent reverse-unit-propagation checker; for a buggy one the
counterexample is reconstructed, replayed and minimized.  ``--proof-out``
/ ``--cnf-out`` write the proof and the exact CNF it certifies to disk
(the pair ``check`` consumes).

``explain`` is ``certify`` focused on the SAT side: it requires a
term-level counterexample and prints the full minimized diagnosis.

``check`` re-validates a stored proof against a stored DIMACS CNF with no
solver involved at all — the offline trust anchor for CI artifacts.

Exit status: 0 — the witness validated (proof checked / counterexample
replayed); 1 — it did not; 2 — the SAT budget ran out; 3 — a structural
error (no certifiable artifact, unparsable files, bad config).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import BudgetExhausted, ReproError, WitnessError
from ..processor.bugs import Bug, BugKind
from ..processor.families import family_names
from ..processor.params import ProcessorConfig
from .drup import DrupProof, check_drup

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro witness",
        description=(
            "Produce and validate verdict witnesses: DRUP proofs for "
            "correct designs, replayed term-level counterexamples for "
            "buggy ones."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--rob", type=int, default=4, help="ROB size N")
        cmd.add_argument("--width", type=int, default=2, help="issue width k")
        cmd.add_argument(
            "--retire-width", type=int, default=None, help="retire width l"
        )
        cmd.add_argument(
            "--family",
            choices=family_names(),
            default="reg-reg",
            help="workload family (default: reg-reg)",
        )
        cmd.add_argument(
            "--method",
            choices=("rewriting", "positive_equality"),
            default="rewriting",
        )
        cmd.add_argument(
            "--criterion",
            choices=("disjunction", "case_split"),
            default="disjunction",
        )
        cmd.add_argument("--bug", choices=BugKind.ALL, default=None)
        cmd.add_argument("--entry", type=int, default=1)
        cmd.add_argument("--operand", type=int, choices=(1, 2), default=1)
        cmd.add_argument("--max-conflicts", type=int, default=None)
        cmd.add_argument("--max-seconds", type=float, default=None)
        cmd.add_argument(
            "--json",
            action="store_true",
            help="print the witness summary as JSON instead of text",
        )

    certify = sub.add_parser(
        "certify", help="verify one configuration and validate its witness"
    )
    add_run_options(certify)
    certify.add_argument(
        "--proof-out",
        metavar="FILE",
        help="write the DRUP proof here (UNSAT verdicts only)",
    )
    certify.add_argument(
        "--cnf-out",
        metavar="FILE",
        help="write the exact CNF the proof certifies here (DIMACS)",
    )

    explain = sub.add_parser(
        "explain",
        help="verify a (buggy) configuration and print the minimized "
        "term-level counterexample diagnosis",
    )
    add_run_options(explain)

    check = sub.add_parser(
        "check", help="re-check a stored DRUP proof against a stored CNF"
    )
    check.add_argument("--cnf", required=True, metavar="FILE")
    check.add_argument("--proof", required=True, metavar="FILE")
    return parser


def _run_certified(args: argparse.Namespace):
    from ..core import verify

    config = ProcessorConfig(
        n_rob=args.rob,
        issue_width=args.width,
        retire_width=args.retire_width,
        family=args.family,
    )
    bug = None
    if args.bug is not None:
        bug = Bug(args.bug, entry=args.entry, operand=args.operand)
    return verify(
        config,
        method=args.method,
        bug=bug,
        criterion=args.criterion,
        max_conflicts=args.max_conflicts,
        max_seconds=args.max_seconds,
        certify=True,
    )


def _emit(witness, as_json: bool) -> None:
    if as_json:
        print(json.dumps(witness.summary_dict(), indent=2, sort_keys=True))
    else:
        print(witness.render())


def _certify_main(args: argparse.Namespace) -> int:
    result = _run_certified(args)
    witness = result.witness
    print(result.summary())
    _emit(witness, args.json)
    if args.proof_out:
        if witness.proof is None:
            print(
                f"no DRUP proof to write (witness kind {witness.kind!r})",
                file=sys.stderr,
            )
            return 3
        with open(args.proof_out, "w", encoding="utf-8") as handle:
            handle.write(witness.proof.to_text())
        print(f"proof written to {args.proof_out} (digest {witness.digest()})")
    if args.cnf_out:
        from ..sat.cnf import to_dimacs

        if result.validity is None or result.validity.encoded.tseitin is None:
            print("no CNF to write (no SAT run happened)", file=sys.stderr)
            return 3
        with open(args.cnf_out, "w", encoding="utf-8") as handle:
            handle.write(
                to_dimacs(
                    result.validity.encoded.cnf,
                    comments=(
                        f"exact CNF decided for {result.config.describe()}",
                    ),
                )
            )
        print(f"CNF written to {args.cnf_out}")
    return 0 if witness.validated else 1


def _explain_main(args: argparse.Namespace) -> int:
    result = _run_certified(args)
    witness = result.witness
    if witness.kind != "counterexample":
        print(
            f"no term-level counterexample to explain: the run produced a "
            f"{witness.kind!r} witness ({witness.detail})",
            file=sys.stderr,
        )
        return 3
    _emit(witness, args.json)
    if not args.json:
        print(
            "replayed through the EUFM evaluator: "
            f"{'ok' if witness.validated else 'FAILED'}"
        )
    return 0 if witness.validated else 1


def _check_main(args: argparse.Namespace) -> int:
    from ..sat.cnf import parse_dimacs

    with open(args.cnf, "r", encoding="utf-8") as handle:
        cnf = parse_dimacs(handle.read())
    with open(args.proof, "r", encoding="utf-8") as handle:
        proof = DrupProof.from_text(handle.read())
    outcome = check_drup(cnf, proof)
    status = "VALIDATED" if outcome.ok else "REJECTED"
    print(
        f"{status}: {outcome.detail} "
        f"({outcome.steps_checked} step(s) checked, proof digest "
        f"{proof.digest()})"
    )
    return 0 if outcome.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "certify":
            return _certify_main(args)
        if args.command == "explain":
            return _explain_main(args)
        return _check_main(args)
    except BudgetExhausted as exc:
        print(f"budget exhausted: {exc}", file=sys.stderr)
        return 2
    except (WitnessError, ReproError, ValueError, OSError) as exc:
        print(f"witness error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
