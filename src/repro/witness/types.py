"""The :class:`Witness` artifact: independently checked verdict evidence.

A witness is attached to a :class:`~repro.core.results.VerificationResult`
by ``verify(certify=True)`` and comes in four kinds:

* ``"unsat-proof"`` — the design was proved correct by an UNSAT verdict;
  the witness carries the solver's DRUP proof and the outcome of the
  independent reverse-unit-propagation check against the exact CNF the
  solver saw.
* ``"counterexample"`` — the design was refuted by a SAT verdict; the
  witness carries the reconstructed term-level counterexample
  (:class:`~repro.witness.reconstruct.TermCounterexample`), replayed
  through the EUFM evaluator and minimized.
* ``"trivial"`` — the correctness formula collapsed to a constant during
  encoding; there is no SAT artifact, the builder simplification *is* the
  argument.
* ``"rewrite-flag"`` — the rewriting rules flagged a defective update
  slice before any SAT run; there is no propositional artifact to
  certify (re-run with ``method="positive_equality"`` for one).

``validated`` is True only when the independent check succeeded: the DRUP
checker derived the empty clause, or the counterexample replayed the
formula to ``False`` (both raw and minimized).  The two structural kinds
are validated by construction of the pipeline, which the witness states
in ``detail`` rather than claiming an independent check happened.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .drup import DrupCheckResult, DrupProof
from .reconstruct import TermCounterexample

__all__ = ["WITNESS_KINDS", "Witness"]

WITNESS_KINDS = ("unsat-proof", "counterexample", "trivial", "rewrite-flag")


@dataclass
class Witness:
    """Evidence for one verification verdict; see the module docstring."""

    kind: str
    #: True when the independent check (DRUP / replay) succeeded.
    validated: bool
    detail: str = ""
    # --- UNSAT side -----------------------------------------------------
    proof: Optional[DrupProof] = None
    check: Optional[DrupCheckResult] = None
    cnf_vars: int = 0
    cnf_clauses: int = 0
    # --- SAT side -------------------------------------------------------
    counterexample: Optional[TermCounterexample] = None

    def __post_init__(self) -> None:
        if self.kind not in WITNESS_KINDS:
            raise ValueError(
                f"unknown witness kind {self.kind!r}; use one of {WITNESS_KINDS}"
            )

    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Stable content digest of the witness evidence.

        For proofs this is the DRUP text digest; for counterexamples a
        hash of the minimized assignment and class structure.  Journaled
        with campaign finish records so a resumed campaign can tell
        whether the evidence it replays is the evidence it produced.
        """
        if self.proof is not None:
            return self.proof.digest()
        if self.counterexample is not None:
            payload = json.dumps(
                {
                    "minimized": sorted(self.counterexample.minimized.items()),
                    "classes": self.counterexample.classes,
                    "replay": self.counterexample.replay_value,
                },
                sort_keys=True,
            )
            return hashlib.sha256(payload.encode()).hexdigest()[:16]
        payload = f"{self.kind}:{self.detail}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def artifact_media_type(self) -> str:
        """MIME type of :meth:`artifact_bytes`."""
        if self.kind == "unsat-proof" and self.proof is not None:
            return "text/x-drup"
        return "application/json"

    def artifact_bytes(self) -> bytes:
        """The full witness evidence as a self-contained artifact.

        For UNSAT verdicts this is the DRUP proof text exactly as the
        solver logged it (re-checkable with ``python -m repro witness
        check``); for counterexamples, a canonical JSON document holding
        the minimized assignment, equivalence classes, synthesized
        function tables, and the replay verdicts; for the two structural
        kinds, a small JSON record of the argument.  Serialization is
        canonical (sorted keys), so equal evidence yields equal bytes —
        the artifact store (:mod:`repro.service.store`) relies on that
        to address artifacts by content digest.
        """
        if self.proof is not None:
            return self.proof.to_text().encode("utf-8")
        if self.counterexample is not None:
            cex = self.counterexample
            payload: Dict[str, Any] = {
                "kind": self.kind,
                "validated": self.validated,
                "raw_assignment": cex.raw_assignment,
                "minimized": cex.minimized,
                "classes": cex.classes,
                "term_values": cex.term_values,
                "bool_values": cex.bool_values,
                "uf_tables": {
                    sym: [[list(args), value] for args, value in rows]
                    for sym, rows in cex.uf_tables.items()
                },
                "up_tables": {
                    sym: [[list(args), value] for args, value in rows]
                    for sym, rows in cex.up_tables.items()
                },
                "domain_size": cex.domain_size,
                "replay_value": cex.replay_value,
                "minimized_replay_value": cex.minimized_replay_value,
                "memory_mode": cex.memory_mode,
                "disagreements": cex.disagreements,
            }
            return json.dumps(payload, sort_keys=True).encode("utf-8")
        payload = {
            "kind": self.kind,
            "validated": self.validated,
            "detail": self.detail,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def summary_dict(self) -> Dict[str, Any]:
        """Compact journal-safe form (digests and sizes, not artifacts)."""
        summary: Dict[str, Any] = {
            "kind": self.kind,
            "validated": self.validated,
            "digest": self.digest(),
            "detail": self.detail[:200],
        }
        if self.proof is not None:
            summary["proof_additions"] = self.proof.additions
            summary["proof_deletions"] = self.proof.deletions
            summary["cnf_vars"] = self.cnf_vars
            summary["cnf_clauses"] = self.cnf_clauses
        if self.check is not None:
            summary["check_detail"] = self.check.detail[:200]
        if self.counterexample is not None:
            summary.update(self.counterexample.summary_dict())
        return summary

    def render(self) -> str:
        """Human-readable witness report."""
        status = "VALIDATED" if self.validated else "NOT validated"
        lines = [f"witness [{self.kind}] {status} (digest {self.digest()})"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.proof is not None:
            lines.append(
                f"  DRUP proof: {self.proof.additions} addition(s), "
                f"{self.proof.deletions} deletion(s) over a CNF with "
                f"{self.cnf_vars} vars / {self.cnf_clauses} clauses"
            )
        if self.check is not None:
            lines.append(f"  checker: {self.check.detail}")
        if self.counterexample is not None:
            lines.append(self.counterexample.render())
        return "\n".join(lines)
