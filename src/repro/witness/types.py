"""The :class:`Witness` artifact: independently checked verdict evidence.

A witness is attached to a :class:`~repro.core.results.VerificationResult`
by ``verify(certify=True)`` and comes in four kinds:

* ``"unsat-proof"`` — the design was proved correct by an UNSAT verdict;
  the witness carries the solver's DRUP proof and the outcome of the
  independent reverse-unit-propagation check against the exact CNF the
  solver saw.
* ``"counterexample"`` — the design was refuted by a SAT verdict; the
  witness carries the reconstructed term-level counterexample
  (:class:`~repro.witness.reconstruct.TermCounterexample`), replayed
  through the EUFM evaluator and minimized.
* ``"trivial"`` — the correctness formula collapsed to a constant during
  encoding; there is no SAT artifact, the builder simplification *is* the
  argument.
* ``"rewrite-flag"`` — the rewriting rules flagged a defective update
  slice before any SAT run; there is no propositional artifact to
  certify (re-run with ``method="positive_equality"`` for one).

``validated`` is True only when the independent check succeeded: the DRUP
checker derived the empty clause, or the counterexample replayed the
formula to ``False`` (both raw and minimized).  The two structural kinds
are validated by construction of the pipeline, which the witness states
in ``detail`` rather than claiming an independent check happened.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .drup import DrupCheckResult, DrupProof
from .reconstruct import TermCounterexample

__all__ = ["WITNESS_KINDS", "Witness"]

WITNESS_KINDS = ("unsat-proof", "counterexample", "trivial", "rewrite-flag")


@dataclass
class Witness:
    """Evidence for one verification verdict; see the module docstring."""

    kind: str
    #: True when the independent check (DRUP / replay) succeeded.
    validated: bool
    detail: str = ""
    # --- UNSAT side -----------------------------------------------------
    proof: Optional[DrupProof] = None
    check: Optional[DrupCheckResult] = None
    cnf_vars: int = 0
    cnf_clauses: int = 0
    # --- SAT side -------------------------------------------------------
    counterexample: Optional[TermCounterexample] = None

    def __post_init__(self) -> None:
        if self.kind not in WITNESS_KINDS:
            raise ValueError(
                f"unknown witness kind {self.kind!r}; use one of {WITNESS_KINDS}"
            )

    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Stable content digest of the witness evidence.

        For proofs this is the DRUP text digest; for counterexamples a
        hash of the minimized assignment and class structure.  Journaled
        with campaign finish records so a resumed campaign can tell
        whether the evidence it replays is the evidence it produced.
        """
        if self.proof is not None:
            return self.proof.digest()
        if self.counterexample is not None:
            payload = json.dumps(
                {
                    "minimized": sorted(self.counterexample.minimized.items()),
                    "classes": self.counterexample.classes,
                    "replay": self.counterexample.replay_value,
                },
                sort_keys=True,
            )
            return hashlib.sha256(payload.encode()).hexdigest()[:16]
        payload = f"{self.kind}:{self.detail}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary_dict(self) -> Dict[str, Any]:
        """Compact journal-safe form (digests and sizes, not artifacts)."""
        summary: Dict[str, Any] = {
            "kind": self.kind,
            "validated": self.validated,
            "digest": self.digest(),
            "detail": self.detail[:200],
        }
        if self.proof is not None:
            summary["proof_additions"] = self.proof.additions
            summary["proof_deletions"] = self.proof.deletions
            summary["cnf_vars"] = self.cnf_vars
            summary["cnf_clauses"] = self.cnf_clauses
        if self.check is not None:
            summary["check_detail"] = self.check.detail[:200]
        if self.counterexample is not None:
            summary.update(self.counterexample.summary_dict())
        return summary

    def render(self) -> str:
        """Human-readable witness report."""
        status = "VALIDATED" if self.validated else "NOT validated"
        lines = [f"witness [{self.kind}] {status} (digest {self.digest()})"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.proof is not None:
            lines.append(
                f"  DRUP proof: {self.proof.additions} addition(s), "
                f"{self.proof.deletions} deletion(s) over a CNF with "
                f"{self.cnf_vars} vars / {self.cnf_clauses} clauses"
            )
        if self.check is not None:
            lines.append(f"  checker: {self.check.detail}")
        if self.counterexample is not None:
            lines.append(self.counterexample.render())
        return "\n".join(lines)
