"""Turning a finished verification run into a :class:`Witness`.

:func:`certify_result` inspects a :class:`~repro.core.results.
VerificationResult` and produces the matching evidence kind:

* UNSAT verdict → wrap the solver's DRUP step log and run the
  independent checker of :mod:`repro.witness.drup` against the exact CNF
  the solver decided (``validity.encoded.cnf``);
* SAT verdict → reconstruct, replay and minimize the counterexample
  (:mod:`repro.witness.reconstruct`);
* constant collapse / rewriting flag → a structural witness (nothing
  propositional ran, which the witness says rather than papers over).

Certification cost shows up in traces: this module runs under
``witness.*`` spans on the ambient tracer (``witness.check_proof``,
``witness.reconstruct``, ``witness.minimize``, ``witness.diagnose``), so
``python -m repro perf record`` makes the overhead visible.
"""

from __future__ import annotations

from ..errors import WitnessError
from ..obs.tracer import current_tracer
from .drup import DrupProof, check_drup
from .reconstruct import reconstruct_counterexample
from .types import Witness

__all__ = ["certify_result"]


def certify_result(result) -> Witness:
    """Produce a :class:`Witness` for one verification result.

    Raises :class:`~repro.errors.WitnessError` when the result carries a
    SAT verdict but no certifiable artifact — in particular when the run
    was made without ``certify=True`` so no DRUP proof was logged.
    """
    tracer = current_tracer()

    if result.validity is None:
        # The rewriting rules flagged a defective slice before any SAT
        # run; there is no propositional artifact.
        return Witness(
            kind="rewrite-flag",
            validated=False,
            detail=(
                "rewriting rules flagged computation slice "
                f"{result.suspected_entry} ({result.failure_detail}); no SAT "
                "artifact exists to certify — re-run with "
                "method='positive_equality' for a propositional witness"
            ),
        )

    encoded = result.validity.encoded
    if encoded.constant_validity is not None:
        return Witness(
            kind="trivial",
            validated=True,
            detail=(
                "the correctness formula collapsed to the constant "
                f"{encoded.constant_validity} during encoding; no CNF was "
                "produced and no SAT run happened"
            ),
        )

    sat_result = result.validity.sat_result
    if sat_result is None:  # pragma: no cover - guarded by constant path
        raise WitnessError("validity result carries no SAT outcome")

    if sat_result.is_unsat:
        if sat_result.proof is None:
            raise WitnessError(
                "the UNSAT verdict carries no DRUP proof; re-run with "
                "verify(..., certify=True) so the solver logs one"
            )
        with tracer.span("witness.check_proof") as span:
            proof = DrupProof.from_solver_steps(sat_result.proof)
            check = check_drup(encoded.cnf, proof)
            span.add("witness.proof_steps", len(proof.steps))
            span.add("witness.proof_ok", 1 if check.ok else 0)
        return Witness(
            kind="unsat-proof",
            validated=check.ok,
            detail=check.detail,
            proof=proof,
            check=check,
            cnf_vars=encoded.cnf.num_vars,
            cnf_clauses=encoded.cnf.num_clauses,
        )

    # SAT: reconstruct the term-level counterexample and replay it.
    if result.counterexample is None:
        raise WitnessError(
            "the SAT verdict carries no decoded counterexample to lift"
        )
    cex = reconstruct_counterexample(encoded, result.counterexample)
    validated = cex.replayed_false
    detail = (
        f"counterexample replays to {cex.replay_value}; minimized "
        f"{cex.raw_size} -> {cex.minimized_size} variables"
        if validated
        else (
            "counterexample failed to replay the formula to False "
            f"(raw replay {cex.replay_value}, minimized "
            f"{cex.minimized_replay_value})"
        )
    )
    return Witness(
        kind="counterexample",
        validated=validated,
        detail=detail,
        counterexample=cex,
    )
