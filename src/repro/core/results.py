"""Result dataclasses for the top-level verification API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..encode.evc import EncodingStats, ValidityResult
from ..obs.tracer import Span
from ..processor.bugs import Bug
from ..processor.params import ProcessorConfig
from ..rewriting.engine import RewriteResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..witness.types import Witness

__all__ = ["VerificationResult"]


@dataclass
class VerificationResult:
    """Outcome of verifying one processor configuration."""

    config: ProcessorConfig
    method: str
    bug: Optional[Bug]
    #: the verdict: True when the design satisfies the Burch–Dill criterion.
    correct: bool
    #: the computation slice the rewriting rules flagged (buggy designs).
    suspected_entry: Optional[int] = None
    #: stage/detail of the rewriting failure, when one occurred.
    failure_detail: Optional[str] = None
    rewrite: Optional[RewriteResult] = None
    validity: Optional[ValidityResult] = None
    #: phase timings in seconds: simulate, rewrite, translate, sat, total.
    timings: Dict[str, float] = field(default_factory=dict)
    #: counterexample assignment for incorrect designs (named variables;
    #: ``None`` values are variables the SAT model never decided).
    counterexample: Optional[Dict[str, Optional[bool]]] = None
    #: independently checked verdict evidence from ``verify(certify=True)``
    #: (a :class:`~repro.witness.types.Witness`): a machine-checked DRUP
    #: proof for correct designs, a replayed + minimized term-level
    #: counterexample for buggy ones.
    witness: Optional["Witness"] = None
    #: soundness findings from ``verify(analyze=True)``
    #: (:class:`~repro.analysis.diagnostics.Diagnostic` records).
    diagnostics: List = field(default_factory=list)
    #: the run's full span tree from ``verify(trace=True)``; ``timings``
    #: is the flat per-phase view derived from this tree.
    trace: Optional[Span] = None

    @property
    def encoding_stats(self) -> Optional[EncodingStats]:
        if self.validity is None:
            return None
        return self.validity.encoded.stats

    def summary(self) -> str:
        verdict = "correct" if self.correct else "INCORRECT"
        parts = [
            f"{self.config.describe()} — {verdict} "
            f"(method={self.method}, total {self.timings.get('total', 0.0):.2f}s)"
        ]
        if self.suspected_entry is not None:
            parts.append(
                f"  rewriting flagged computation slice {self.suspected_entry}: "
                f"{self.failure_detail}"
            )
        stats = self.encoding_stats
        if stats is not None:
            parts.append(
                f"  CNF: {stats.cnf_vars} vars, {stats.cnf_clauses} clauses, "
                f"{stats.eij_primary} e_ij + {stats.other_primary} other "
                "primary inputs"
            )
        return "\n".join(parts)
