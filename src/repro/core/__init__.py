"""Top-level verification API: :func:`verify` and result/report types."""

from .reporting import render_matrix, render_metrics, render_rows
from .results import VerificationResult
from .verifier import METHODS, verify

__all__ = [
    "render_matrix",
    "render_metrics",
    "render_rows",
    "VerificationResult",
    "METHODS",
    "verify",
]
