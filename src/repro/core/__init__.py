"""Top-level verification API: :func:`verify` and result/report types."""

from .keys import canonical_key, config_dict
from .reporting import render_matrix, render_metrics, render_rows
from .results import VerificationResult
from .verifier import METHODS, verify

__all__ = [
    "canonical_key",
    "config_dict",
    "render_matrix",
    "render_metrics",
    "render_rows",
    "VerificationResult",
    "METHODS",
    "verify",
]
