"""Top-level verification driver — the library's primary entry point.

``verify(config)`` reproduces the paper's tool flow end to end:

* ``method="rewriting"`` (the paper's contribution): symbolically simulate
  the Burch–Dill diagram with TLSim, apply the rewriting rules to prove
  and remove the updates of the instructions initially in the ROB, then
  decide the reduced correctness formula (which depends only on the newly
  fetched instructions) by Positive Equality with the conservative memory
  abstraction and the CDCL SAT solver.

* ``method="positive_equality"``: skip the rewriting rules and translate
  the full correctness formula — the Sect. 7.1 baseline, whose cost grows
  dramatically with the reorder-buffer size (Table 2).
"""

from __future__ import annotations

import time
from typing import Optional

from ..encode.evc import check_validity
from ..errors import AnalysisError, BudgetExhausted
from ..processor.bugs import Bug
from ..processor.correctness import build_correctness_formula, run_diagram
from ..processor.params import ProcessorConfig
from ..rewriting.engine import rewrite_diagram
from .results import VerificationResult

__all__ = ["verify", "METHODS"]

METHODS = ("rewriting", "positive_equality")


def _enrich_budget_error(
    exc: BudgetExhausted, timings: dict, start: float
) -> None:
    """Fold the phases completed before the abort into the exception."""
    for phase, seconds in timings.items():
        exc.timings.setdefault(phase, seconds)
    exc.timings["total"] = time.perf_counter() - start


def _run_analysis(
    result: VerificationResult, timings: dict, start: float, strict: bool
) -> VerificationResult:
    """Attach soundness diagnostics; in strict mode, errors raise."""
    from ..analysis.diagnostics import errors_in
    from ..analysis.pipeline import analyze_verification

    analyze_start = time.perf_counter()
    result.diagnostics = analyze_verification(result)
    timings["analyze"] = time.perf_counter() - analyze_start
    timings["total"] = time.perf_counter() - start
    if strict:
        errors = errors_in(result.diagnostics)
        if errors:
            raise AnalysisError(
                f"soundness analysis found {len(errors)} error(s): "
                + "; ".join(diag.render() for diag in errors[:3]),
                diagnostics=result.diagnostics,
            )
    return result


def verify(
    config: ProcessorConfig,
    method: str = "rewriting",
    bug: Optional[Bug] = None,
    criterion: str = "disjunction",
    max_conflicts: Optional[int] = None,
    max_seconds: Optional[float] = None,
    analyze: bool = False,
    strict: bool = False,
) -> VerificationResult:
    """Formally verify one out-of-order processor configuration.

    Args:
        config: reorder-buffer size and issue/retire width.
        method: ``"rewriting"`` or ``"positive_equality"``.
        bug: optional planted defect (see :mod:`repro.processor.bugs`).
        criterion: ``"disjunction"`` (the paper's formula) or
            ``"case_split"`` (the stronger fetch-count criterion).
        max_conflicts / max_seconds: SAT budget; raises
            :class:`repro.errors.BudgetExhausted` (a :class:`TimeoutError`
            subclass) when exhausted — this plays the role of the paper's
            4 GB memory limit in the scaling experiments.  The exception's
            ``timings`` dict still carries the phase timings accumulated
            before the abort.
        analyze: run the :mod:`repro.analysis` soundness analyzers over
            the run's artifacts and attach their findings to
            ``result.diagnostics``.
        strict: implies ``analyze``; raise
            :class:`repro.errors.AnalysisError` when any error-level
            finding is present instead of returning normally.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; use one of {METHODS}")
    analyze = analyze or strict
    start = time.perf_counter()
    artifacts = run_diagram(config, bug=bug)
    timings = {"simulate": artifacts.simulate_seconds}

    if method == "rewriting":
        rewrite = rewrite_diagram(artifacts, criterion=criterion)
        timings["rewrite"] = rewrite.rewrite_seconds
        if not rewrite.succeeded:
            timings["total"] = time.perf_counter() - start
            failure = rewrite.failure
            result = VerificationResult(
                config=config,
                method=method,
                bug=bug,
                correct=False,
                suspected_entry=failure.entry,
                failure_detail=f"{failure.stage}: {failure.detail}",
                rewrite=rewrite,
                timings=timings,
            )
            if analyze:
                return _run_analysis(result, timings, start, strict)
            return result
        try:
            validity = check_validity(
                rewrite.reduced_formula,
                memory_mode="conservative",
                max_conflicts=max_conflicts,
                max_seconds=max_seconds,
            )
        except BudgetExhausted as exc:
            _enrich_budget_error(exc, timings, start)
            raise
        timings["translate"] = validity.encoded.stats.translate_seconds
        timings["sat"] = validity.solve_seconds
        timings["total"] = time.perf_counter() - start
        result = VerificationResult(
            config=config,
            method=method,
            bug=bug,
            correct=validity.valid,
            rewrite=rewrite,
            validity=validity,
            timings=timings,
            counterexample=validity.counterexample,
        )
        if analyze:
            return _run_analysis(result, timings, start, strict)
        return result

    formula = build_correctness_formula(artifacts, criterion=criterion)
    try:
        validity = check_validity(
            formula,
            memory_mode="precise",
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
        )
    except BudgetExhausted as exc:
        _enrich_budget_error(exc, timings, start)
        raise
    timings["translate"] = validity.encoded.stats.translate_seconds
    timings["sat"] = validity.solve_seconds
    timings["total"] = time.perf_counter() - start
    result = VerificationResult(
        config=config,
        method=method,
        bug=bug,
        correct=validity.valid,
        validity=validity,
        timings=timings,
        counterexample=validity.counterexample,
    )
    if analyze:
        return _run_analysis(result, timings, start, strict)
    return result
