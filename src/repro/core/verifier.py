"""Top-level verification driver — the library's primary entry point.

``verify(config)`` reproduces the paper's tool flow end to end:

* ``method="rewriting"`` (the paper's contribution): symbolically simulate
  the Burch–Dill diagram with TLSim, apply the rewriting rules to prove
  and remove the updates of the instructions initially in the ROB, then
  decide the reduced correctness formula (which depends only on the newly
  fetched instructions) by Positive Equality with the conservative memory
  abstraction and the CDCL SAT solver.  For branch workload families the
  engine declines to reduce (see :mod:`repro.rewriting.engine`) and the
  full formula is decided with the precise memory model instead.

* ``method="positive_equality"``: skip the rewriting rules and translate
  the full correctness formula — the Sect. 7.1 baseline, whose cost grows
  dramatically with the reorder-buffer size (Table 2).

Every run is recorded on a :class:`~repro.obs.tracer.Tracer`: the pipeline
layers open "simulate"/"rewrite"/"translate"/"sat" spans under the "verify"
root and attach their work counters.  ``result.timings`` is a *derived
view* of that span tree (one entry per phase plus ``total``), so the
phase timings and the trace can never disagree.  Pass ``trace=True`` to
keep the full span tree on ``result.trace``.
"""

from __future__ import annotations

from typing import Dict, Optional

from contextlib import nullcontext

from ..encode.evc import check_validity
from ..errors import AnalysisError, BudgetExhausted
from ..guard.deadline import current_deadline, use_deadline
from ..guard.memory import MemoryBudget
from ..obs.tracer import Span, Tracer, use_tracer
from ..processor.bugs import Bug
from ..processor.correctness import build_correctness_formula, run_diagram
from ..processor.params import ProcessorConfig
from ..rewriting.engine import rewrite_diagram
from ..sat.backend import use_backend
from .results import VerificationResult

__all__ = ["verify", "METHODS"]

METHODS = ("rewriting", "positive_equality")


def _derive_timings(root: Span) -> Dict[str, float]:
    """Phase-timings view of a closed "verify" span tree.

    One entry per top-level phase span (wall-clock seconds) plus
    ``total``, taken from the root — a single source of truth, so the
    sum of the phases can never exceed what ``total`` reports.
    """
    timings = {child.name: child.wall_seconds for child in root.children}
    timings["total"] = root.wall_seconds
    return timings


def _enrich_budget_error(exc: BudgetExhausted, root: Optional[Span]) -> None:
    """Fold the phases completed before the abort into the exception.

    Called after the "verify" span closed (the exception already
    propagated through it), so every phase duration is final.
    """
    if root is None:
        return
    for child in root.children:
        exc.timings.setdefault(child.name, child.wall_seconds)
    exc.timings["total"] = root.wall_seconds


def _run_traced(
    config: ProcessorConfig,
    method: str,
    bug: Optional[Bug],
    criterion: str,
    max_conflicts: Optional[int],
    max_seconds: Optional[float],
    certify: bool = False,
) -> VerificationResult:
    """The pipeline proper, run under an open "verify" span."""
    artifacts = run_diagram(config, bug=bug)

    if method == "rewriting":
        rewrite = rewrite_diagram(artifacts, criterion=criterion)
        if not rewrite.succeeded:
            failure = rewrite.failure
            return VerificationResult(
                config=config,
                method=method,
                bug=bug,
                correct=False,
                suspected_entry=failure.entry,
                failure_detail=f"{failure.stage}: {failure.detail}",
                rewrite=rewrite,
            )
        # The conservative memory abstraction (Table 5) is justified by
        # the full reduction; when the engine declines to reduce (branch
        # families, rewrite.reduction == "none") the unreduced formula is
        # decided with the precise memory model, like the baseline.
        memory_mode = (
            "conservative" if rewrite.reduction == "full" else "precise"
        )
        validity = check_validity(
            rewrite.reduced_formula,
            memory_mode=memory_mode,
            max_conflicts=max_conflicts,
            max_seconds=max_seconds,
            log_proof=certify,
        )
        return VerificationResult(
            config=config,
            method=method,
            bug=bug,
            correct=validity.valid,
            rewrite=rewrite,
            validity=validity,
            counterexample=validity.counterexample,
        )

    formula = build_correctness_formula(artifacts, criterion=criterion)
    validity = check_validity(
        formula,
        memory_mode="precise",
        max_conflicts=max_conflicts,
        max_seconds=max_seconds,
        log_proof=certify,
    )
    return VerificationResult(
        config=config,
        method=method,
        bug=bug,
        correct=validity.valid,
        validity=validity,
        counterexample=validity.counterexample,
    )


def verify(
    config: ProcessorConfig,
    method: str = "rewriting",
    bug: Optional[Bug] = None,
    criterion: str = "disjunction",
    max_conflicts: Optional[int] = None,
    max_seconds: Optional[float] = None,
    max_wall_seconds: Optional[float] = None,
    max_cpu_seconds: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
    analyze: bool = False,
    strict: bool = False,
    trace: bool = False,
    certify: bool = False,
    sat_backend: Optional[str] = None,
) -> VerificationResult:
    """Formally verify one out-of-order processor configuration.

    Args:
        config: reorder-buffer size and issue/retire width.
        method: ``"rewriting"`` or ``"positive_equality"``.
        bug: optional planted defect (see :mod:`repro.processor.bugs`).
        criterion: ``"disjunction"`` (the paper's formula) or
            ``"case_split"`` (the stronger fetch-count criterion).
        max_conflicts / max_seconds: SAT budget; raises
            :class:`repro.errors.BudgetExhausted` (a :class:`TimeoutError`
            subclass) when exhausted — this plays the role of the paper's
            4 GB memory limit in the scaling experiments.  The exception's
            ``timings`` dict still carries the phase timings accumulated
            before the abort.
        max_wall_seconds / max_cpu_seconds: *pipeline-wide* deadline,
            enforced cooperatively at every stage (tlsim, rewriting, each
            encoding stage, the SAT loop, witness reconstruction) via an
            ambient :class:`repro.guard.Deadline`; raises
            :class:`repro.errors.BudgetExhausted` whose ``stage`` names
            the layer that hit the limit.  Unlike ``max_seconds`` (which
            only the SAT solver honors), this bounds the whole run.
        max_memory_mb: memory budget for the run (charged DAG-node and
            learned-clause counters plus sampling; see
            :class:`repro.guard.MemoryBudget`); raises
            :class:`repro.errors.MemoryBudgetExhausted`.
            When a deadline is already ambient (e.g. inside a campaign
            worker), the new budgets are capped by its remaining
            allowance and its heartbeat sink is inherited.
        analyze: run the :mod:`repro.analysis` soundness analyzers over
            the run's artifacts and attach their findings to
            ``result.diagnostics``.
        strict: implies ``analyze``; raise
            :class:`repro.errors.AnalysisError` when any error-level
            finding is present instead of returning normally.
        trace: keep the full span tree on ``result.trace`` (a
            :class:`~repro.obs.tracer.Span`) with the per-layer work
            counters; render it with
            :func:`repro.core.reporting.render_span_tree`.
        certify: log a DRUP clause proof in the SAT solver and attach an
            independently checked :class:`~repro.witness.types.Witness`
            to ``result.witness``: the proof is re-checked by the
            reverse-unit-propagation checker of :mod:`repro.witness.drup`
            for UNSAT verdicts, and SAT models are lifted to concrete
            EUFM interpretations, replayed through the evaluator and
            minimized.  Off by default (the solver's hot path then logs
            nothing).
        sat_backend: SAT backend name for this run (see
            :mod:`repro.sat.backend`); ``None`` keeps the ambient /
            environment-resolved selection.  Backends are verdict-
            equivalent by contract, so the choice is deliberately not
            part of the result's cache identity.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; use one of {METHODS}")
    analyze = analyze or strict
    guard_deadline = None
    guard_scope = nullcontext()
    if (
        max_wall_seconds is not None
        or max_cpu_seconds is not None
        or max_memory_mb is not None
    ):
        memory = (
            MemoryBudget.from_mb(max_memory_mb)
            if max_memory_mb is not None
            else None
        )
        guard_deadline = current_deadline().derive(
            max_wall_seconds=max_wall_seconds,
            max_cpu_seconds=max_cpu_seconds,
            memory=memory,
        )
        guard_scope = use_deadline(guard_deadline)
    backend_scope = (
        use_backend(sat_backend) if sat_backend is not None else nullcontext()
    )
    tracer = Tracer()
    try:
        with guard_scope, backend_scope, use_tracer(tracer):
            with tracer.span("verify"):
                result = _run_traced(
                    config, method, bug, criterion, max_conflicts,
                    max_seconds, certify,
                )
                if analyze:
                    from ..analysis.pipeline import analyze_verification

                    with tracer.span("analyze"):
                        result.diagnostics = analyze_verification(result)
                if certify:
                    from ..witness.certify import certify_result

                    with tracer.span("witness"):
                        result.witness = certify_result(result)
    except BudgetExhausted as exc:
        _enrich_budget_error(exc, tracer.root)
        raise

    root = tracer.root
    # Publish the supervision counters (guard.*) onto the root span —
    # from this run's derived deadline when budgets were given here, else
    # from the ambient one a campaign executor installed around us.
    # NULL_DEADLINE reports no counters, so unsupervised runs are clean.
    active = guard_deadline if guard_deadline is not None else current_deadline()
    for counter, value in active.counters().items():
        root.add(counter, value)
    result.timings = _derive_timings(root)
    if trace:
        result.trace = root

    if strict:
        from ..analysis.diagnostics import errors_in

        errors = errors_in(result.diagnostics)
        if errors:
            raise AnalysisError(
                f"soundness analysis found {len(errors)} error(s): "
                + "; ".join(diag.render() for diag in errors[:3]),
                diagnostics=result.diagnostics,
            )
    return result
