"""Canonical content keys for verification work.

A verification verdict is a pure function of three inputs: the processor
configuration, the encoding/verification options, and the rewrite-rule
registry in force.  :func:`canonical_key` hashes exactly those three
into a stable SHA-256 hex key, so any two requests with the same key are
interchangeable — the foundation of the service layer's
content-addressed result cache (:mod:`repro.service.cache`) and of the
planned encode-fragment cache.

Stability contract (unit-tested in ``tests/core/test_keys.py``):

* equal inputs hash equal across process restarts — no ``id()``,
  ``hash()`` randomization, or dict-order dependence leaks in;
* field order never matters — all mappings are serialized sorted;
* ``None``-valued options are dropped, so an absent option and an
  explicitly-``None`` option agree;
* budgets (conflicts/seconds/memory) are *not* part of the key: they
  bound the search, not the verdict, and cached entries only ever hold
  definitive outcomes (see :class:`repro.service.cache.ResultCache`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional, Union

from ..processor.params import ProcessorConfig

__all__ = ["canonical_key", "config_dict"]


def config_dict(config: Union[ProcessorConfig, Mapping[str, Any]]) -> dict:
    """The canonical plain-dict form of a processor configuration."""
    if isinstance(config, ProcessorConfig):
        return {
            "n_rob": config.n_rob,
            "issue_width": config.issue_width,
            "retire_width": config.retire_width,
            "family": config.family,
        }
    data = dict(config)
    # Normalize through the dataclass so defaulting (retire_width=None
    # means "same as issue width", absent family means the default
    # register-register family) cannot split the key space.
    kwargs = {}
    if data.get("family") is not None:
        kwargs["family"] = str(data["family"])
    return config_dict(ProcessorConfig(
        n_rob=int(data["n_rob"]),
        issue_width=int(data["issue_width"]),
        retire_width=data.get("retire_width"),
        **kwargs,
    ))


def canonical_key(
    config: Union[ProcessorConfig, Mapping[str, Any]],
    options: Optional[Mapping[str, Any]] = None,
    registry_version: Optional[str] = None,
) -> str:
    """Stable SHA-256 key of (config, options, rule-registry version).

    Args:
        config: a :class:`~repro.processor.params.ProcessorConfig` or an
            equivalent mapping (``n_rob`` / ``issue_width`` /
            ``retire_width`` / ``family``); both forms produce the same
            key, and an absent ``family`` means the default
            register-register family.
        options: encoding/verification options that change the verdict
            or its evidence (``method``, ``criterion``, bug fields,
            ``certify``, ...).  ``None`` values are dropped; insertion
            order is irrelevant.
        registry_version: the rewrite-rule registry fingerprint
            (:func:`repro.rewriting.version.registry_version`); defaults
            to the live registry's version.
    """
    if registry_version is None:
        from ..rewriting.version import registry_version as live_version

        registry_version = live_version()
    clean_options = {
        str(name): value
        for name, value in (options or {}).items()
        if value is not None
    }
    payload = json.dumps(
        {
            "config": config_dict(config),
            "options": clean_options,
            "registry": registry_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
